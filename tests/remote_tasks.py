"""Module-level work functions for socket-transport tests.

Remote workers import task functions by module-level reference (the wire
payload pickles ``fn`` by name), so the functions used by subprocess tests
must live in a plain importable module — not inside a test class, and with
no pytest dependency (the worker process imports this file too, via
``PYTHONPATH=src:tests``).
"""

import time


def echo_task(payload, ctx):
    return ("echo", payload)


def stream_task(payload, ctx):
    """Emit ``count`` ordered ticks, return the count."""
    for index in range(payload["count"]):
        ctx.emit(("tick", payload.get("tag"), index))
    return payload["count"]


def failing_task(payload, ctx):
    raise ValueError(f"boom: {payload}")


def sleepy_task(payload, ctx):
    """Sleep up to ``payload`` seconds, polling the cooperative cancel."""
    deadline = time.time() + payload
    while time.time() < deadline:
        if ctx.cancel_event.is_set():
            return "cancelled"
        time.sleep(0.02)
    return "slept"


def sticky_pid_task(payload, ctx):
    """Report which process ran the task (for re-lease assertions)."""
    import os

    return os.getpid()
