"""Smoke tests for the evaluation harness (Tables 1-3) and reporting helpers."""

import pytest

from repro.core import SynthesisConfig
from repro.eval import (
    format_corpus,
    format_table1,
    format_table2,
    format_table3,
    parse_corpus_spec,
    render_markdown_table,
    render_table,
    run_corpus,
    run_table1,
    run_table2,
    run_table3,
    speedup,
)
from repro.eval.table1 import TABLE1_ORDER, benchmark_selection


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2.5], ["xxx", None]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "xxx" in text and "2.5" in text and "-" in text

    def test_render_markdown_table(self):
        text = render_markdown_table(["x"], [[1], [2]])
        assert text.splitlines()[1] == "|---|"
        assert text.count("|") >= 6

    def test_speedup_formatting(self):
        assert speedup(10.0, 2.0, False) == "5.0x"
        assert speedup(10.0, 2.0, True) == ">5.0x"
        assert speedup(None, 2.0, False) == "-"


class TestHarness:
    def test_table1_order_covers_all_benchmarks(self):
        assert len(TABLE1_ORDER) == 20
        assert len(benchmark_selection()) == 20

    def test_run_table1_on_smallest_benchmark(self):
        config = SynthesisConfig()
        config.verifier_random_sequences = 10
        rows = run_table1(["Oracle-1"], config=config, verbose=False)
        assert len(rows) == 1
        assert rows[0].succeeded
        text = format_table1(rows)
        assert "Oracle-1" in text and "Average" in text

    def test_run_table1_scheduler_workers_matches_sequential(self):
        # --scheduler-workers fans workloads over the shared WorkScheduler;
        # per-run numbers and row order must match the sequential harness.
        config = SynthesisConfig()
        config.verifier_random_sequences = 10
        names = ["Oracle-1", "Ambler-4"]
        sequential = run_table1(names, config=config, verbose=False)
        scheduled = run_table1(
            names, config=config, verbose=False, scheduler_workers=2
        )
        def key(row):
            return (
                row.benchmark.name,
                row.succeeded,
                row.value_correspondences,
                row.iterations,
            )
        assert [key(row) for row in sequential] == [key(row) for row in scheduled]

    def test_scheduler_report_renders(self):
        from repro.eval import render_scheduler_report
        from repro.exec import SchedulerStats

        text = render_scheduler_report(
            SchedulerStats(tasks_submitted=3, tasks_done=2, task_retries=1)
        )
        assert "Retries" in text and "EventsHWM" in text

    def test_cli_scheduler_workers_flag(self, capsys):
        from repro.eval.__main__ import main

        exit_code = main(
            ["table1", "--benchmarks", "Oracle-1", "--quiet", "--scheduler-workers", "2"]
        )
        assert exit_code == 0
        assert "Table 1" in capsys.readouterr().out

    def test_run_table2_on_smallest_benchmark(self):
        rows = run_table2(["Ambler-4"], timeout=60.0, verbose=False)
        assert len(rows) == 1
        text = format_table2(rows)
        assert "Ambler-4" in text and "Speedup" in text

    def test_run_table3_on_smallest_benchmark(self):
        rows = run_table3(["Ambler-4"], timeout=60.0, verbose=False)
        assert len(rows) == 1
        assert rows[0].baseline_succeeded or rows[0].baseline_timed_out
        text = format_table3(rows)
        assert "Ambler-4" in text

    def test_cli_entry_point(self, capsys):
        from repro.eval.__main__ import main

        exit_code = main(["table1", "--benchmarks", "Ambler-4", "--quiet"])
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "Table 1" in captured.out


class TestCorpusCurve:
    def test_parse_corpus_spec(self):
        assert parse_corpus_spec("7:5") == (7, 5)
        assert parse_corpus_spec("7") == (7, 3)
        with pytest.raises(ValueError):
            parse_corpus_spec("x:y")
        with pytest.raises(ValueError):
            parse_corpus_spec("1:0")

    def test_run_corpus_single_point(self):
        rows = run_corpus(0, 2, points=((2, 2, 6),), verbose=False)
        assert len(rows) == 1
        assert len(rows[0].results) == 2
        assert rows[0].solved == 2
        text = format_corpus(rows)
        assert "Tables" in text and "VCs" in text

    def test_cli_corpus_mode(self, capsys):
        from repro.eval.__main__ import main

        exit_code = main(["corpus", "--corpus", "0:1", "--quiet"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Generated corpus" in out
