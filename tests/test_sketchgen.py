"""Tests for the join graph, Steiner trees, join correspondences, and sketch generation."""

import pytest

from repro.correspondence import ValueCorrespondenceEnumerator, identity_correspondence
from repro.datamodel import Attribute, DataType as T, make_schema
from repro.lang.builder import ProgramBuilder, eq, insert, select
from repro.sketchgen import (
    JoinGraph,
    ProgramSketch,
    QueryFunctionSketch,
    SketchGenerationError,
    SketchGenerator,
    SketchGeneratorConfig,
    SteinerLimits,
    UpdateFunctionSketch,
    candidate_join_chains,
    is_valid_join_correspondence,
    steiner_chains,
)
from repro.sketchgen.join_graph import tree_to_join_chain
from repro.sketchgen.sketch_ast import Hole, HoleAllocator


# -------------------------------------------------------------------------------- graph
class TestJoinGraph:
    def test_edges_from_shared_columns(self, course_target_schema):
        graph = JoinGraph(course_target_schema)
        assert {"Instructor", "Picture"} <= graph.neighbors("Picture") | {"Picture"}
        assert "Picture" in graph.neighbors("Instructor")
        assert "Class" in graph.neighbors("Instructor")

    def test_connectivity(self, course_target_schema):
        graph = JoinGraph(course_target_schema)
        assert graph.is_connected(["Picture", "Instructor"])
        assert graph.is_connected(["Picture", "Instructor", "Class"])
        assert not graph.is_connected(["Picture", "Class"])  # only linked through Instructor/TA

    def test_connected_component(self, course_target_schema):
        graph = JoinGraph(course_target_schema)
        assert graph.connected_component("Picture") == {"Picture", "Instructor", "TA", "Class"}

    def test_edges_between_restricts_to_subset(self, course_target_schema):
        graph = JoinGraph(course_target_schema)
        edges = graph.edges_between(["Picture", "Instructor"])
        assert all({e.left, e.right} <= {"Picture", "Instructor"} for e in edges)

    def test_tree_to_join_chain_single_table(self):
        chain = tree_to_join_chain(["T"], [])
        assert chain.is_single_table


# ------------------------------------------------------------------------------- steiner
class TestSteinerChains:
    def test_running_example_chains(self, course_target_schema):
        """Terminals {Picture, Instructor} yield the three chains of Figure 3."""
        graph = JoinGraph(course_target_schema)
        chains = steiner_chains(graph, ["Picture", "Instructor"])
        table_sets = {chain.table_set() for chain in chains}
        assert frozenset({"Picture", "Instructor"}) in table_sets
        assert frozenset({"Picture", "TA", "Instructor"}) in table_sets
        assert frozenset({"Picture", "TA", "Class", "Instructor"}) in table_sets

    def test_smallest_chain_first(self, course_target_schema):
        graph = JoinGraph(course_target_schema)
        chains = steiner_chains(graph, ["Picture", "Instructor"])
        sizes = [len(chain.tables) for chain in chains]
        assert sizes == sorted(sizes)

    def test_single_terminal(self, course_target_schema):
        graph = JoinGraph(course_target_schema)
        chains = steiner_chains(graph, ["Picture"])
        assert chains[0].is_single_table

    def test_unconnected_terminals_produce_nothing(self):
        schema = make_schema("s", {"A": {"x": T.INT}, "B": {"y": T.INT}})
        graph = JoinGraph(schema)
        assert steiner_chains(graph, ["A", "B"]) == []

    def test_limits_cap_extra_tables(self, course_target_schema):
        graph = JoinGraph(course_target_schema)
        chains = steiner_chains(
            graph, ["Picture", "Instructor"], SteinerLimits(max_extra_tables=0)
        )
        assert all(chain.table_set() == frozenset({"Picture", "Instructor"}) for chain in chains)

    def test_unknown_terminal_raises(self, course_target_schema):
        graph = JoinGraph(course_target_schema)
        with pytest.raises(KeyError):
            steiner_chains(graph, ["Nope"])

    def test_chain_conditions_connect_chain_tables(self, course_target_schema):
        graph = JoinGraph(course_target_schema)
        for chain in steiner_chains(graph, ["Picture", "Class"]):
            tables = set(chain.tables)
            for left, right in chain.conditions:
                assert left.table in tables and right.table in tables
            assert len(chain.conditions) == len(chain.tables) - 1


# ----------------------------------------------------------------------- join correspondence
class TestJoinCorrespondence:
    def test_is_valid_join_correspondence(self, course_program, course_target_schema):
        enumerator = ValueCorrespondenceEnumerator(course_program, course_target_schema)
        vc = enumerator.next_value_corr().correspondence
        graph = JoinGraph(course_target_schema)
        attrs = [Attribute("Instructor", "IName"), Attribute("Instructor", "IPic")]
        chains = candidate_join_chains(vc, graph, attrs)
        assert chains
        for chain in chains:
            assert is_valid_join_correspondence(vc, attrs, chain)

    def test_unmapped_attribute_invalidates(self, course_program, course_target_schema):
        vc = identity_correspondence(course_program.schema, course_target_schema)
        # IPic is dropped by the identity correspondence
        attrs = [Attribute("Instructor", "IPic")]
        graph = JoinGraph(course_target_schema)
        chains = steiner_chains(graph, ["Picture"])
        assert not is_valid_join_correspondence(vc, attrs, chains[0])

    def test_candidate_chains_empty_for_unmapped_attrs(self, course_program, course_target_schema):
        vc = identity_correspondence(course_program.schema, course_target_schema)
        graph = JoinGraph(course_target_schema)
        assert candidate_join_chains(vc, graph, [Attribute("Instructor", "IPic")]) == []


# --------------------------------------------------------------------------------- sketch
class TestSketchGeneration:
    @pytest.fixture()
    def running_example_sketch(self, course_program, course_target_schema) -> ProgramSketch:
        enumerator = ValueCorrespondenceEnumerator(course_program, course_target_schema)
        vc = enumerator.next_value_corr().correspondence
        generator = SketchGenerator(course_program, course_target_schema)
        return generator.generate(vc)

    def test_sketch_covers_all_functions(self, running_example_sketch, course_program):
        names = {sketch.name for sketch in running_example_sketch.functions}
        assert names == set(course_program.function_names)

    def test_search_space_is_product_of_hole_sizes(self, running_example_sketch):
        """The Figure 3 sketch of the paper has 164,025 completions; our join
        graph additionally contains same-name edges, so the space is at least
        as large and always equals the product of the hole domain sizes."""
        expected = 1
        for hole in running_example_sketch.holes():
            expected *= hole.size
        assert running_example_sketch.search_space_size() == expected
        assert expected >= 164025

    def test_hole_structure_of_running_example(self, running_example_sketch):
        by_function = running_example_sketch.holes_by_function()
        # insert functions: one choice hole containing the three paper chains
        add_holes = by_function["addInstructor"]
        assert len(add_holes) == 1
        table_sets = {
            frozenset(t for chain in alternative for t in chain.tables)
            for alternative in add_holes[0].domain
        }
        assert frozenset({"Picture", "Instructor"}) in table_sets
        assert frozenset({"Picture", "TA", "Instructor"}) in table_sets
        assert frozenset({"Picture", "TA", "Class", "Instructor"}) in table_sets
        # delete functions: a chain choice hole and a table-list hole
        delete_holes = by_function["deleteInstructor"]
        assert len(delete_holes) == 2
        # query functions: one join hole
        query_holes = by_function["getInstructorInfo"]
        assert len(query_holes) == 1 and query_holes[0].size >= 3

    def test_holes_are_globally_unique(self, running_example_sketch):
        indices = [hole.index for hole in running_example_sketch.holes()]
        assert len(indices) == len(set(indices))

    def test_describe_mentions_hole_counts(self, running_example_sketch):
        text = running_example_sketch.describe()
        assert "completions" in text and "8 holes" in text

    def test_function_sketch_lookup(self, running_example_sketch):
        assert isinstance(running_example_sketch.function_sketch("getTAInfo"), QueryFunctionSketch)
        assert isinstance(running_example_sketch.function_sketch("addTA"), UpdateFunctionSketch)
        with pytest.raises(KeyError):
            running_example_sketch.function_sketch("nope")

    def test_empty_hole_domain_rejected(self):
        with pytest.raises(ValueError):
            Hole(1, "f", ())

    def test_hole_allocator_assigns_increasing_indices(self):
        allocator = HoleAllocator()
        h1 = allocator.attr_hole("f", [Attribute("A", "x")], "a")
        h2 = allocator.join_hole("f", [__import__("repro.lang.ast", fromlist=["JoinChain"]).JoinChain.of("A")], "j")
        assert h2.index == h1.index + 1

    def test_unmapped_predicate_attribute_fails_generation(self, course_program, course_target_schema):
        vc = identity_correspondence(course_program.schema, course_target_schema)
        generator = SketchGenerator(course_program, course_target_schema)
        # the identity correspondence drops IPic, which getInstructorInfo projects
        with pytest.raises(SketchGenerationError):
            generator.generate(vc)

    def test_composition_pruning_limits_alternatives(self, course_program, course_target_schema):
        enumerator = ValueCorrespondenceEnumerator(course_program, course_target_schema)
        vc = enumerator.next_value_corr().correspondence
        config = SketchGeneratorConfig(prune_subsumed_compositions=False)
        generator = SketchGenerator(course_program, course_target_schema, config)
        sketch = generator.generate(vc)
        # without pruning, insert statements also admit composed alternatives
        add_holes = sketch.holes_by_function()["addInstructor"]
        assert add_holes[0].size > 3
