"""Tests for the SAT substrate: CNF, cardinality encodings, the CDCL solver, DIMACS."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat import (
    CNF,
    CNFError,
    SatSolver,
    Status,
    at_most_k_sequential,
    at_most_one,
    dumps,
    exactly_one,
    loads,
    negate,
    solve_cnf,
    variable_of,
)
from repro.sat.cardinality import at_most_one_pairwise, at_most_one_sequential
from repro.sat.cnf import VariablePool


def brute_force_satisfiable(cnf: CNF) -> bool:
    """Reference implementation: try all assignments."""
    variables = list(range(1, cnf.num_variables + 1))
    for bits in itertools.product([False, True], repeat=len(variables)):
        assignment = dict(zip(variables, bits))
        if cnf.evaluate(assignment):
            return True
    return False


# --------------------------------------------------------------------------------- CNF
class TestCnf:
    def test_add_clause_updates_variable_count(self):
        cnf = CNF()
        cnf.add_clause([1, -3])
        assert cnf.num_variables == 3
        assert cnf.num_clauses == 1

    def test_empty_clause_rejected(self):
        cnf = CNF()
        with pytest.raises(CNFError):
            cnf.add_clause([])

    def test_zero_literal_rejected(self):
        cnf = CNF()
        with pytest.raises(CNFError):
            cnf.add_clause([0])

    def test_evaluate(self):
        cnf = CNF()
        cnf.add_clause([1, 2])
        cnf.add_clause([-1])
        assert cnf.evaluate({1: False, 2: True})
        assert not cnf.evaluate({1: True, 2: True})

    def test_copy_is_independent(self):
        cnf = CNF()
        cnf.add_clause([1])
        dup = cnf.copy()
        dup.add_clause([2])
        assert cnf.num_clauses == 1
        assert dup.num_clauses == 2

    def test_negate_and_variable_of(self):
        assert negate(3) == -3
        assert variable_of(-5) == 5
        with pytest.raises(CNFError):
            negate(0)

    def test_variable_pool_named_is_stable(self):
        pool = VariablePool()
        a = pool.named("x")
        b = pool.named("y")
        assert pool.named("x") == a
        assert a != b
        assert pool.meaning(a) == "x"
        assert pool.lookup("z") is None


# ------------------------------------------------------------------------------ solver
class TestSatSolver:
    def test_trivially_sat(self):
        cnf = CNF()
        cnf.add_clause([1])
        result = solve_cnf(cnf)
        assert result.is_sat and result.model[1] is True

    def test_trivially_unsat(self):
        cnf = CNF()
        cnf.add_clause([1])
        cnf.add_clause([-1])
        assert solve_cnf(cnf).status is Status.UNSAT

    def test_requires_propagation(self):
        cnf = CNF()
        cnf.add_clause([1, 2])
        cnf.add_clause([-1, 2])
        cnf.add_clause([-2, 3])
        result = solve_cnf(cnf)
        assert result.is_sat
        assert result.model[2] and result.model[3]

    def test_pigeonhole_2_into_1_unsat(self):
        # two pigeons, one hole
        cnf = CNF()
        cnf.add_clause([1])   # pigeon 1 in hole 1
        cnf.add_clause([2])   # pigeon 2 in hole 1
        cnf.add_clause([-1, -2])
        assert solve_cnf(cnf).status is Status.UNSAT

    def test_pigeonhole_3_into_2_unsat(self):
        # variables p_{i,j}: pigeon i (1..3) in hole j (1..2)
        def var(i, j):
            return (i - 1) * 2 + j

        cnf = CNF()
        for i in range(1, 4):
            cnf.add_clause([var(i, 1), var(i, 2)])
        for j in (1, 2):
            for i1 in range(1, 4):
                for i2 in range(i1 + 1, 4):
                    cnf.add_clause([-var(i1, j), -var(i2, j)])
        assert solve_cnf(cnf).status is Status.UNSAT

    def test_model_satisfies_formula(self):
        cnf = CNF()
        cnf.add_clause([1, 2, 3])
        cnf.add_clause([-1, -2])
        cnf.add_clause([-2, -3])
        cnf.add_clause([2, 3])
        result = solve_cnf(cnf)
        assert result.is_sat
        assert cnf.evaluate(result.model)

    def test_incremental_blocking_enumerates_all_models(self):
        cnf = CNF()
        exactly_one(cnf, [1, 2, 3])
        solver = SatSolver()
        solver.add_cnf(cnf)
        seen = set()
        while True:
            result = solver.solve()
            if result.status is not Status.SAT:
                break
            chosen = tuple(v for v in (1, 2, 3) if result.model[v])
            seen.add(chosen)
            solver.add_clause([-v if result.model[v] else v for v in (1, 2, 3)])
        assert seen == {(1,), (2,), (3,)}

    def test_assumptions_restrict_models(self):
        cnf = CNF()
        cnf.add_clause([1, 2])
        solver = SatSolver()
        solver.add_cnf(cnf)
        result = solver.solve(assumptions=[-1])
        assert result.is_sat and result.model[2]
        result = solver.solve(assumptions=[-1, -2])
        assert result.status is Status.UNSAT

    def test_statistics_counters_move(self):
        cnf = CNF()
        for i in range(1, 6):
            cnf.add_clause([i, i + 1])
            cnf.add_clause([-i, -(i + 1)])
        solver = SatSolver()
        solver.add_cnf(cnf)
        solver.solve()
        assert solver.stats.decisions >= 1

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.lists(
                st.integers(min_value=-6, max_value=6).filter(lambda v: v != 0),
                min_size=1,
                max_size=4,
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_agrees_with_brute_force(self, clauses):
        cnf = CNF()
        for clause in clauses:
            cnf.add_clause(clause)
        result = solve_cnf(cnf)
        assert result.is_sat == brute_force_satisfiable(cnf)
        if result.is_sat:
            assert cnf.evaluate(result.model)


# -------------------------------------------------------------------------- cardinality
class TestCardinality:
    def _count_models(self, cnf: CNF, variables: list[int]) -> list[tuple]:
        solver = SatSolver()
        solver.add_cnf(cnf)
        models = []
        while True:
            result = solver.solve()
            if result.status is not Status.SAT:
                return models
            chosen = tuple(v for v in variables if result.model[v])
            models.append(chosen)
            solver.add_clause([-v if result.model[v] else v for v in variables])

    @pytest.mark.parametrize("encode", [at_most_one_pairwise, at_most_one_sequential])
    def test_at_most_one_semantics(self, encode):
        cnf = CNF()
        variables = [cnf.new_variable() for _ in range(4)]
        encode(cnf, variables)
        for chosen in self._count_models(cnf, variables):
            assert len(chosen) <= 1

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
    def test_exactly_one_has_n_models(self, n):
        cnf = CNF()
        variables = [cnf.new_variable() for _ in range(n)]
        exactly_one(cnf, variables)
        models = self._count_models(cnf, variables)
        assert sorted(models) == sorted([(v,) for v in variables])

    def test_exactly_one_empty_raises(self):
        with pytest.raises(ValueError):
            exactly_one(CNF(), [])

    @pytest.mark.parametrize("n,k", [(4, 2), (5, 1), (5, 3), (6, 0)])
    def test_at_most_k_semantics(self, n, k):
        cnf = CNF()
        variables = [cnf.new_variable() for _ in range(n)]
        at_most_k_sequential(cnf, variables, k)
        models = self._count_models(cnf, variables)
        assert models, "at-most-k must be satisfiable (all-false works)"
        assert all(len(chosen) <= k for chosen in models)
        # every subset of size <= k must be allowed
        expected = sum(
            1 for r in range(0, k + 1) for _ in itertools.combinations(variables, r)
        )
        assert len(models) == expected

    def test_at_most_k_negative_raises(self):
        with pytest.raises(ValueError):
            at_most_k_sequential(CNF(), [1, 2], -1)

    def test_at_most_one_threshold_switches_encoding(self):
        small = CNF()
        at_most_one(small, [small.new_variable() for _ in range(3)])
        large = CNF()
        variables = [large.new_variable() for _ in range(10)]
        at_most_one(large, variables)
        assert large.num_variables > 10  # sequential encoding introduced auxiliaries


# ------------------------------------------------------------------------------- DIMACS
class TestDimacs:
    def test_round_trip(self):
        cnf = CNF()
        cnf.add_clause([1, -2, 3])
        cnf.add_clause([-1, 2])
        text = dumps(cnf, comments=["example"])
        parsed = loads(text)
        assert parsed.num_variables == cnf.num_variables
        assert parsed.clauses == cnf.clauses

    def test_parse_rejects_missing_header(self):
        with pytest.raises(CNFError):
            loads("1 2 0\n")

    def test_parse_ignores_comments(self):
        cnf = loads("c hello\np cnf 2 1\n1 2 0\n")
        assert cnf.num_clauses == 1

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.lists(
                st.integers(min_value=-5, max_value=5).filter(lambda v: v != 0),
                min_size=1,
                max_size=3,
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_round_trip_preserves_satisfiability(self, clauses):
        cnf = CNF()
        for clause in clauses:
            cnf.add_clause(clause)
        parsed = loads(dumps(cnf))
        assert solve_cnf(parsed).is_sat == solve_cnf(cnf).is_sat
