"""Tests for the database-program language: AST, builder, visitors, pretty printer."""

import pytest

from repro.datamodel import Attribute, DataType
from repro.lang import (
    CompareOp,
    Comparison,
    Const,
    JoinChain,
    Program,
    Projection,
    Selection,
    TruePred,
    Var,
    WellFormednessError,
    attributes_of_function,
    attributes_of_program,
    attributes_of_query,
    format_program,
    format_query,
    format_statement,
    join_chain_of_query,
    join_chains_of_program,
    queried_attributes,
    tables_of_program,
    validate_program,
)
from repro.lang.ast import operands_of_predicate
from repro.lang.builder import (
    ProgramBuilder,
    attr,
    conj,
    delete,
    disj,
    eq,
    gt,
    in_query,
    insert,
    join,
    lt,
    natural_join,
    ne,
    neg,
    select,
    table,
    update,
)


# --------------------------------------------------------------------------------- AST
class TestAstNodes:
    def test_join_chain_single_table(self):
        chain = JoinChain.of("T")
        assert chain.is_single_table
        assert chain.table_set() == frozenset({"T"})

    def test_join_chain_requires_a_table(self):
        with pytest.raises(ValueError):
            JoinChain((), ())

    def test_join_chain_canonical_is_order_insensitive(self):
        a1, b1 = Attribute("A", "x"), Attribute("B", "x")
        chain1 = JoinChain(("A", "B"), ((a1, b1),))
        chain2 = JoinChain(("B", "A"), ((b1, a1),))
        assert chain1.canonical() == chain2.canonical()

    def test_join_extends_chain(self):
        chain = JoinChain.of("A").join(JoinChain.of("B"), Attribute("A", "x"), Attribute("B", "x"))
        assert chain.tables == ("A", "B")
        assert len(chain.conditions) == 1

    def test_operands_of_predicate(self):
        pred = conj(eq("T.a", "$x"), gt("T.b", 3))
        operands = operands_of_predicate(pred)
        assert len(operands) == 4

    def test_program_rejects_duplicate_function_names(self, people_schema):
        pb = ProgramBuilder("p", people_schema)
        pb.query("q", [("id", "int")],
                 select(["Person.Name"], "Person", eq("Person.PersonId", "$id")))
        functions = list(pb.build().functions.values())
        with pytest.raises(ValueError):
            Program("p", people_schema, functions + functions)

    def test_program_lookup(self, people_program):
        assert people_program.function("getPerson").is_query
        assert not people_program.function("addPerson").is_query
        with pytest.raises(KeyError):
            people_program.function("nope")

    def test_update_and_query_partition(self, people_program):
        updates = {f.name for f in people_program.update_functions()}
        queries = {f.name for f in people_program.query_functions()}
        assert updates == {"addPerson", "deletePerson"}
        assert queries == {"getPerson", "findByName"}


# ------------------------------------------------------------------------------ builder
class TestBuilder:
    def test_attr_parses_dotted_strings(self):
        assert attr("T.a") == Attribute("T", "a")

    def test_dollar_prefix_builds_parameter(self):
        comparison = eq("T.a", "$x")
        assert isinstance(comparison.right, Var)
        assert comparison.right.name == "x"

    def test_plain_value_builds_constant(self):
        comparison = eq("T.a", 5)
        assert isinstance(comparison.right, Const)
        assert comparison.right.value == 5

    def test_comparison_operators(self):
        assert eq("T.a", 1).op is CompareOp.EQ
        assert ne("T.a", 1).op is CompareOp.NE
        assert lt("T.a", 1).op is CompareOp.LT
        assert gt("T.a", 1).op is CompareOp.GT

    def test_conj_of_nothing_is_true(self):
        assert isinstance(conj(), TruePred)

    def test_conj_drops_true_predicates(self):
        pred = conj(TruePred(), eq("T.a", 1))
        assert isinstance(pred, Comparison)

    def test_disj_and_neg(self):
        pred = neg(disj(eq("T.a", 1), eq("T.a", 2)))
        assert "or" in str(pred).lower() or "Or" in type(pred.operand).__name__

    def test_join_builder(self):
        chain = join(["A", "B"], on=[("A.x", "B.y")])
        assert chain.tables == ("A", "B")
        assert chain.conditions == ((Attribute("A", "x"), Attribute("B", "y")),)

    def test_natural_join_uses_shared_column(self, course_target_schema):
        chain = natural_join(course_target_schema, "Picture", "Instructor")
        assert chain.tables == ("Picture", "Instructor")
        left, right = chain.conditions[0]
        assert {left.name, right.name} == {"PicId"}

    def test_natural_join_without_shared_column_raises(self, course_source_schema):
        with pytest.raises(ValueError):
            natural_join(course_source_schema, "Instructor", "TA")

    def test_select_builds_projection_over_selection(self):
        query = select(["T.a"], "T", eq("T.b", 1))
        assert isinstance(query, Projection)
        assert isinstance(query.source, Selection)
        assert isinstance(query.source.source, JoinChain)

    def test_select_without_where_has_no_selection(self):
        query = select(["T.a"], "T")
        assert isinstance(query, Projection)
        assert isinstance(query.source, JoinChain)

    def test_insert_builder(self):
        stmt = insert("T", {"T.a": "$x", "T.b": 1})
        assert stmt.target == JoinChain.of("T")
        assert len(stmt.values) == 2

    def test_delete_builder_defaults_to_true_predicate(self):
        stmt = delete("T", "T")
        assert isinstance(stmt.predicate, TruePred)

    def test_update_builder(self):
        stmt = update("T", eq("T.a", 1), "T.b", "$v")
        assert stmt.attribute == Attribute("T", "b")
        assert isinstance(stmt.value, Var)

    def test_in_query_builder(self):
        pred = in_query("T.a", select(["S.b"], "S"))
        assert pred.operand.attribute == Attribute("T", "a")

    def test_table_helper(self):
        assert table("T") == JoinChain.of("T")


# ----------------------------------------------------------------------------- visitors
class TestVisitors:
    def test_attributes_of_query(self, people_program):
        query = people_program.function("getPerson").query
        attrs = attributes_of_query(query)
        assert Attribute("Person", "Name") in attrs
        assert Attribute("Person", "PersonId") in attrs

    def test_attributes_of_program_covers_all_functions(self, course_program):
        attrs = attributes_of_program(course_program)
        assert Attribute("Instructor", "IPic") in attrs
        assert Attribute("TA", "TPic") in attrs
        assert Attribute("Class", "ClassId") not in attrs

    def test_queried_attributes_only_from_queries(self, course_program):
        attrs = queried_attributes(course_program)
        assert Attribute("Instructor", "IName") in attrs
        # attributes only written, never read, are not "queried"
        assert Attribute("Class", "ClassId") not in attrs

    def test_join_chain_of_query_unwraps(self, people_program):
        query = people_program.function("getPerson").query
        assert join_chain_of_query(query) == JoinChain.of("Person")

    def test_join_chains_of_program_deduplicates(self, course_program):
        chains = join_chains_of_program(course_program)
        canon = {chain.canonical() for chain in chains}
        assert len(canon) == len(chains)

    def test_tables_of_program(self, course_program):
        assert tables_of_program(course_program) == {"Instructor", "TA"}

    def test_attributes_of_function_update(self, course_program):
        attrs = attributes_of_function(course_program.function("addInstructor"))
        assert Attribute("Instructor", "InstId") in attrs

    def test_validate_program_accepts_fixtures(self, course_program, people_program):
        validate_program(course_program)
        validate_program(people_program)

    def test_validate_rejects_unknown_table(self, people_schema):
        pb = ProgramBuilder("bad", people_schema)
        pb.query("q", [("id", "int")],
                 select(["Nope.Name"], "Nope", eq("Nope.Id", "$id")))
        with pytest.raises(WellFormednessError):
            pb.build()

    def test_validate_rejects_unknown_parameter(self, people_schema):
        pb = ProgramBuilder("bad", people_schema)
        pb.query("q", [("id", "int")],
                 select(["Person.Name"], "Person", eq("Person.PersonId", "$other")))
        with pytest.raises(WellFormednessError):
            pb.build()

    def test_validate_rejects_projection_outside_join(self, course_source_schema):
        pb = ProgramBuilder("bad", course_source_schema)
        pb.query("q", [("id", "int")],
                 select(["TA.TName"], "Instructor", eq("Instructor.InstId", "$id")))
        with pytest.raises(WellFormednessError):
            pb.build()

    def test_validate_rejects_delete_target_outside_chain(self, course_source_schema):
        pb = ProgramBuilder("bad", course_source_schema)
        pb.update("d", [("id", "int")],
                  delete("TA", "Instructor", eq("Instructor.InstId", "$id")))
        with pytest.raises(WellFormednessError):
            pb.build()


# ----------------------------------------------------------------------- pretty printer
class TestPrettyPrinter:
    def test_format_query_select_where(self, people_program):
        text = format_query(people_program.function("getPerson").query)
        assert text.startswith("SELECT Person.Name, Person.Age FROM Person")
        assert "WHERE Person.PersonId = id" in text

    def test_format_statement_insert(self, people_program):
        stmt = people_program.function("addPerson").statements[0]
        text = format_statement(stmt)
        assert text.strip().startswith("INSERT INTO Person")
        assert "VALUES (id, name, age)" in text

    def test_format_statement_delete(self, people_program):
        stmt = people_program.function("deletePerson").statements[0]
        text = format_statement(stmt)
        assert text.strip().startswith("DELETE Person FROM Person")

    def test_format_statement_update(self):
        stmt = update("T", eq("T.a", 1), "T.b", 2)
        text = format_statement(stmt)
        assert "UPDATE T SET T.b = 2 WHERE T.a = 1" in text

    def test_format_join_with_conditions(self):
        chain = join(["A", "B"], on=[("A.x", "B.y")])
        from repro.lang.pretty import format_join

        assert format_join(chain) == "A JOIN B ON A.x = B.y"

    def test_format_program_contains_all_functions(self, course_program):
        text = format_program(course_program)
        for name in course_program.function_names:
            assert name in text

    def test_format_string_constant_is_quoted(self):
        stmt = update("T", eq("T.a", "hello"), "T.b", 2)
        assert '"hello"' in format_statement(stmt)
