"""Tests for the unified execution layer (repro.exec).

Covers the channel transports (direct vs multiprocessing-queue), queue
backpressure (bounded pending events, producer block-with-timeout, load
counters), the ordered per-key stream merge, the priority/deadline
scheduler in both execution modes, cross-process cancellation, crash
recovery (worker-killing tasks retried up to max_retries, FAILED after),
cross-transport stream equivalence at the scheduler level, the
FuturesTimeout compat shim, and the parallel front-end's sequential
fallback when worker processes are unavailable.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from dataclasses import replace

import pytest

from repro import SynthesisConfig, migrate
from repro.exec import (
    TIMEOUT_ERRORS,
    ExecutorUnavailable,
    FuturesTimeoutError,
    OrderedEventMerger,
    TaskState,
    WorkScheduler,
)
from repro.workloads import get_benchmark


# ------------------------------------------------------------ worker bodies
# Module-level so the fork-based pool can pickle them by reference.
def _double(payload, ctx):
    return payload * 2


def _crash_once(payload, ctx):
    # Kill the worker process outright on the first run (simulating a hard
    # crash — no exception, no cleanup); succeed on the retry.
    if not os.path.exists(payload):
        open(payload, "w").close()
        os._exit(1)
    return "recovered"


def _always_crash(payload, ctx):
    os._exit(1)


def _boom(payload, ctx):
    raise ValueError(f"boom {payload}")


def _emit_range(payload, ctx):
    for i in range(payload):
        ctx.emit(i)
    return payload


def _emit_and_poll(payload, ctx):
    for i in range(payload):
        ctx.emit(i)
        if ctx.cancel_event.is_set():
            return ("cancelled", i)
    return ("done", payload)


def _run_until_cancelled(payload, ctx):
    deadline = time.time() + payload
    ticks = 0
    while time.time() < deadline:
        if ctx.cancel_event.is_set():
            return ("cancelled", ticks)
        time.sleep(0.005)
        ticks += 1
    return ("timed-out", ticks)


# ----------------------------------------------------------------- channels
class TestQueueChannel:
    def test_round_trip_order_eos_and_cancel(self):
        from repro.exec import channel as ch

        context = multiprocessing.get_context("fork")
        qc = ch.QueueChannel(context, capacity=4)
        received: list = []
        port = qc.bind(7, received.append)
        assert port.slot >= 0
        try:
            # Simulate the worker side in this same process: install the
            # transport ends exactly like the pool initializer would.
            ch.install_worker_transport(*qc.initializer_args())
            wctx = ch.worker_context(7, port.slot, True)
            for i in range(5):
                wctx.emit(i)
            wctx.emit(None)  # a legitimate None payload is NOT end-of-stream
            ch.close_worker_stream(7)
            assert port.wait_drained(5.0)
            assert received == [0, 1, 2, 3, 4, None]
            assert not wctx.cancel_event.is_set()
            port.cancel()
            assert wctx.cancel_event.is_set()
        finally:
            port.release(recycle=False)
            qc.close()
            ch.install_worker_transport(None, None)

    def test_unsubscribed_task_drains_trivially(self):
        from repro.exec import channel as ch

        qc = ch.QueueChannel(multiprocessing.get_context("fork"), capacity=2)
        port = qc.bind(1, None)
        assert not port.streaming
        assert port.wait_drained(0.1)
        port.release()
        qc.close()


class TestBackpressure:
    def test_bounded_queue_still_delivers_everything(self):
        # A consumer slower than the producer, a tiny bound: the producer
        # blocks (never drops at the default generous timeout), pending
        # events stay at or under the bound, and delivery is complete.
        events: list = []

        def slow(event):
            time.sleep(0.002)
            events.append(event)

        with WorkScheduler(max_workers=2, max_pending_events=4) as scheduler:
            handle = scheduler.submit(_emit_range, 80, on_event=slow)
            scheduler.drain()
            live = scheduler.channel_stats()
            assert live is not None and live.max_pending_events == 4
        assert handle.state is TaskState.DONE
        assert events == list(range(80))
        stats = scheduler.stats  # channel counters folded in on close
        assert stats.events_high_water <= 4
        assert stats.events_dropped == 0

    def test_wedged_consumer_sheds_events_after_timeout(self):
        from repro.exec import channel as ch

        context = multiprocessing.get_context("fork")
        qc = ch.QueueChannel(context, capacity=4, max_pending_events=2, put_timeout=0.05)
        unblock = threading.Event()
        received: list = []

        def wedged(event):
            unblock.wait(5.0)
            received.append(event)

        port = qc.bind(1, wedged)
        try:
            ch.install_worker_transport(*qc.initializer_args())
            wctx = ch.worker_context(1, port.slot, True)
            for i in range(10):
                wctx.emit(i)
            stats = qc.stats
            assert stats.max_pending_events == 2
            assert stats.dropped_events > 0, "producer never shed under backpressure"
            assert stats.high_water_mark <= 2
            unblock.set()
            ch.close_worker_stream(1)
            assert port.wait_drained(5.0)
            # Prefix semantics: whatever was delivered is an in-order prefix
            # plus nothing out of order (drops only ever trim the tail of
            # what fit in the queue at each instant).
            assert received == sorted(received)
            assert len(received) + stats.dropped_events >= 10
        finally:
            port.release(recycle=False)
            qc.close()
            ch.install_worker_transport(None, None)


class TestOrderedEventMerger:
    def test_head_streams_live_and_successors_buffer(self):
        out: list = []
        merger = OrderedEventMerger(out.append)
        for key in (1, 2, 3):
            merger.expect(key)
        merger.deliver(2, "b1")
        merger.deliver(1, "a1")  # head: passes through immediately
        assert out == ["a1"]
        merger.deliver(3, "c1")
        merger.deliver(2, "b2")
        merger.end(2)  # out of order: nothing moves until 1 ends
        merger.deliver(1, "a2")
        assert out == ["a1", "a2"]
        merger.end(1)  # promotes 2 (already ended) then 3
        assert out == ["a1", "a2", "b1", "b2", "c1"]
        merger.deliver(3, "c2")  # 3 is now the live head
        assert out[-1] == "c2"

    def test_restart_discards_buffered_prefix(self):
        out: list = []
        merger = OrderedEventMerger(out.append)
        merger.expect(1)
        merger.expect(2)
        merger.deliver(2, "stale")
        merger.restart(2)  # crashed producer: unwind its buffered events
        merger.deliver(2, "fresh")
        merger.end(1)
        assert out == ["fresh"]

    def test_flush_pending_delivers_in_declared_order(self):
        out: list = []
        merger = OrderedEventMerger(out.append)
        merger.expect(1)
        merger.expect(2)
        merger.deliver(2, "b")
        merger.deliver(1, "a")  # live
        # Neither producer sent its end marker (expired tasks); the caller
        # force-flushes after the drain.
        merger.flush_pending()
        assert out == ["a", "b"]
        # Late traffic for flushed keys is dropped, not misordered.
        merger.deliver(2, "late")
        assert out == ["a", "b"]


# --------------------------------------------------------- inline scheduler
class TestInlineScheduler:
    def test_priority_orders_execution(self):
        order: list = []

        def record(payload, ctx):
            order.append(payload)
            return payload

        with WorkScheduler(max_workers=0) as scheduler:
            handles = [
                scheduler.submit(record, name, priority=priority)
                for name, priority in [("low", 5), ("high", 1), ("mid", 3)]
            ]
            scheduler.drain()
        assert order == ["high", "mid", "low"]
        assert all(handle.state is TaskState.DONE for handle in handles)

    def test_equal_priority_is_fifo(self):
        order: list = []

        def record(payload, ctx):
            order.append(payload)

        with WorkScheduler(max_workers=0) as scheduler:
            for i in range(4):
                scheduler.submit(record, i)
            scheduler.drain()
        assert order == [0, 1, 2, 3]

    def test_failure_is_isolated(self):
        with WorkScheduler(max_workers=0) as scheduler:
            bad = scheduler.submit(_boom, 1)
            good = scheduler.submit(_double, 21)
            scheduler.drain()
        assert bad.state is TaskState.FAILED
        assert "boom 1" in bad.error
        assert isinstance(bad.exception, ValueError)
        assert good.state is TaskState.DONE and good.result == 42

    def test_cancel_pending_task_skips_it(self):
        box: dict = {}
        with WorkScheduler(max_workers=0) as scheduler:
            first = scheduler.submit(
                _emit_range, 3, on_event=lambda _event: box["second"].cancel()
            )
            box["second"] = scheduler.submit(_double, 4)
            scheduler.drain()
        assert first.state is TaskState.DONE
        assert box["second"].state is TaskState.CANCELLED
        assert box["second"].result is None

    def test_cancel_running_task_from_event_callback(self):
        box: dict = {}
        with WorkScheduler(max_workers=0) as scheduler:
            box["h"] = scheduler.submit(
                _emit_and_poll,
                100,
                on_event=lambda event: box["h"].cancel() if event == 3 else None,
            )
            scheduler.drain()
        # The work function observed the cooperative signal mid-run.
        assert box["h"].state is TaskState.DONE
        assert box["h"].result == ("cancelled", 3)

    def test_past_deadline_expires_without_running(self):
        with WorkScheduler(max_workers=0) as scheduler:
            handle = scheduler.submit(_double, 2, deadline=time.time() - 1.0)
            alive = scheduler.submit(_double, 3)
            scheduler.drain()
        assert handle.state is TaskState.EXPIRED
        assert alive.state is TaskState.DONE and alive.result == 6


# ---------------------------------------------------------- priority aging
class TestPriorityAging:
    """The anti-starvation backstop under the server's stride priorities: a
    task stuck behind a stream of better priorities gains ``age_step`` of
    priority per ``age_after`` seconds waited, so it eventually dispatches."""

    def test_starved_task_overtakes_after_aging(self):
        order: list = []

        def record(payload, ctx):
            order.append(payload)

        with WorkScheduler(max_workers=0, age_after=0.05, age_step=100) as scheduler:
            starved = scheduler.submit(record, "starved", priority=50)
            # Backdate the enqueue instant instead of sleeping: 10 aging
            # periods of waiting are owed, worth 1000 priority points.
            starved._enqueued -= 0.5
            for index in range(3):
                scheduler.submit(record, f"fresh-{index}", priority=0)
            scheduler.drain()
        assert order[0] == "starved"
        assert scheduler.stats.tasks_aged >= 1

    def test_aging_off_by_default(self):
        order: list = []

        def record(payload, ctx):
            order.append(payload)

        with WorkScheduler(max_workers=0) as scheduler:
            handle = scheduler.submit(record, "low", priority=50)
            handle._enqueued -= 500.0
            scheduler.submit(record, "high", priority=0)
            scheduler.drain()
        assert order == ["high", "low"]
        assert scheduler.stats.tasks_aged == 0

    def test_aging_preserves_results_and_states(self):
        with WorkScheduler(max_workers=0, age_after=0.01, age_step=5) as scheduler:
            handles = [
                scheduler.submit(_double, index, priority=index) for index in range(6)
            ]
            for handle in handles:
                handle._enqueued -= 1.0
            scheduler.drain()
        assert [h.state for h in handles] == [TaskState.DONE] * 6
        assert [h.result for h in handles] == [index * 2 for index in range(6)]


# --------------------------------------------------------- pooled scheduler
class TestPooledScheduler:
    def test_results_and_failures_cross_the_boundary(self):
        with WorkScheduler(max_workers=2) as scheduler:
            good = scheduler.submit(_double, 5)
            bad = scheduler.submit(_boom, 2)
            scheduler.drain()
        assert good.state is TaskState.DONE and good.result == 10
        assert bad.state is TaskState.FAILED
        assert isinstance(bad.exception, ValueError) and "boom 2" in bad.error

    def test_events_stream_live_and_complete(self):
        events: list = []
        with WorkScheduler(max_workers=2) as scheduler:
            handle = scheduler.submit(_emit_range, 8, on_event=events.append)
            scheduler.drain()
        # Settling waits for the stream drain: nothing arrives late.
        assert handle.state is TaskState.DONE and handle.result == 8
        assert events == list(range(8))

    def test_cross_process_cancel_stops_running_task(self):
        with WorkScheduler(max_workers=2) as scheduler:
            handle = scheduler.submit(_run_until_cancelled, 20.0)
            cancelled_from = []

            def cancel_soon(event=None):
                handle.cancel()
                cancelled_from.append(True)

            # Cancel shortly after dispatch, from the draining thread's
            # perspective an external thread.
            import threading

            timer = threading.Timer(0.3, cancel_soon)
            timer.start()
            try:
                scheduler.drain()
            finally:
                timer.cancel()
        assert handle.state is TaskState.DONE
        assert handle.result[0] == "cancelled"

    def test_deadline_nudges_cooperative_cancel(self):
        # The work function ignores its payload budget for 8 s but polls the
        # cancel signal; the scheduler's deadline nudge must stop it early.
        started = time.perf_counter()
        with WorkScheduler(max_workers=2) as scheduler:
            handle = scheduler.submit(
                _run_until_cancelled, 8.0, deadline=time.time() + 0.4
            )
            scheduler.drain()
        elapsed = time.perf_counter() - started
        assert handle.state is TaskState.DONE
        assert handle.result[0] == "cancelled"
        assert elapsed < 6.0, f"deadline nudge too slow: {elapsed:.1f}s"

    def test_cross_transport_streams_are_identical(self):
        def run(workers: int):
            events: list = []
            with WorkScheduler(max_workers=workers) as scheduler:
                handle = scheduler.submit(_emit_and_poll, 6, on_event=events.append)
                scheduler.drain()
            return events, handle.result, handle.state

        direct = run(0)
        queued = run(2)
        assert direct == queued
        assert direct[0] == list(range(6))


# ------------------------------------------------------------ crash recovery
class TestCrashRetry:
    def test_killed_worker_task_is_requeued_and_recovers(self, tmp_path):
        # The task hard-kills its worker process on the first run (breaking
        # the pool) and succeeds on the retry; an innocent peer task caught
        # in the same incident is requeued too and still completes.
        marker = str(tmp_path / "crash-once")
        with WorkScheduler(max_workers=2) as scheduler:
            crash = scheduler.submit(_crash_once, marker, name="crash-once")
            peer = scheduler.submit(_double, 21)
            scheduler.drain()
            stats = scheduler.stats
        assert crash.state is TaskState.DONE
        assert crash.result == "recovered"
        assert crash.retries >= 1
        assert peer.state is TaskState.DONE and peer.result == 42
        assert stats.task_retries >= 1
        assert stats.pool_rebuilds >= 1
        assert stats.tasks_done == 2 and stats.tasks_failed == 0

    def test_retries_exhaust_to_failed_without_wholesale_fallback(self):
        # A task that kills its worker every time must settle FAILED after
        # max_retries — not raise ExecutorUnavailable — and must not poison
        # the scheduler: a task submitted afterwards on the same scheduler
        # runs on the rebuilt pool and completes.
        with WorkScheduler(max_workers=2, max_retries=1) as scheduler:
            doomed = scheduler.submit(_always_crash, None, name="doomed")
            scheduler.drain()  # must NOT raise
            later = scheduler.submit(_double, 21)
            scheduler.drain()
            stats = scheduler.stats
        assert doomed.state is TaskState.FAILED
        assert doomed.retries == 2  # first incident + one retry, then give up
        assert "BrokenProcessPool" in doomed.error
        assert later.state is TaskState.DONE and later.result == 42
        assert stats.tasks_failed == 1 and stats.tasks_done == 1
        assert stats.task_retries == 1
        assert stats.pool_rebuilds == 2

    def test_on_retry_hook_fires_per_incident(self, tmp_path):
        marker = str(tmp_path / "crash-once")
        retried: list = []
        with WorkScheduler(max_workers=2) as scheduler:
            handle = scheduler.submit(
                _crash_once, marker, on_retry=lambda task: retried.append(task.name),
                name="watched",
            )
            scheduler.drain()
        assert handle.state is TaskState.DONE
        assert retried == ["watched"]


# ----------------------------------------------------- executor degradation
class TestExecutorUnavailable:
    def test_drain_raises_and_requeues(self, monkeypatch):
        import repro.exec.scheduler as scheduler_module

        def broken(*_args, **_kwargs):
            raise OSError("no worker processes on this platform")

        monkeypatch.setattr(scheduler_module, "_make_executor", broken)
        with WorkScheduler(max_workers=2) as scheduler:
            handle = scheduler.submit(_double, 1)
            with pytest.raises(ExecutorUnavailable):
                scheduler.drain()
            assert handle.state is TaskState.PENDING  # ready for a fallback path

    def test_parallel_synthesis_degrades_to_sequential(self, monkeypatch):
        import repro.exec.scheduler as scheduler_module

        def broken(*_args, **_kwargs):
            raise OSError("no worker processes on this platform")

        monkeypatch.setattr(scheduler_module, "_make_executor", broken)
        bench = get_benchmark("Oracle-1")
        config = SynthesisConfig()
        config.verifier_random_sequences = 10
        parallel = migrate(
            bench.source_program,
            bench.target_schema,
            replace(config, parallel_workers=2, parallel_wave_size=1),
        )
        sequential = migrate(bench.source_program, bench.target_schema, config)
        assert parallel.succeeded
        # The degraded run is the sequential run: same trajectory, and it
        # reports itself as sequential.
        assert parallel.parallel_workers_used == 0
        assert parallel.attempts == sequential.attempts


class TestWorkerCache:
    def test_worker_source_cache_capacity_only_grows(self):
        import repro.core.parallel as parallel_module
        from repro.core.parallel import _worker_cache

        saved = parallel_module._worker_source_cache
        parallel_module._worker_source_cache = None
        try:
            first = _worker_cache(100)
            assert first.max_entries == 100
            # A smaller request keeps the shared cache (and its entries)...
            assert _worker_cache(50) is first
            assert first.max_entries == 100
            # ... and a larger one grows it in place.
            assert _worker_cache(200) is first
            assert first.max_entries == 200
        finally:
            parallel_module._worker_source_cache = saved


# ------------------------------------------------------------------- compat
class TestTimeoutCompat:
    def test_both_spellings_are_caught(self):
        import concurrent.futures

        with pytest.raises(TIMEOUT_ERRORS):
            raise concurrent.futures.TimeoutError()
        with pytest.raises(TIMEOUT_ERRORS):
            raise TimeoutError()

    def test_parallel_module_reexports_shim(self):
        from repro.core.parallel import FuturesTimeout

        assert FuturesTimeout is FuturesTimeoutError
