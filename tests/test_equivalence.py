"""Tests for invocation sequences, result comparison, the bounded tester and verifier."""

import random

import pytest

from repro.datamodel import Attribute, DataType as T, make_schema
from repro.engine.uid import UniqueValue
from repro.equivalence import (
    BoundedTester,
    BoundedVerifier,
    SeedSet,
    SequenceGenerator,
    argument_combinations,
    canonicalize_result,
    format_sequence,
    results_equal,
    tables_touched,
)
from repro.equivalence.invocation import filtered_attributes, predicate_parameters
from repro.lang.builder import ProgramBuilder, delete, eq, insert, join, select, update


# ------------------------------------------------------------------------ result compare
class TestResultComparison:
    def test_equal_up_to_reordering(self):
        assert results_equal([[(1, "a"), (2, "b")]], [[(2, "b"), (1, "a")]])

    def test_bag_semantics_counts_duplicates(self):
        assert not results_equal([[(1,), (1,)]], [[(1,)]])

    def test_different_lengths_not_equal(self):
        assert not results_equal([[(1,)]], [[(1,)], [(2,)]])

    def test_uid_renaming_is_ignored(self):
        left = [[(UniqueValue(0), "x"), (UniqueValue(1), "y")]]
        right = [[(UniqueValue(7), "x"), (UniqueValue(9), "y")]]
        assert results_equal(left, right)

    def test_uid_sharing_structure_matters(self):
        # left shares one UID across rows, right uses two distinct UIDs
        left = [[(UniqueValue(0),), (UniqueValue(0),)]]
        right = [[(UniqueValue(1),), (UniqueValue(2),)]]
        assert not results_equal(left, right)

    def test_uid_never_equals_concrete_value(self):
        assert not results_equal([[(UniqueValue(0),)]], [[(0,)]])

    def test_canonicalize_result_sorts_rows(self):
        canonical = canonicalize_result([(2,), (1,)])
        assert canonical == ((1,), (2,))

    def test_mixed_types_sort_deterministically(self):
        rows = [(None,), ("a",), (1,), (True,)]
        assert canonicalize_result(list(rows)) == canonicalize_result(list(reversed(rows)))


# ------------------------------------------------------------- canonicalization soundness
class TestCanonicalizationSoundness:
    """Regressions for the renaming-dependent sort and the numeric sort key."""

    def test_uid_renaming_cannot_reorder_rows(self):
        # Regression: rows differing only in UIDs used to sort by the
        # pre-renaming UID index, so a renaming could flip the row order and
        # make two equivalent results canonicalize differently.  Here the
        # UID order (0, 1) agrees with the payload order ("b", "a") on the
        # left but disagrees on the right.
        left = [[(UniqueValue(0), "b"), (UniqueValue(1), "a")]]
        right = [[(UniqueValue(5), "b"), (UniqueValue(2), "a")]]
        assert results_equal(left, right)

    def test_negative_numbers_sort_by_value(self):
        # Regression: the f"{value:030.10f}" key ordered negatives by
        # reversed magnitude ("-2" < "-10" lexicographically).
        assert canonicalize_result([(-2,), (-10,), (3,)]) == ((-10,), (-2,), (3,))

    def test_huge_magnitudes_keep_total_order(self):
        # Regression: magnitudes overflowing the 30-char padding broke the
        # total order of the string key.
        big = 10 ** 35
        assert canonicalize_result([(big,), (1,), (-big,)]) == ((-big,), (1,), (big,))

    def test_tied_uid_rows_canonicalize_consistently(self):
        left = [[(UniqueValue(0), UniqueValue(1)), (UniqueValue(1), UniqueValue(0))]]
        right = [[(UniqueValue(9), UniqueValue(3)), (UniqueValue(3), UniqueValue(9))]]
        assert results_equal(left, right)

    def test_different_uid_sharing_still_distinguished(self):
        left = [[(UniqueValue(0), UniqueValue(0)), (UniqueValue(1), UniqueValue(2))]]
        right = [[(UniqueValue(0), UniqueValue(1)), (UniqueValue(2), UniqueValue(3))]]
        assert not results_equal(left, right)

    def test_nan_results_compare_consistently(self):
        # NaN breaks raw comparisons (nan != nan, all orderings False), so
        # canonical forms must sanitize it: identical NaN-bearing results are
        # equal, and row permutation cannot flip UID numbering around them.
        nan1, nan2 = float("nan"), float("nan")
        left = [(nan1, UniqueValue(0), "x"), (nan1, UniqueValue(1), "x"), (UniqueValue(0),)]
        swapped = [(nan2, UniqueValue(1), "x"), (nan2, UniqueValue(0), "x"), (UniqueValue(0),)]
        assert results_equal([left], [list(left)])
        # Same bag of rows in a different order: must be equal.
        assert results_equal([left], [swapped])
        assert results_equal([[(float("nan"),)]], [[(float("nan"),)]])
        assert not results_equal([[(float("nan"),)]], [[(0.0,)]])

    def test_duplicate_rows_do_not_trigger_the_lossy_fallback(self):
        # 10 identical rows have exactly one distinct ordering (multinomial,
        # not factorial), so the exact path must handle them — and still
        # distinguish the cross-row sharing structure of the other tie group.
        dupes = [(UniqueValue(0), UniqueValue(0))] * 10
        left = [tuple(r) for r in dupes] + [(UniqueValue(1), UniqueValue(1))]
        right = [tuple(r) for r in dupes] + [(UniqueValue(1), UniqueValue(2))]
        assert results_equal([left], [list(left)])
        assert not results_equal([left], [right])

    def test_oversized_tie_group_is_permutation_invariant(self):
        # 8 rows forming a UID cycle tie under the UID-blind key (8! orderings
        # exceeds the exact-canonicalization cap), exercising the abstraction
        # fallback: a row permutation of the same bag must compare equal.
        rng = random.Random(3)
        rows = [
            (UniqueValue(i), UniqueValue((i + 1) % 8)) for i in range(8)
        ]
        for _ in range(20):
            shuffled = list(rows)
            rng.shuffle(shuffled)
            assert results_equal([rows], [shuffled])

    def _random_result(self, rng):
        rows = []
        for _ in range(rng.randint(0, 5)):
            row = []
            for _ in range(rng.randint(1, 3)):
                choice = rng.random()
                if choice < 0.4:
                    row.append(UniqueValue(rng.randint(0, 4)))
                elif choice < 0.6:
                    row.append(rng.randint(-5, 5))
                elif choice < 0.8:
                    row.append(rng.choice(["a", "b"]))
                else:
                    row.append(None)
            rows.append(tuple(row))
        return rows

    def test_property_invariant_under_renaming_and_permutation(self):
        # Property (satellite requirement): canonicalize_outputs is invariant
        # under any injective UID renaming combined with any row permutation.
        rng = random.Random(7)
        for _ in range(300):
            rows = self._random_result(rng)
            permuted = list(rows)
            rng.shuffle(permuted)
            renaming = {}

            def rename(value):
                if isinstance(value, UniqueValue):
                    if value not in renaming:
                        # Injective: distinct fresh index per distinct UID.
                        renaming[value] = UniqueValue(1000 + 17 * len(renaming))
                    return renaming[value]
                return value

            renamed = [tuple(rename(v) for v in row) for row in permuted]
            assert canonicalize_result(rows) == canonicalize_result(renamed), (
                f"canonicalization not invariant for {rows!r} vs {renamed!r}"
            )

    def test_property_row_permutation_of_outputs(self):
        rng = random.Random(11)
        for _ in range(100):
            outputs = [self._random_result(rng) for _ in range(rng.randint(1, 3))]
            shuffled = [list(result) for result in outputs]
            for result in shuffled:
                rng.shuffle(result)
            assert results_equal(outputs, shuffled)


# ------------------------------------------------------------------------------ sequences
class TestSequenceGeneration:
    def test_argument_combinations_respect_seeds(self, people_program):
        func = people_program.function("addPerson")
        combos = argument_combinations(func, SeedSet.default())
        assert all(len(args) == 3 for args in combos)
        assert len(combos) >= 2

    def test_payload_parameters_use_single_constant(self, people_program):
        func = people_program.function("addPerson")
        key_attrs = filtered_attributes(people_program)
        params = predicate_parameters(func, key_attrs)
        combos = argument_combinations(func, SeedSet.default(), params)
        # id and name are keys (queried), age is payload -> only id/name vary
        ages = {args[2] for args in combos}
        assert len(ages) == 1

    def test_predicate_parameters_of_query(self, people_program):
        func = people_program.function("getPerson")
        assert predicate_parameters(func) == frozenset({"id"})

    def test_filtered_attributes(self, people_program):
        attrs = filtered_attributes(people_program)
        assert Attribute("Person", "PersonId") in attrs
        assert Attribute("Person", "Name") in attrs
        assert Attribute("Person", "Age") not in attrs

    def test_tables_touched(self, course_program):
        assert tables_touched(course_program.function("addInstructor")) == frozenset({"Instructor"})

    def test_sequences_increasing_length_end_with_query(self, people_program):
        generator = SequenceGenerator([people_program], max_updates=2)
        sequences = list(generator.sequences())
        assert sequences, "generator must produce sequences"
        lengths = [len(s) for s in sequences]
        assert lengths == sorted(lengths)
        for sequence in sequences:
            assert people_program.function(sequence[-1][0]).is_query
            for name, _ in sequence[:-1]:
                assert not people_program.function(name).is_query

    def test_relevance_filter_drops_unrelated_updates(self, course_program):
        generator = SequenceGenerator([course_program], max_updates=1)
        for sequence in generator.sequences():
            if len(sequence) == 2 and sequence[-1][0] == "getInstructorInfo":
                assert sequence[0][0] in {"addInstructor", "deleteInstructor"}

    def test_random_sequences_end_with_query(self, people_program):
        generator = SequenceGenerator([people_program])
        for sequence in generator.random_sequences(20, 4):
            assert people_program.function(sequence[-1][0]).is_query

    def test_format_sequence(self):
        text = format_sequence((("add", (1, "x")), ("get", (1,))))
        assert text == "add(1, 'x'); get(1)"


# --------------------------------------------------------------------------------- tester
def _people_variant(people_schema, *, swap_columns=False, wrong_delete=False):
    """A variant of the people program over the same schema, possibly buggy."""
    pb = ProgramBuilder("people_variant", people_schema)
    name_attr, age_attr = "Person.Name", "Person.Age"
    if swap_columns:
        name_attr, age_attr = age_attr, name_attr
    pb.update("addPerson", [("id", "int"), ("name", "str"), ("age", "int")],
              insert("Person", {"Person.PersonId": "$id", name_attr: "$name", age_attr: "$age"}))
    delete_pred = eq("Person.Name", "$id") if wrong_delete else eq("Person.PersonId", "$id")
    pb.update("deletePerson", [("id", "int")], delete("Person", "Person", delete_pred))
    pb.query("getPerson", [("id", "int")],
             select(["Person.Name", "Person.Age"], "Person", eq("Person.PersonId", "$id")))
    pb.query("findByName", [("name", "str")],
             select(["Person.PersonId"], "Person", eq("Person.Name", "$name")))
    return pb.build(validate=False)


class TestBoundedTester:
    def test_identical_program_is_equivalent(self, people_program, people_schema):
        tester = BoundedTester(people_program)
        assert tester.check_equivalent(_people_variant(people_schema))

    def test_swapped_columns_detected(self, people_program, people_schema):
        tester = BoundedTester(people_program)
        buggy = _people_variant(people_schema, swap_columns=True)
        failing = tester.find_failing_input(buggy)
        assert failing is not None

    def test_wrong_delete_detected_and_mfi_is_minimal(self, people_program, people_schema):
        tester = BoundedTester(people_program)
        buggy = _people_variant(people_schema, wrong_delete=True)
        failing = tester.find_failing_input(buggy)
        assert failing is not None
        # minimal counterexample needs an insert, the buggy delete and a query
        assert len(failing) <= 3

    def test_source_output_cache_is_used(self, people_program, people_schema):
        tester = BoundedTester(people_program)
        tester.check_equivalent(_people_variant(people_schema))
        tester.check_equivalent(_people_variant(people_schema, swap_columns=True))
        assert tester.stats.source_cache_hits > 0

    def test_running_example_wrong_candidate(self, course_program, course_target_schema):
        """The spurious candidate from Section 2 is rejected with a short MFI."""
        pb = ProgramBuilder("wrong", course_target_schema)
        pb.update("addInstructor", [("id", "int"), ("name", "str"), ("pic", "binary")],
                  insert("Instructor", {"Instructor.InstId": "$id", "Instructor.IName": "$name"}))
        pb.update("deleteInstructor", [("id", "int")],
                  delete("Instructor", "Instructor", eq("Instructor.InstId", "$id")))
        pic_instructor = join(["Picture", "Instructor"], on=[("Picture.PicId", "Instructor.PicId")])
        pic_ta = join(["Picture", "TA"], on=[("Picture.PicId", "TA.PicId")])
        pb.query("getInstructorInfo", [("id", "int")],
                 select(["Instructor.IName", "Picture.Pic"], pic_instructor,
                        eq("Instructor.InstId", "$id")))
        pb.update("addTA", [("id", "int"), ("name", "str"), ("pic", "binary")],
                  insert("TA", {"TA.TaId": "$id", "TA.TName": "$name"}))
        pb.update("deleteTA", [("id", "int")],
                  delete("TA", "TA", eq("TA.TaId", "$id")))
        pb.query("getTAInfo", [("id", "int")],
                 select(["TA.TName", "Picture.Pic"], pic_ta, eq("TA.TaId", "$id")))
        wrong = pb.build(validate=False)
        tester = BoundedTester(course_program)
        failing = tester.find_failing_input(wrong)
        assert failing is not None
        assert len(failing) == 2  # e.g. addTA(...); getTAInfo(...)

    def test_explain_mentions_failing_sequence(self, people_program, people_schema):
        tester = BoundedTester(people_program)
        text = tester.explain(_people_variant(people_schema, swap_columns=True))
        assert "differ" in text


# -------------------------------------------------------------------------------- verifier
class TestBoundedVerifier:
    def test_accepts_equivalent_program(self, people_program, people_schema):
        verifier = BoundedVerifier(max_updates=2, random_sequences=50)
        assert verifier.verify(people_program, _people_variant(people_schema)).equivalent

    def test_rejects_buggy_program_with_counterexample(self, people_program, people_schema):
        verifier = BoundedVerifier(max_updates=2, random_sequences=50)
        verdict = verifier.verify(people_program, _people_variant(people_schema, wrong_delete=True))
        assert not verdict.equivalent
        assert verdict.counterexample is not None

    def test_sequence_cap_is_respected(self, people_program, people_schema):
        verifier = BoundedVerifier(max_updates=3, random_sequences=0, max_sequences=10)
        verdict = verifier.verify(people_program, _people_variant(people_schema))
        assert verdict.sequences_checked <= 11


# ------------------------------------------------------- error-semantics agreement
def _erroring_people(people_schema):
    """A people program whose delete raises ExecutionError when invoked.

    The delete targets a table outside its own join chain, which the engine
    rejects at execution time.
    """
    pb = ProgramBuilder("people_broken", people_schema)
    pb.update("addPerson", [("id", "int"), ("name", "str"), ("age", "int")],
              insert("Person", {"Person.PersonId": "$id", "Person.Name": "$name",
                                "Person.Age": "$age"}))
    pb.update("deletePerson", [("id", "int")],
              delete("Ghost", "Person", eq("Person.PersonId", "$id")))
    pb.query("getPerson", [("id", "int")],
             select(["Person.Name", "Person.Age"], "Person", eq("Person.PersonId", "$id")))
    pb.query("findByName", [("name", "str")],
             select(["Person.PersonId"], "Person", eq("Person.Name", "$name")))
    return pb.build(validate=False)


class TestErrorSemanticsAgreement:
    """Tester and verifier must agree on ExecutionError semantics.

    The seed code disagreed: the tester treated a candidate ``ExecutionError``
    as failing while the verifier compared ``None == None`` and would accept a
    candidate that errors wherever the source errors — the same candidate
    could pass verification yet fail testing on the same sequence.
    """

    def test_erroring_candidate_fails_testing(self, people_program, people_schema):
        tester = BoundedTester(people_program)
        failing = tester.find_failing_input(_erroring_people(people_schema))
        assert failing is not None
        assert any(name == "deletePerson" for name, _ in failing)

    def test_erroring_candidate_fails_verification(self, people_program, people_schema):
        verifier = BoundedVerifier(max_updates=2, random_sequences=0)
        verdict = verifier.verify(people_program, _erroring_people(people_schema))
        assert not verdict.equivalent
        assert verdict.counterexample is not None

    def test_both_erroring_is_not_equivalence(self, people_schema):
        # Regression: with source and candidate both erroring, the seed
        # verifier returned "equivalent" (None == None) while the tester
        # raised — now both propagate the source error.
        from repro.engine.joins import ExecutionError

        broken = _erroring_people(people_schema)
        verifier = BoundedVerifier(max_updates=2, random_sequences=0)
        with pytest.raises(ExecutionError):
            verifier.verify(broken, _erroring_people(people_schema))
        tester = BoundedTester(broken)
        with pytest.raises(ExecutionError):
            tester.find_failing_input(_erroring_people(people_schema))
