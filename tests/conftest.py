"""Shared fixtures: the paper's running example and a few small schemas."""

from __future__ import annotations

import pytest

from repro.datamodel import DataType as T
from repro.datamodel import make_schema
from repro.lang.builder import ProgramBuilder, delete, eq, insert, select


@pytest.fixture(scope="session")
def course_source_schema():
    """Source schema of the paper's running example (Section 2)."""
    return make_schema(
        "course_src",
        {
            "Class": {"ClassId": T.INT, "InstId": T.INT, "TaId": T.INT},
            "Instructor": {"InstId": T.INT, "IName": T.STRING, "IPic": T.BINARY},
            "TA": {"TaId": T.INT, "TName": T.STRING, "TPic": T.BINARY},
        },
    )


@pytest.fixture(scope="session")
def course_target_schema():
    """Target schema of the running example: pictures split into their own table."""
    return make_schema(
        "course_tgt",
        {
            "Class": {"ClassId": T.INT, "InstId": T.INT, "TaId": T.INT},
            "Instructor": {"InstId": T.INT, "IName": T.STRING, "PicId": T.INT},
            "TA": {"TaId": T.INT, "TName": T.STRING, "PicId": T.INT},
            "Picture": {"PicId": T.INT, "Pic": T.BINARY},
        },
    )


@pytest.fixture(scope="session")
def course_program(course_source_schema):
    """The Figure 2 program of the paper."""
    pb = ProgramBuilder("course", course_source_schema)
    pb.update(
        "addInstructor",
        [("id", "int"), ("name", "str"), ("pic", "binary")],
        insert("Instructor", {"Instructor.InstId": "$id", "Instructor.IName": "$name",
                              "Instructor.IPic": "$pic"}),
    )
    pb.update("deleteInstructor", [("id", "int")],
              delete("Instructor", "Instructor", eq("Instructor.InstId", "$id")))
    pb.query("getInstructorInfo", [("id", "int")],
             select(["Instructor.IName", "Instructor.IPic"], "Instructor",
                    eq("Instructor.InstId", "$id")))
    pb.update(
        "addTA",
        [("id", "int"), ("name", "str"), ("pic", "binary")],
        insert("TA", {"TA.TaId": "$id", "TA.TName": "$name", "TA.TPic": "$pic"}),
    )
    pb.update("deleteTA", [("id", "int")],
              delete("TA", "TA", eq("TA.TaId", "$id")))
    pb.query("getTAInfo", [("id", "int")],
             select(["TA.TName", "TA.TPic"], "TA", eq("TA.TaId", "$id")))
    return pb.build()


@pytest.fixture(scope="session")
def people_schema():
    """A tiny single-table schema used by many unit tests."""
    return make_schema(
        "people",
        {"Person": {"PersonId": T.INT, "Name": T.STRING, "Age": T.INT}},
    )


@pytest.fixture(scope="session")
def people_program(people_schema):
    pb = ProgramBuilder("people_prog", people_schema)
    pb.update("addPerson", [("id", "int"), ("name", "str"), ("age", "int")],
              insert("Person", {"Person.PersonId": "$id", "Person.Name": "$name",
                                "Person.Age": "$age"}))
    pb.update("deletePerson", [("id", "int")],
              delete("Person", "Person", eq("Person.PersonId", "$id")))
    pb.query("getPerson", [("id", "int")],
             select(["Person.Name", "Person.Age"], "Person", eq("Person.PersonId", "$id")))
    pb.query("findByName", [("name", "str")],
             select(["Person.PersonId"], "Person", eq("Person.Name", "$name")))
    return pb.build()
