"""Tests for the relational execution engine (joins, predicates, statements, interpreter)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datamodel import Attribute, DataType as T, DatabaseInstance, make_schema
from repro.engine import (
    Evaluator,
    ExecutionError,
    ProgramInterpreter,
    UidGenerator,
    UniqueValue,
    compare,
    evaluate_join,
    run_invocation_sequence,
)
from repro.lang import CompareOp
from repro.lang.builder import (
    ProgramBuilder,
    conj,
    delete,
    eq,
    gt,
    in_query,
    insert,
    join,
    select,
    update,
)


@pytest.fixture()
def car_schema():
    """The Car/Part example of Section 3.1 (Example 3.1)."""
    return make_schema(
        "cars",
        {
            "Car": {"cid": T.INT, "model": T.STRING, "year": T.INT},
            "Part": {"name": T.STRING, "amount": T.INT, "cid": T.INT},
        },
    )


@pytest.fixture()
def car_instance(car_schema):
    instance = DatabaseInstance(car_schema)
    instance.insert("Car", {"cid": 1, "model": "M1", "year": 2016})
    instance.insert("Car", {"cid": 2, "model": "M2", "year": 2018})
    instance.insert("Part", {"name": "tire", "amount": 10, "cid": 1})
    instance.insert("Part", {"name": "brake", "amount": 20, "cid": 1})
    instance.insert("Part", {"name": "tire", "amount": 20, "cid": 2})
    instance.insert("Part", {"name": "brake", "amount": 30, "cid": 2})
    return instance


CAR_PART = join(["Car", "Part"], on=[("Car.cid", "Part.cid")])


# ------------------------------------------------------------------------------- joins
class TestJoins:
    def test_single_table_join(self, car_instance):
        rows = evaluate_join(car_instance, join(["Car"]))
        assert len(rows) == 2

    def test_equi_join_matches_pairs(self, car_instance):
        rows = evaluate_join(car_instance, CAR_PART)
        assert len(rows) == 4
        for row in rows:
            assert row.value(Attribute("Car", "cid")) == row.value(Attribute("Part", "cid"))

    def test_join_provenance_tracks_rowids(self, car_instance):
        rows = evaluate_join(car_instance, CAR_PART)
        car_rowids = {row.rowid("Car") for row in rows}
        assert len(car_rowids) == 2

    def test_join_with_no_matches_is_empty(self, car_schema):
        instance = DatabaseInstance(car_schema)
        instance.insert("Car", {"cid": 1, "model": "M1", "year": 2016})
        instance.insert("Part", {"name": "tire", "amount": 10, "cid": 99})
        assert evaluate_join(instance, CAR_PART) == []

    def test_three_way_join(self, course_target_schema):
        instance = DatabaseInstance(course_target_schema)
        instance.insert("Picture", {"PicId": 7, "Pic": "blob"})
        instance.insert("Instructor", {"InstId": 1, "IName": "Ann", "PicId": 7})
        instance.insert("Class", {"ClassId": 10, "InstId": 1, "TaId": 2})
        chain = join(
            ["Picture", "Instructor", "Class"],
            on=[("Picture.PicId", "Instructor.PicId"), ("Instructor.InstId", "Class.InstId")],
        )
        rows = evaluate_join(instance, chain)
        assert len(rows) == 1
        assert rows[0].value(Attribute("Class", "ClassId")) == 10

    def test_self_join_rejected(self, car_instance):
        with pytest.raises(ExecutionError):
            evaluate_join(car_instance, join(["Car", "Car"]))

    def test_condition_over_foreign_table_rejected(self, car_instance):
        bad = join(["Car"], on=[("Car.cid", "Part.cid")])
        with pytest.raises(ExecutionError):
            evaluate_join(car_instance, bad)

    def test_join_condition_order_does_not_matter(self, car_instance):
        reversed_chain = join(["Part", "Car"], on=[("Car.cid", "Part.cid")])
        rows = evaluate_join(car_instance, reversed_chain)
        assert len(rows) == 4


# --------------------------------------------------------------------------- predicates
class TestCompare:
    def test_equality(self):
        assert compare(1, CompareOp.EQ, 1)
        assert not compare(1, CompareOp.EQ, 2)
        assert compare("a", CompareOp.NE, "b")

    def test_ordering_on_numbers_and_strings(self):
        assert compare(1, CompareOp.LT, 2)
        assert compare("a", CompareOp.LT, "b")
        assert compare(3, CompareOp.GE, 3)

    def test_ordering_with_null_is_false(self):
        assert not compare(None, CompareOp.LT, 1)
        assert not compare(1, CompareOp.GT, None)

    def test_ordering_with_uid_is_false(self):
        assert not compare(UniqueValue(0), CompareOp.LT, 1)

    def test_uid_equality_is_identity(self):
        assert compare(UniqueValue(0), CompareOp.EQ, UniqueValue(0))
        assert not compare(UniqueValue(0), CompareOp.EQ, UniqueValue(1))
        assert not compare(UniqueValue(0), CompareOp.EQ, 0)

    def test_mixed_type_ordering_is_false(self):
        assert not compare("a", CompareOp.LT, 1)


class TestQueryEvaluation:
    def test_projection_and_selection(self, car_instance):
        evaluator = Evaluator(car_instance)
        query = select(["Part.name", "Part.amount"], CAR_PART, eq("Car.model", "M1"))
        result = evaluator.query_tuples(query, {})
        assert sorted(result) == [("brake", 20), ("tire", 10)]

    def test_selection_with_parameter(self, car_instance):
        evaluator = Evaluator(car_instance)
        query = select(["Car.model"], "Car", eq("Car.cid", "$cid"))
        assert evaluator.query_tuples(query, {"cid": 2}) == [("M2",)]

    def test_unbound_parameter_raises(self, car_instance):
        evaluator = Evaluator(car_instance)
        query = select(["Car.model"], "Car", eq("Car.cid", "$cid"))
        with pytest.raises(ExecutionError):
            evaluator.query_tuples(query, {})

    def test_conjunction_and_comparison(self, car_instance):
        evaluator = Evaluator(car_instance)
        query = select(
            ["Part.name"], CAR_PART, conj(eq("Car.model", "M2"), gt("Part.amount", 25))
        )
        assert evaluator.query_tuples(query, {}) == [("brake",)]

    def test_in_subquery(self, car_instance):
        evaluator = Evaluator(car_instance)
        sub = select(["Car.cid"], "Car", eq("Car.model", "M1"))
        query = select(["Part.name"], "Part", in_query("Part.cid", sub))
        assert sorted(evaluator.query_tuples(query, {})) == [("brake",), ("tire",)]

    def test_query_without_projection_returns_all_columns(self, car_instance):
        evaluator = Evaluator(car_instance)
        result = evaluator.query_tuples(join(["Car"]), {})
        assert (1, "M1", 2016) in result

    def test_bag_semantics_keeps_duplicates(self, car_schema):
        instance = DatabaseInstance(car_schema)
        instance.insert("Car", {"cid": 1, "model": "M1", "year": 2000})
        instance.insert("Car", {"cid": 1, "model": "M1", "year": 2000})
        evaluator = Evaluator(instance)
        result = evaluator.query_tuples(select(["Car.model"], "Car", eq("Car.cid", 1)), {})
        assert result == [("M1",), ("M1",)]


# --------------------------------------------------------------------------- statements
class TestStatementExecution:
    def test_insert_single_table(self, car_schema):
        instance = DatabaseInstance(car_schema)
        evaluator = Evaluator(instance)
        evaluator.execute(insert("Car", {"Car.cid": 3, "Car.model": "M3", "Car.year": 2020}), {})
        assert instance.snapshot()["Car"] == [(3, "M3", 2020)]

    def test_insert_with_parameters(self, car_schema):
        instance = DatabaseInstance(car_schema)
        evaluator = Evaluator(instance)
        evaluator.execute(insert("Car", {"Car.cid": "$c", "Car.model": "$m"}), {"c": 9, "m": "X"})
        row = instance.snapshot()["Car"][0]
        assert row[0] == 9 and row[1] == "X"
        assert isinstance(row[2], UniqueValue)  # unsupplied column gets a fresh UID

    def test_insert_into_join_shares_link_value(self, course_target_schema):
        instance = DatabaseInstance(course_target_schema)
        evaluator = Evaluator(instance)
        chain = join(["Picture", "Instructor"], on=[("Picture.PicId", "Instructor.PicId")])
        evaluator.execute(
            insert(chain, {"Instructor.InstId": 1, "Instructor.IName": "Ann", "Picture.Pic": "blob"}),
            {},
        )
        snapshot = instance.snapshot()
        pic_id = snapshot["Picture"][0][0]
        assert isinstance(pic_id, UniqueValue)
        assert snapshot["Instructor"][0][2] == pic_id  # shared fresh link value

    def test_insert_into_join_propagates_provided_key(self, course_target_schema):
        # Example from the paper: inserting through Class JOIN Instructor propagates
        # the provided InstId into the Class row.
        instance = DatabaseInstance(course_target_schema)
        evaluator = Evaluator(instance)
        chain = join(["Class", "Instructor"], on=[("Class.InstId", "Instructor.InstId")])
        evaluator.execute(
            insert(chain, {"Instructor.InstId": 5, "Instructor.IName": "Ann"}), {}
        )
        snapshot = instance.snapshot()
        assert snapshot["Class"][0][1] == 5
        assert snapshot["Instructor"][0][0] == 5

    def test_example_3_1_delete(self, car_instance):
        evaluator = Evaluator(car_instance)
        evaluator.execute(
            delete(["Car", "Part"], CAR_PART, eq("Car.model", "M1")), {}
        )
        snapshot = car_instance.snapshot()
        assert snapshot["Car"] == [(2, "M2", 2018)]
        assert sorted(snapshot["Part"]) == [("brake", 30, 2), ("tire", 20, 2)]

    def test_example_3_1_update(self, car_instance):
        evaluator = Evaluator(car_instance)
        evaluator.execute(
            update(CAR_PART, conj(eq("Car.model", "M2"), eq("Part.name", "tire")),
                   "Part.amount", 30),
            {},
        )
        assert ("tire", 30, 2) in car_instance.snapshot()["Part"]

    def test_delete_only_listed_tables(self, car_instance):
        evaluator = Evaluator(car_instance)
        evaluator.execute(delete(["Part"], CAR_PART, eq("Car.model", "M1")), {})
        snapshot = car_instance.snapshot()
        assert len(snapshot["Car"]) == 2
        assert len(snapshot["Part"]) == 2

    def test_delete_with_true_predicate_clears_matching_rows(self, car_instance):
        evaluator = Evaluator(car_instance)
        evaluator.execute(delete(["Part"], "Part", None), {})
        assert car_instance.snapshot()["Part"] == []

    def test_update_through_join_targets_owner_table(self, car_instance):
        evaluator = Evaluator(car_instance)
        evaluator.execute(update(CAR_PART, eq("Part.name", "tire"), "Car.year", 1999), {})
        years = {row[2] for row in car_instance.snapshot()["Car"]}
        assert years == {1999}

    def test_uid_generator_is_deterministic(self):
        gen1, gen2 = UidGenerator(), UidGenerator()
        assert [gen1.fresh() for _ in range(3)] == [gen2.fresh() for _ in range(3)]


# -------------------------------------------------------------------------- interpreter
class TestInterpreter:
    def test_update_then_query(self, people_program):
        interp = ProgramInterpreter(people_program)
        assert interp.call("addPerson", (1, "Ann", 30)) is None
        assert interp.call("getPerson", (1,)) == [("Ann", 30)]

    def test_wrong_arity_raises(self, people_program):
        interp = ProgramInterpreter(people_program)
        with pytest.raises(ExecutionError):
            interp.call("addPerson", (1,))

    def test_reset_restores_empty_database(self, people_program):
        interp = ProgramInterpreter(people_program)
        interp.call("addPerson", (1, "Ann", 30))
        interp.reset()
        assert interp.call("getPerson", (1,)) == []

    def test_run_invocation_sequence_returns_query_outputs(self, people_program):
        outputs = run_invocation_sequence(
            people_program,
            [("addPerson", (1, "Ann", 30)), ("getPerson", (1,)), ("findByName", ("Ann",))],
        )
        assert outputs == [[("Ann", 30)], [(1,)]]

    def test_delete_removes_matching_rows_only(self, people_program):
        outputs = run_invocation_sequence(
            people_program,
            [
                ("addPerson", (1, "Ann", 30)),
                ("addPerson", (2, "Bob", 40)),
                ("deletePerson", (1,)),
                ("getPerson", (1,)),
                ("getPerson", (2,)),
            ],
        )
        assert outputs == [[], [("Bob", 40)]]

    def test_running_example_source_program(self, course_program):
        outputs = run_invocation_sequence(
            course_program,
            [
                ("addInstructor", (1, "Ann", "p1")),
                ("addTA", (2, "Tom", "p2")),
                ("getInstructorInfo", (1,)),
                ("getTAInfo", (2,)),
                ("deleteInstructor", (1,)),
                ("getInstructorInfo", (1,)),
            ],
        )
        assert outputs == [[("Ann", "p1")], [("Tom", "p2")], []]

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 3), st.sampled_from(["A", "B"])), max_size=6))
    def test_insert_count_matches_queries(self, people_program, entries):
        """Property: the number of rows returned for an id equals the number of inserts."""
        sequence = [("addPerson", (pid, name, 20)) for pid, name in entries]
        sequence.append(("getPerson", (1,)))
        outputs = run_invocation_sequence(people_program, sequence)
        expected = sum(1 for pid, _ in entries if pid == 1)
        assert len(outputs[0]) == expected
