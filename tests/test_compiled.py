"""Differential tests: the compiled backend must match the interpreter.

The compiled execution backend (repro.engine.compiler) is only usable by the
equivalence layer if it is *output*- and *error*-equivalent to the tree-walk
interpreter — a divergence would make the tester's verdicts depend on the
``execution_backend`` knob.  These tests pin that contract:

* every registered workload, executed on enumerated and random invocation
  sequences, produces identical outputs under both backends;
* a hypothesis property drives randomized sequences through randomly chosen
  workloads;
* hand-built ill-formed programs (the error modes PR 1's semantics work
  pinned for the interpreter) raise the same exception classes, including
  the lazy per-row errors that must *not* fire on empty tables;
* the slotted data layer (`Row`, `JoinedRow`, `CRow`) rejects dynamic
  attributes, and the cached-column insert fast path keeps the public
  ``DatabaseInstance.insert`` behaviour.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.datamodel import DataType as T, DatabaseInstance, make_schema
from repro.datamodel.instance import InstanceError, Row
from repro.engine import (
    CRow,
    JoinedRow,
    ProgramCompiler,
    compile_program,
    run_invocation_sequence,
)
from repro.engine.joins import ExecutionError
from repro.engine.interpreter import InvocationError
from repro.equivalence.invocation import SequenceGenerator
from repro.equivalence.tester import BoundedTester
from repro.lang.builder import (
    ProgramBuilder,
    delete,
    eq,
    in_query,
    insert,
    join,
    select,
    update,
)
from repro.workloads.registry import load_all


def both_outcomes(program, sequence):
    """(kind, payload) pairs for the interpreter and the compiled backend.

    Outputs compare exactly (not canonicalized): the backends must agree on
    row order and UID allocation, not merely up to renaming.
    """

    def run(runner):
        try:
            return ("ok", runner())
        except Exception as error:  # noqa: BLE001 - the class is the assertion
            return ("err", type(error))

    interp = run(lambda: run_invocation_sequence(program, sequence))
    compiled = run(lambda: compile_program(program).run_sequence(sequence))
    return interp, compiled


def assert_equivalent(program, sequence):
    interp, compiled = both_outcomes(program, sequence)
    assert interp == compiled, (
        f"backends diverge on {sequence}: interpreter={interp} compiled={compiled}"
    )


# ----------------------------------------------------------------- workloads
WORKLOADS = load_all().names()


@pytest.mark.parametrize("name", WORKLOADS)
def test_differential_enumerated_sequences(name):
    """Enumerated bounded-tester sequences agree exactly on every workload."""
    program = load_all().get(name).source_program
    compiled = compile_program(program)
    generator = SequenceGenerator(programs=[program])
    checked = 0
    for sequence in itertools.islice(generator.sequences(), 80):
        checked += 1
        assert run_invocation_sequence(program, sequence) == compiled.run_sequence(sequence)
    assert checked > 0


@settings(max_examples=40, deadline=None)
@given(
    name=st.sampled_from(WORKLOADS),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_differential_random_sequences(name, seed):
    """Property: random sequences from the registry agree under both backends."""
    import random

    program = load_all().get(name).source_program
    generator = SequenceGenerator(programs=[program])
    rng = random.Random(seed)
    for sequence in generator.random_sequences(3, 5, rng):
        assert_equivalent(program, sequence)


# ------------------------------------------------------------ error semantics
@pytest.fixture()
def two_table_schema():
    return make_schema(
        "s",
        {
            "A": {"id": T.INT, "x": T.STRING},
            "B": {"id": T.INT, "y": T.STRING},
        },
    )


class TestErrorEquivalence:
    def test_self_join_raises_in_both(self, two_table_schema):
        pb = ProgramBuilder("p", two_table_schema)
        pb.query("q", [], select(["A.id"], join(["A", "A"]), None))
        program = pb.build(validate=False)
        interp, compiled = both_outcomes(program, [("q", ())])
        assert interp == compiled == ("err", ExecutionError)

    def test_condition_over_foreign_table_raises_in_both(self, two_table_schema):
        pb = ProgramBuilder("p", two_table_schema)
        pb.query("q", [], select(["A.id"], join(["A"], on=[("A.id", "B.id")]), None))
        program = pb.build(validate=False)
        interp, compiled = both_outcomes(program, [("q", ())])
        assert interp == compiled == ("err", ExecutionError)

    def test_delete_target_outside_chain(self, two_table_schema):
        pb = ProgramBuilder("p", two_table_schema)
        pb.update("add", [("i", "int")], insert("A", {"A.id": "$i"}))
        pb.update("d", [], delete(["B"], "A", None))
        program = pb.build(validate=False)
        assert_equivalent(program, [("add", (1,)), ("d", ())])

    def test_update_attribute_outside_chain(self, two_table_schema):
        pb = ProgramBuilder("p", two_table_schema)
        pb.update("add", [("i", "int")], insert("A", {"A.id": "$i"}))
        pb.update("u", [], update("A", None, "B.y", "z"))
        program = pb.build(validate=False)
        assert_equivalent(program, [("add", (1,)), ("u", ())])

    def test_predicate_attribute_error_is_lazy(self, two_table_schema):
        """The interpreter only raises per row; empty tables stay silent."""
        pb = ProgramBuilder("p", two_table_schema)
        pb.update("add", [("i", "int")], insert("A", {"A.id": "$i"}))
        pb.query("q", [], select(["A.id"], "A", eq("B.y", "z")))
        program = pb.build(validate=False)
        empty, empty_c = both_outcomes(program, [("q", ())])
        assert empty == empty_c == ("ok", [[]])
        populated, populated_c = both_outcomes(program, [("add", (1,)), ("q", ())])
        assert populated == populated_c == ("err", ExecutionError)

    def test_join_condition_bad_column_is_lazy(self, two_table_schema):
        """A bad column in a join condition raises only when pairs exist."""
        pb = ProgramBuilder("p", two_table_schema)
        pb.update("a", [("i", "int")], insert("A", {"A.id": "$i"}))
        pb.update("b", [("i", "int")], insert("B", {"B.id": "$i"}))
        pb.query("q", [], select(["A.id"], join(["A", "B"], on=[("A.nope", "B.id")]), None))
        program = pb.build(validate=False)
        for sequence in (
            [("q", ())],
            [("a", (1,)), ("q", ())],  # one side empty: no pairs, no error
            [("a", (1,)), ("b", (1,)), ("q", ())],
        ):
            assert_equivalent(program, sequence)

    def test_unknown_table_error_ordering(self, two_table_schema):
        """An unknown mid-chain table raises at its join step, not upfront.

        With rows in A, the per-row error of the degenerate condition over
        ``A.nope`` must fire before the unknown table ``C`` is ever reached —
        and the ExecutionError it raises is the one the tester can catch.
        """
        pb = ProgramBuilder("p", two_table_schema)
        pb.update("add", [("i", "int")], insert("A", {"A.id": "$i"}))
        pb.query(
            "q", [], select(["A.id"], join(["A", "C"], on=[("A.nope", "A.x")]), None)
        )
        program = pb.build(validate=False)
        # Empty A: the first-table filter is a no-op, so C's InstanceError fires.
        interp, compiled = both_outcomes(program, [("q", ())])
        assert interp == compiled == ("err", InstanceError)
        # Non-empty A: the per-row condition error wins in both backends.
        interp, compiled = both_outcomes(program, [("add", (1,)), ("q", ())])
        assert interp == compiled == ("err", ExecutionError)

    def test_unbound_parameter_raises_in_both(self, two_table_schema):
        pb = ProgramBuilder("p", two_table_schema)
        pb.update("add", [("i", "int")], insert("A", {"A.id": "$i"}))
        pb.query("q", [], select(["A.id"], "A", eq("A.id", "$nope")))
        program = pb.build(validate=False)
        assert_equivalent(program, [("q", ())])  # no rows: predicate never runs
        assert_equivalent(program, [("add", (1,)), ("q", ())])

    def test_arity_and_unknown_function(self, two_table_schema):
        pb = ProgramBuilder("p", two_table_schema)
        pb.query("q", [("i", "int")], select(["A.id"], "A", eq("A.id", "$i")))
        program = pb.build(validate=False)
        interp, compiled = both_outcomes(program, [("q", ())])
        assert interp == compiled == ("err", InvocationError)
        interp, compiled = both_outcomes(program, [("zzz", ())])
        assert interp == compiled == ("err", KeyError)


# --------------------------------------------------------- compiled specifics
class TestCompiledEngine:
    def test_insert_into_join_uid_allocation_order(self, course_target_schema):
        """Fresh UIDs are observable in outputs: allocation order must match."""
        pb = ProgramBuilder("p", course_target_schema)
        chain = join(["Picture", "Instructor"], on=[("Picture.PicId", "Instructor.PicId")])
        pb.update(
            "add",
            [("n", "str")],
            insert(chain, {"Instructor.IName": "$n"}),
        )
        pb.query("all_pics", [], select(["Picture.PicId", "Picture.Pic"], "Picture", None))
        pb.query(
            "joined",
            [],
            select(["Instructor.IName"], chain, None),
        )
        program = pb.build(validate=False)
        assert_equivalent(
            program, [("add", ("Ann",)), ("add", ("Bob",)), ("all_pics", ()), ("joined", ())]
        )

    def test_in_subquery_matches_interpreter(self, two_table_schema):
        pb = ProgramBuilder("p", two_table_schema)
        pb.update("a", [("i", "int"), ("x", "str")], insert("A", {"A.id": "$i", "A.x": "$x"}))
        pb.update("b", [("i", "int")], insert("B", {"B.id": "$i"}))
        sub = select(["B.id"], "B", None)
        pb.query("q", [], select(["A.x"], "A", in_query("A.id", sub)))
        program = pb.build(validate=False)
        assert_equivalent(
            program,
            [("a", (1, "one")), ("a", (2, "two")), ("b", (2,)), ("q", ())],
        )

    def test_in_subquery_unhashable_values_fall_back(self, two_table_schema):
        """Unhashable members or probes degrade to the interpreter's == scan."""
        from repro.lang.builder import const

        pb = ProgramBuilder("p", two_table_schema)
        pb.update("a", [], insert("A", {"A.id": const([1]), "A.x": const("ax")}))
        pb.update("b", [], insert("B", {"B.id": const(1), "B.y": const("by")}))
        # Unhashable probe (A.id is a list) against hashable members.
        pb.query("probe", [], select(["A.x"], "A", in_query("A.id", select(["B.id"], "B", None))))
        # Hashable probe against unhashable members (A.id values are lists).
        pb.query("members", [], select(["B.y"], "B", in_query("B.id", select(["A.id"], "A", None))))
        program = pb.build(validate=False)
        assert_equivalent(program, [("a", ()), ("b", ()), ("probe", ()), ("members", ())])

    def test_hash_join_unhashable_value_falls_back(self, two_table_schema):
        """An unhashable join key degrades to the nested loop, same results."""
        from repro.engine.compiler import _FunctionCompiler
        from repro.engine.compiled import CompiledState

        fc = _FunctionCompiler(two_table_schema)
        plan, _pos = fc.compile_chain(join(["A", "B"], on=[("A.id", "B.id")]))
        state = CompiledState(fc.num_tables)
        state.append_row(0, [[1], "row-a"])  # list key: unhashable
        state.append_row(1, [[1], "row-b"])
        state.append_row(1, [[2], "row-b2"])
        rows = plan(state)
        assert len(rows) == 1
        assert rows[0][0].vals[1] == "row-a" and rows[0][1].vals[1] == "row-b"

    def test_compiler_caches_shared_function_asts(self, people_program):
        compiler = ProgramCompiler()
        first = compiler.compile_program(people_program)
        clone = people_program.with_functions(list(people_program), name="clone")
        second = compiler.compile_program(clone)
        for name in people_program.function_names:
            assert first.functions[name] is second.functions[name]

    def test_tester_backends_agree_on_verdicts(self, people_program):
        from repro.lang.ast import UpdateFunction

        broken = people_program.with_functions(
            [f for f in people_program if f.name != "deletePerson"]
            + [
                # deletePerson that deletes everything: observably different.
                UpdateFunction(
                    "deletePerson",
                    people_program.function("deletePerson").params,
                    (delete(["Person"], "Person", None),),
                )
            ],
            name="broken",
        )
        verdicts = {}
        for backend in ("interpreter", "compiled"):
            tester = BoundedTester(people_program, execution_backend=backend)
            verdicts[backend] = (
                tester.find_failing_input(broken),
                tester.check_equivalent(people_program.with_functions(list(people_program))),
            )
        assert verdicts["interpreter"] == verdicts["compiled"]
        failing, self_equivalent = verdicts["compiled"]
        assert failing is not None and self_equivalent

    def test_unknown_backend_rejected(self, people_program):
        with pytest.raises(ValueError):
            BoundedTester(people_program, execution_backend="jit")


# ------------------------------------------------------------- data layer
class TestSlottedDataLayer:
    def test_row_has_no_dict(self):
        row = Row(1, {"a": 1})
        with pytest.raises(AttributeError):
            row.extra = 1  # type: ignore[attr-defined]

    def test_joined_row_has_no_dict(self):
        jrow = JoinedRow({}, {})
        with pytest.raises(AttributeError):
            jrow.extra = 1  # type: ignore[attr-defined]

    def test_crow_has_no_dict(self):
        crow = CRow(1, [1, 2])
        with pytest.raises(AttributeError):
            crow.extra = 1  # type: ignore[attr-defined]

    def test_sat_watcher_has_no_dict(self):
        from repro.sat.solver import _Watcher

        watcher = _Watcher(0, 1)
        with pytest.raises(AttributeError):
            watcher.extra = 1  # type: ignore[attr-defined]

    def test_insert_fast_path_keeps_public_checks(self, people_schema):
        instance = DatabaseInstance(people_schema)
        with pytest.raises(InstanceError):
            instance.insert("Person", {"Nope": 1})
        from repro.datamodel.types import TypeError_

        with pytest.raises(TypeError_):
            instance.insert("Person", {"PersonId": "not-an-int"})
        instance.insert("Person", {"PersonId": 1})
        assert instance.snapshot()["Person"] == [(1, None, None)]
        assert instance.columns_of("Person") == ("PersonId", "Name", "Age")
        with pytest.raises(InstanceError):
            instance.columns_of("Nope")
