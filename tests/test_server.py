"""The async multi-tenant service front (repro.server).

Layers under test, bottom up:

* tenants / quotas / stride pacing — pure-Python admission mechanics;
* the SSE bridge — sequencing, persist-before-fanout, bounded-queue
  shedding, subscription release;
* the synchronous :class:`ServiceFront` core — durable-deferred admission,
  duplicate rejection, backlog cancellation;
* the HTTP surface over a real listening :class:`ServerThread` — auth,
  submission, quota 429s, tenant visibility, SSE streaming with
  ``Last-Event-ID`` resume (including across a server restart over the
  SQLite store), disconnect cleanup;
* equivalence — server-submitted jobs settle with the same trajectories as
  direct :class:`MigrationService` runs (full registry sweep behind
  ``REPRO_FULL_EQUIV=1``);
* the CI server smoke (``REPRO_SERVER_SMOKE=1``): a real ``python -m
  repro.server`` subprocess, mixed two-tenant batch, rate-limit 429, SSE
  first-event latency, kill -9 mid-batch, resume from the SQLite store
  with pinned results.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.api import MigrationService, SynthesisConfig
from repro.jobstore import JobStore
from repro.server import (
    EventHub,
    QuotaExceeded,
    QuotaGate,
    ServerThread,
    ServiceFront,
    StridePacer,
    Tenant,
    TenantQuota,
    TenantRegistry,
    TokenBucket,
    event_payload,
    format_frame,
)
from repro.server.sse import jsonable
from repro.workloads import benchmark_names, get_benchmark

ROOT = Path(__file__).resolve().parents[1]

CONFIG = {"verifier_random_sequences": 10}


def _config(**overrides) -> SynthesisConfig:
    config = SynthesisConfig()
    config.verifier_random_sequences = 10
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


# ------------------------------------------------------------------- tenants
class TestTenantRegistry:
    def test_resolve_by_key(self):
        registry = TenantRegistry([Tenant(name="acme", api_key="k1", weight=2)])
        tenant = registry.resolve("k1")
        assert tenant.name == "acme" and tenant.weight == 2
        assert registry.resolve("wrong") is None
        assert registry.resolve("") is None
        assert not registry.open

    def test_open_registry_resolves_everything_to_public(self):
        registry = TenantRegistry()
        assert registry.open
        tenant = registry.resolve("anything")
        assert tenant.name == "public"
        # The implicit tenant is unlimited on every axis.
        assert tenant.quota.max_queued == 0 and tenant.quota.submit_rate == 0.0

    def test_duplicate_names_and_keys_rejected(self):
        registry = TenantRegistry([Tenant(name="a", api_key="k1")])
        with pytest.raises(ValueError, match="already registered"):
            registry.add(Tenant(name="a", api_key="k2"))
        with pytest.raises(ValueError, match="already in use"):
            registry.add(Tenant(name="b", api_key="k1"))

    def test_from_specs(self):
        registry = TenantRegistry.from_specs(["acme:k1:3", "zed:k2"])
        assert registry.resolve("k1").weight == 3
        assert registry.resolve("k2").weight == 1
        with pytest.raises(ValueError, match="name:key"):
            TenantRegistry.from_specs(["lonely"])

    def test_from_file(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(
            json.dumps(
                [
                    {
                        "name": "acme",
                        "api_key": "k1",
                        "weight": 2,
                        "quota": {"max_queued": 5, "submit_rate": 1.5},
                    }
                ]
            )
        )
        tenant = TenantRegistry.from_file(str(path)).resolve("k1")
        assert tenant.quota.max_queued == 5
        assert tenant.quota.submit_rate == 1.5
        assert tenant.quota.max_running == TenantQuota().max_running  # default


# -------------------------------------------------------------------- quotas
class TestTokenBucket:
    def test_zero_rate_is_unlimited(self):
        bucket = TokenBucket(0.0, 1)
        assert all(bucket.try_take() is None for _ in range(100))

    def test_burst_exhaustion_returns_wait_hint(self):
        bucket = TokenBucket(5.0, 3)
        assert [bucket.try_take() for _ in range(3)] == [None, None, None]
        wait = bucket.try_take()
        assert wait is not None and 0.0 < wait <= 0.2  # 1 token at 5/s

    def test_tokens_refill_over_time(self):
        bucket = TokenBucket(10.0, 1)
        assert bucket.try_take() is None
        assert bucket.try_take() is not None
        bucket._updated -= 1.0  # simulate a second passing
        assert bucket.try_take() is None


class TestQuotaGate:
    def _tenant(self, **quota) -> Tenant:
        return Tenant(name="t", quota=TenantQuota(**quota))

    def test_queue_depth_refusal_and_release(self):
        gate = QuotaGate()
        tenant = self._tenant(max_queued=2, submit_rate=0.0)
        gate.admit_submit(tenant)
        gate.admit_submit(tenant)
        with pytest.raises(QuotaExceeded, match="max_queued=2"):
            gate.admit_submit(tenant)
        gate.job_settled("t", was_dispatched=False)
        gate.admit_submit(tenant)  # a settled job frees its slot
        assert gate.counts("t") == (2, 0)

    def test_rate_refusal_carries_retry_after(self):
        gate = QuotaGate()
        tenant = self._tenant(max_queued=0, submit_rate=100.0, burst=1)
        gate.admit_submit(tenant)
        with pytest.raises(QuotaExceeded) as excinfo:
            gate.admit_submit(tenant)
        assert excinfo.value.retry_after > 0

    def test_forget_refunds_failed_submission(self):
        gate = QuotaGate()
        tenant = self._tenant(submit_rate=0.0)
        gate.admit_submit(tenant)
        gate.forget("t")
        assert gate.counts("t") == (0, 0)

    def test_may_dispatch_tracks_running(self):
        gate = QuotaGate()
        tenant = self._tenant(max_running=1, submit_rate=0.0)
        assert gate.may_dispatch(tenant)
        gate.job_dispatched("t")
        assert not gate.may_dispatch(tenant)
        gate.job_settled("t", was_dispatched=True)
        assert gate.may_dispatch(tenant)


class TestStridePacer:
    def test_weight_two_gets_twice_the_share(self):
        pacer = StridePacer()
        heavy = Tenant(name="heavy", weight=2)
        light = Tenant(name="light", weight=1)
        # Alternating submissions: the weight-2 tenant's pass climbs 5000 a
        # job, the weight-1 tenant's 10000 — so per stretch of virtual time
        # heavy lands twice the slots (priority = dispatch order).
        trace = [
            pacer.next_priority(heavy),  # vt 0      -> 5000
            pacer.next_priority(light),  # vt 5000   -> 15000
            pacer.next_priority(heavy),  #           -> 10000
            pacer.next_priority(light),  #           -> 25000
            pacer.next_priority(heavy),  #           -> 15000
            pacer.next_priority(heavy),  #           -> 20000
        ]
        assert trace == [5000, 15000, 10000, 25000, 15000, 20000]
        # heavy fits four dispatch slots in the span light uses for two.
        assert max(trace[::2] + trace[5:]) <= 20000 < trace[3]

    def test_idle_tenant_rejoins_at_virtual_time(self):
        pacer = StridePacer()
        busy = Tenant(name="busy", weight=1)
        sleeper = Tenant(name="sleeper", weight=1)
        pacer.next_priority(sleeper)  # pass 10000, then idles
        for _ in range(5):
            pacer.next_priority(busy)  # pass climbs to 50000
        # Rejoining starts from the current virtual time (min outstanding
        # pass = 10000), not from zero — idling banked exactly one stride.
        assert pacer.next_priority(sleeper) == 20000
        assert pacer.next_priority(sleeper) == 30000


# ----------------------------------------------------------------- SSE bits
class TestSSEPayloads:
    def test_format_frame_shape(self):
        frame = format_frame(7, {"kind": "solved", "index": 1})
        assert frame == b'id: 7\nevent: solved\ndata: {"index": 1, "kind": "solved"}\n\n'

    def test_typed_event_projection(self):
        from repro.core.session import VcSelected

        payload = event_payload(VcSelected(index=3, weight=2))
        assert payload["kind"] == "vc_selected"
        assert payload["index"] == 3 and payload["weight"] == 2

    def test_non_json_fields_degrade_to_repr(self):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        assert jsonable({"deep": [Opaque()]}) == {"deep": ["<opaque>"]}
        json.dumps(event_payload({"kind": "x", "payload": Opaque()}))  # serializable


class TestEventHub:
    def _run(self, coro):
        return asyncio.run(coro)

    def test_publish_persists_before_fanout_and_seeds_from_store(self, tmp_path):
        store = JobStore(tmp_path / "events.jsonl", fsync=False)
        store.record_event("job", 5, {"kind": "old"})  # a previous life

        async def scenario():
            hub = EventHub(store, asyncio.get_running_loop())
            subscription = hub.subscribe("job")
            seq = hub.publish("job", {"kind": "fresh"})
            assert seq == 6  # monotonic across restarts
            # Persisted already, delivered after the loop tick.
            assert store.last_event_seq("job") == 6
            await asyncio.sleep(0)
            assert subscription.queue.get_nowait() == (6, {"kind": "fresh"})
            assert hub.history("job", after=5) == [(6, {"kind": "fresh"})]

        self._run(scenario())

    def test_bounded_queue_sheds_oldest_and_counts(self, tmp_path):
        store = JobStore(tmp_path / "events.jsonl", fsync=False)

        async def scenario():
            hub = EventHub(store, asyncio.get_running_loop())
            subscription = hub.subscribe("job", maxsize=3)
            for index in range(6):
                hub.publish("job", {"kind": "tick", "n": index})
            await asyncio.sleep(0)
            assert subscription.dropped == 3
            kept = [subscription.queue.get_nowait()[0] for _ in range(3)]
            assert kept == [4, 5, 6]  # freshest survive
            # Everything shed is still replayable from the store.
            assert [seq for seq, _ in hub.history("job", after=0)] == [1, 2, 3, 4, 5, 6]

        self._run(scenario())

    def test_unsubscribe_releases_the_bridge(self, tmp_path):
        store = JobStore(tmp_path / "events.jsonl", fsync=False)

        async def scenario():
            hub = EventHub(store, asyncio.get_running_loop())
            subscription = hub.subscribe("job")
            assert hub.subscriber_count("job") == 1
            hub.unsubscribe(subscription)
            assert hub.subscriber_count("job") == 0
            hub.unsubscribe(subscription)  # idempotent

        self._run(scenario())


# ------------------------------------------------------- the front (no HTTP)
class TestServiceFrontCore:
    def _front(self, tmp_path, **quota) -> tuple[ServiceFront, Tenant]:
        tenant = Tenant(name="acme", api_key="k", quota=TenantQuota(**quota))
        front = ServiceFront(
            str(tmp_path / "jobs.sqlite"),
            tenants=TenantRegistry([tenant]),
            fsync=False,
        )
        return front, tenant

    def _job(self, name: str):
        from repro.service import MigrationJob

        bench = get_benchmark("Oracle-1")
        return MigrationJob(name, bench.source_program, bench.target_schema, _config())

    def test_admission_is_durable_deferred(self, tmp_path):
        front, tenant = self._front(tmp_path, submit_rate=0.0)
        summary = front.submit(tenant, self._job("j1"))
        assert summary["tenant"] == "acme" and summary["priority"] == 10000
        stored = front.store.load_jobs()["j1"]
        assert stored.deferred and stored.tenant == "acme"

    def test_duplicate_name_refunds_quota(self, tmp_path):
        front, tenant = self._front(tmp_path, submit_rate=0.0)
        front.submit(tenant, self._job("dup"))
        with pytest.raises(ValueError, match="already exists"):
            front.submit(tenant, self._job("dup"))
        assert front.quotas.counts("acme") == (1, 0)  # refused submit refunded

    def test_cancel_backlogged_job_settles_in_store(self, tmp_path):
        front, tenant = self._front(tmp_path, submit_rate=0.0)
        front.submit(tenant, self._job("doomed"))
        assert front.cancel("doomed") is True
        stored = front.store.load_jobs()["doomed"]
        assert stored.status == "cancelled" and stored.settled
        assert front.quotas.counts("acme") == (0, 0)
        assert front.cancel("doomed") is False  # nothing left to cancel


# --------------------------------------------------------------- HTTP layer
def _http(base: str, path: str, *, key: str = "", payload=None, headers=None):
    """One JSON request; returns (status, decoded body, response headers)."""
    request_headers = dict(headers or {})
    if key:
        request_headers["X-API-Key"] = key
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(base + path, data=data, headers=request_headers)
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            headers_out = {k.lower(): v for k, v in response.headers.items()}
            return response.status, json.loads(response.read()), headers_out
    except urllib.error.HTTPError as error:
        headers_out = {k.lower(): v for k, v in error.headers.items()}
        return error.code, json.loads(error.read()), headers_out


def _sse_frames(base: str, name: str, *, key: str, after: int = 0, timeout: float = 120):
    """Consume one SSE stream to its job_settled end; [(id, kind)] pairs."""
    request = urllib.request.Request(
        f"{base}/jobs/{name}/events",
        headers={"X-API-Key": key, "Last-Event-ID": str(after)},
    )
    frames = []
    with urllib.request.urlopen(request, timeout=timeout) as response:
        event_id, kind = 0, ""
        for raw in response:
            line = raw.decode("utf-8").rstrip("\n")
            if line.startswith("id: "):
                event_id = int(line[4:])
            elif line.startswith("event: "):
                kind = line[7:]
            elif not line and kind:
                frames.append((event_id, kind))
                if kind == "job_settled":
                    return frames
                kind = ""
    return frames


def _poll_settled(base: str, key: str, *, deadline: float = 120.0) -> list[dict]:
    end = time.time() + deadline
    while time.time() < end:
        _, jobs, _ = _http(base, "/jobs", key=key)
        if jobs and all(j["status"] not in ("pending", "running") for j in jobs):
            return jobs
        time.sleep(0.05)
    raise AssertionError("jobs did not settle in time")


def _two_tenant_registry(**alpha_quota) -> TenantRegistry:
    return TenantRegistry(
        [
            Tenant(name="alpha", api_key="k-alpha", weight=1, quota=TenantQuota(submit_rate=0.0, **alpha_quota)),
            Tenant(name="beta", api_key="k-beta", weight=2, quota=TenantQuota(submit_rate=0.0)),
        ]
    )


@pytest.fixture()
def server(tmp_path):
    front = ServiceFront(
        str(tmp_path / "jobs.sqlite"), tenants=_two_tenant_registry(), fsync=False
    )
    thread = ServerThread(front).start()
    try:
        yield thread, "http://%s:%d" % thread.address
    finally:
        thread.stop()


class TestServerHTTP:
    def test_healthz_needs_no_auth_but_jobs_do(self, server):
        _, base = server
        assert _http(base, "/healthz")[0] == 200
        status, body, _ = _http(base, "/jobs")
        assert status == 401 and "API key" in body["error"]
        assert _http(base, "/jobs", key="nope")[0] == 401
        assert _http(base, "/nothing", key="k-alpha")[0] == 404

    def test_submit_runs_and_serves_results(self, server):
        _, base = server
        status, body, _ = _http(
            base, "/jobs", key="k-alpha", payload={"benchmark": "Oracle-1", "config": CONFIG}
        )
        assert status == 202 and body["tenant"] == "alpha" and not body["deferred"]
        (name,) = body["submitted"]
        jobs = _poll_settled(base, "k-alpha")
        assert [j["status"] for j in jobs] == ["done"]
        status, job, _ = _http(base, f"/jobs/{name}", key="k-alpha")
        assert status == 200
        assert job["result"]["succeeded"] is True
        assert job["tenant"] == "alpha"

    def test_bad_requests_fail_loudly(self, server):
        _, base = server
        assert _http(base, "/jobs", key="k-alpha", payload={"benchmark": "nope"})[0] == 400
        status, body, _ = _http(
            base, "/jobs", key="k-alpha", payload={"config": {"no_such_field": 1}}
        )
        assert status == 400 and "no_such_field" in body["error"]
        status, body, _ = _http(
            base, "/jobs", key="k-alpha", payload={"config": {"verifier_random_sequences": "many"}}
        )
        assert status == 400 and "expects int" in body["error"]

    def test_duplicate_submission_conflicts(self, server):
        _, base = server
        payload = {"benchmark": "Oracle-1", "config": CONFIG}
        assert _http(base, "/jobs", key="k-alpha", payload=payload)[0] == 202
        status, body, _ = _http(base, "/jobs", key="k-alpha", payload=payload)
        assert status == 409 and "already exists" in body["error"]

    def test_queue_quota_yields_429_with_partial_admission(self, tmp_path):
        front = ServiceFront(
            str(tmp_path / "jobs.sqlite"),
            tenants=_two_tenant_registry(max_queued=2),
            fsync=False,
        )
        with ServerThread(front) as thread:
            base = "http://%s:%d" % thread.address
            status, body, headers = _http(
                base,
                "/jobs",
                key="k-alpha",
                payload={"benchmark": "Oracle-1", "variants": 3, "config": CONFIG},
            )
            assert status == 429
            assert "max_queued=2" in body["error"]
            assert len(body["submitted"]) == 2  # the accepted prefix stays
            assert int(headers["retry-after"]) >= 1
            # The accepted half still runs to completion.
            jobs = _poll_settled(base, "k-alpha")
            assert sorted(j["job"] for j in jobs) == sorted(body["submitted"])
            assert all(j["status"] == "done" for j in jobs)

    def test_stride_priorities_favor_weighted_tenant(self, server):
        _, base = server
        _, alpha, _ = _http(
            base,
            "/jobs",
            key="k-alpha",
            payload={"benchmark": "Oracle-1", "variants": 1, "config": CONFIG},
        )
        _, beta, _ = _http(
            base,
            "/jobs",
            key="k-beta",
            payload={"benchmark": "Ambler-4", "variants": 1, "config": CONFIG},
        )
        # weight 1 strides 10000/job; weight 2 strides 5000/job, joining at
        # the current virtual time (alpha's pass, 20000).
        assert sorted(alpha["priorities"].values()) == [10000, 20000]
        assert sorted(beta["priorities"].values()) == [25000, 30000]
        _poll_settled(base, "k-alpha")
        _poll_settled(base, "k-beta")

    def test_tenant_visibility_is_scoped(self, server):
        _, base = server
        _, alpha, _ = _http(
            base, "/jobs", key="k-alpha", payload={"benchmark": "Oracle-1", "config": CONFIG}
        )
        _, beta, _ = _http(
            base, "/jobs", key="k-beta", payload={"benchmark": "Ambler-4", "config": CONFIG}
        )
        alpha_jobs = _poll_settled(base, "k-alpha")
        beta_jobs = _poll_settled(base, "k-beta")
        assert {j["job"] for j in alpha_jobs} == set(alpha["submitted"])
        assert {j["job"] for j in beta_jobs} == set(beta["submitted"])
        # Cross-tenant name lookups 404 (existence is not leaked).
        foreign = beta["submitted"][0]
        assert _http(base, f"/jobs/{foreign}", key="k-alpha")[0] == 404
        assert _http(base, f"/jobs/{foreign}/events", key="k-alpha")[0] == 404
        assert _http(base, f"/jobs/{foreign}/cancel", key="k-alpha", payload={})[0] == 404

    def test_cancel_unknown_job_404s(self, server):
        _, base = server
        assert _http(base, "/jobs/ghost/cancel", key="k-alpha", payload={})[0] == 404


class TestServerSSE:
    def test_stream_ends_with_job_settled_and_monotonic_ids(self, server):
        _, base = server
        _, body, _ = _http(
            base, "/jobs", key="k-alpha", payload={"benchmark": "Oracle-1", "config": CONFIG}
        )
        (name,) = body["submitted"]
        frames = _sse_frames(base, name, key="k-alpha")
        ids = [event_id for event_id, _ in frames]
        assert ids == list(range(1, len(frames) + 1))  # gap-free from 1
        assert frames[-1][1] == "job_settled"
        assert any(kind == "solved" for _, kind in frames)

    def test_last_event_id_resume_is_gap_and_duplicate_free(self, server):
        _, base = server
        _, body, _ = _http(
            base, "/jobs", key="k-alpha", payload={"benchmark": "Oracle-1", "config": CONFIG}
        )
        (name,) = body["submitted"]
        frames = _sse_frames(base, name, key="k-alpha")
        for cut in (0, 1, len(frames) - 1, len(frames)):
            after = frames[cut - 1][0] if cut else 0
            resumed = _sse_frames(base, name, key="k-alpha", after=after)
            assert resumed == frames[cut:], f"resume after id {after}"

    def test_resume_across_server_restart_on_same_store(self, tmp_path):
        store = str(tmp_path / "jobs.sqlite")
        front = ServiceFront(store, tenants=_two_tenant_registry(), fsync=False)
        with ServerThread(front) as thread:
            base = "http://%s:%d" % thread.address
            _, body, _ = _http(
                base, "/jobs", key="k-alpha", payload={"benchmark": "Oracle-1", "config": CONFIG}
            )
            (name,) = body["submitted"]
            frames = _sse_frames(base, name, key="k-alpha")

        # A brand-new server process (fresh hub, fresh seqs) on the old store.
        front2 = ServiceFront(store, tenants=_two_tenant_registry(), fsync=False)
        with ServerThread(front2) as thread2:
            base2 = "http://%s:%d" % thread2.address
            replayed = _sse_frames(base2, name, key="k-alpha")
            assert replayed == frames  # identical ids, no duplicate terminal
            mid = len(frames) // 2
            resumed = _sse_frames(base2, name, key="k-alpha", after=frames[mid][0])
            assert resumed == frames[mid + 1 :]

    def test_disconnect_mid_stream_releases_subscription(self, server):
        thread, base = server
        # A deferred job exists in the store but never settles — its SSE
        # stream stays open until the client goes away.
        _, body, _ = _http(
            base,
            "/jobs",
            key="k-alpha",
            payload={"benchmark": "Oracle-1", "defer": True, "config": CONFIG},
        )
        (name,) = body["submitted"]
        host, port = thread.address
        with socket.create_connection((host, port), timeout=10) as raw:
            raw.sendall(
                (
                    f"GET /jobs/{name}/events HTTP/1.1\r\n"
                    f"Host: {host}\r\nX-API-Key: k-alpha\r\n\r\n"
                ).encode()
            )
            raw.recv(1024)  # response head: the stream is live
            deadline = time.time() + 10
            while thread.front.hub.subscriber_count(name) == 0:
                assert time.time() < deadline, "subscription never registered"
                time.sleep(0.02)
        # Closing the socket must tear the subscription down.
        deadline = time.time() + 10
        while thread.front.hub.subscriber_count(name) != 0:
            assert time.time() < deadline, "disconnect did not release the bridge"
            time.sleep(0.02)

    def test_bad_last_event_id_is_400(self, server):
        _, base = server
        _, body, _ = _http(
            base,
            "/jobs",
            key="k-alpha",
            payload={"benchmark": "Oracle-1", "defer": True, "config": CONFIG},
        )
        (name,) = body["submitted"]
        status, _, _ = _http(
            base, f"/jobs/{name}/events", key="k-alpha", headers={"Last-Event-ID": "seven"}
        )
        assert status == 400


# ------------------------------------------------------------- equivalence
def _direct_response(benchmark_name: str) -> dict:
    """The reference: one direct MigrationService run of the same job."""
    from repro.service import MigrationJob

    bench = get_benchmark(benchmark_name)
    service = MigrationService()
    (handle,) = service.submit_batch(
        [
            MigrationJob(
                f"{bench.name}->{bench.target_schema.name}",
                bench.source_program,
                bench.target_schema,
                _config(),
            )
        ]
    )
    service.run()
    return handle.to_dict(include_program=False)


def _comparable(response: dict) -> tuple:
    """Everything deterministic in a job response (no wall-clock fields)."""
    result = response["result"]
    return (
        response["status"],
        result["succeeded"],
        result["iterations"],
        result["attempts"],
        result["value_correspondences_tried"],
    )


class TestServerEquivalence:
    NAMES = ["Oracle-1", "Ambler-3", "Ambler-5"]

    def _assert_server_matches_direct(self, names, *, store):
        front = ServiceFront(store, tenants=_two_tenant_registry(), fsync=False)
        with ServerThread(front) as thread:
            base = "http://%s:%d" % thread.address
            submitted = {}
            for benchmark in names:
                _, body, _ = _http(
                    base,
                    "/jobs",
                    key="k-alpha",
                    payload={"benchmark": benchmark, "config": CONFIG},
                )
                (submitted[benchmark],) = body["submitted"]
            _poll_settled(base, "k-alpha", deadline=600.0)
            for benchmark, name in submitted.items():
                _, via_server, _ = _http(base, f"/jobs/{name}", key="k-alpha")
                assert _comparable(via_server) == _comparable(
                    _direct_response(benchmark)
                ), benchmark

    def test_server_jobs_match_direct_runs_on_registry_slice(self, tmp_path):
        self._assert_server_matches_direct(
            self.NAMES, store=str(tmp_path / "jobs.sqlite")
        )

    @pytest.mark.skipif(
        os.environ.get("REPRO_FULL_EQUIV", "") in ("", "0", "false"),
        reason="full registry sweep; set REPRO_FULL_EQUIV=1",
    )
    def test_server_jobs_match_direct_runs_on_all_workloads(self, tmp_path):
        self._assert_server_matches_direct(
            list(benchmark_names()), store=str(tmp_path / "jobs.sqlite")
        )


# ------------------------------------------------------------- server smoke
@pytest.mark.skipif(
    os.environ.get("REPRO_SERVER_SMOKE", "") in ("", "0", "false"),
    reason="subprocess server smoke; set REPRO_SERVER_SMOKE=1",
)
class TestServerSmoke:
    """The CI smoke: a real ``python -m repro.server`` subprocess — mixed
    two-tenant batch, rate-limit 429, SSE latency, kill -9, pinned resume."""

    def _spawn(self, store: str) -> tuple[subprocess.Popen, str]:
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.server",
                "--listen",
                "127.0.0.1:0",
                "--store",
                store,
                "--tenant",
                "alpha:k-alpha",
                "--tenant",
                "beta:k-beta:2",
                "--no-fsync",
            ],
            env={**os.environ, "PYTHONPATH": str(ROOT / "src")},
            stdout=subprocess.PIPE,
            text=True,
        )
        line = process.stdout.readline()
        assert "listening on " in line, f"server banner missing: {line!r}"
        return process, "http://" + line.strip().rpartition("listening on ")[2]

    def test_mixed_batch_429_sse_kill9_resume(self, tmp_path):
        store = f"sqlite:{tmp_path / 'smoke.sqlite'}"
        process, base = self._spawn(store)
        try:
            # Mixed two-tenant batch; the weighted tenant strides tighter.
            _, alpha, _ = _http(
                base,
                "/jobs",
                key="k-alpha",
                payload={"benchmark": "coachup", "variants": 1, "config": CONFIG},
            )
            _, beta, _ = _http(
                base,
                "/jobs",
                key="k-beta",
                payload={"benchmark": "Oracle-1", "variants": 1, "config": CONFIG},
            )
            alpha_steps = sorted(alpha["priorities"].values())
            beta_steps = sorted(beta["priorities"].values())
            assert alpha_steps[1] - alpha_steps[0] == 10000  # weight 1
            assert beta_steps[1] - beta_steps[0] == 5000  # weight 2

            # SSE first-event latency: the stream yields a frame promptly.
            start = time.time()
            frames = _sse_frames(base, alpha["submitted"][0], key="k-alpha")
            assert frames, "no SSE frames before settle"
            assert time.time() - start < 60.0
            assert frames[-1][1] == "job_settled"

            # Default tenant quotas: burst 20 → the 22-job batch trips the
            # rate limit with a Retry-After hint, accepted prefix intact.
            status, body, headers = _http(
                base,
                "/jobs",
                key="k-beta",
                payload={
                    "benchmark": "Ambler-4",
                    "variants": 21,
                    "config": CONFIG,
                    "name_prefix": "flood-",
                },
            )
            assert status == 429 and "submit rate" in body["error"]
            assert 0 < len(body["submitted"]) < 22
            assert "retry-after" in headers

            # Let some of the flood land, then kill -9 mid-batch.
            time.sleep(1.0)
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=10)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)

        # Reboot on the same store: boot-time resume re-pins and finishes.
        process, base = self._spawn(store)
        try:
            alpha_jobs = _poll_settled(base, "k-alpha", deadline=300.0)
            beta_jobs = _poll_settled(base, "k-beta", deadline=300.0)
            assert all(j["status"] == "done" for j in alpha_jobs + beta_jobs)

            # Pinned: the planned coachup job matches a direct run exactly.
            name = next(j["job"] for j in alpha_jobs if j["job"].endswith("->coachup_tgt"))
            _, via_server, _ = _http(base, f"/jobs/{name}", key="k-alpha")
            assert _comparable(via_server) == _comparable(_direct_response("coachup"))

            # Cross-restart SSE replay: still gap-free from id 1.
            frames = _sse_frames(base, name, key="k-alpha")
            assert [i for i, _ in frames] == list(range(1, len(frames) + 1))
            assert frames[-1][1] == "job_settled"
        finally:
            process.kill()
            process.wait(timeout=10)
