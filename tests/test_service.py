"""Tests for the multi-job MigrationService facade (repro.service),
including the persistent job store and resumable batches."""

from __future__ import annotations

import json
import os

import pytest

from repro import SynthesisConfig, format_program, migrate
from repro.api import (
    CandidateRejected,
    JobStatus,
    JobStore,
    MigrationJob,
    MigrationService,
    SessionEvent,
    VcSelected,
    migrate_batch,
)
from repro.workloads import SchemaSpec, benchmark_names, get_benchmark, rename_column


def _config(**overrides) -> SynthesisConfig:
    config = SynthesisConfig()
    config.verifier_random_sequences = 10
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def _job(name: str, config: SynthesisConfig | None = None, **job_fields) -> MigrationJob:
    bench = get_benchmark(name)
    return MigrationJob(
        name, bench.source_program, bench.target_schema, config or _config(), **job_fields
    )


def _long_config() -> SynthesisConfig:
    """A job that churns through thousands of candidates on one sketch."""
    return _config(
        completion_strategy="enumerative",
        counterexample_pool=False,
        final_verification=False,
        max_iterations_per_sketch=None,
    )


def _trajectory(result) -> tuple:
    """Everything except wall-clock and run-environment-dependent counters."""
    return (
        result.succeeded,
        result.timed_out,
        result.cancelled,
        result.value_correspondences_tried,
        result.iterations,
        result.attempts,
        None if result.program is None else format_program(result.program),
        result.correspondence,
    )


class TestInProcessService:
    def test_batch_results_match_individual_migrate(self):
        names = ["Oracle-1", "Ambler-3", "MathHotSpot"]
        jobs = [_job(name) for name in names]
        results = MigrationService().migrate_batch(jobs)
        for job, result in zip(jobs, results):
            solo = migrate(job.source_program, job.target_schema, _config())
            # Distinct source programs share nothing observable, so the
            # service-run results are the same trajectories as solo runs.
            assert result.attempts == solo.attempts
            assert format_program(result.program) == format_program(solo.program)

    def test_handles_report_status_and_responses(self):
        service = MigrationService()
        handles = service.submit_batch([_job("Oracle-1"), _job("Ambler-4")])
        assert all(handle.status is JobStatus.PENDING for handle in handles)
        service.run()
        assert all(handle.status is JobStatus.DONE for handle in handles)
        response = handles[0].to_dict(include_program=False)
        assert response["job"] == "Oracle-1"
        assert response["status"] == "done"
        assert response["result"]["succeeded"] is True
        assert response["result"]["program"] is None

    def test_failed_job_is_isolated(self):
        service = MigrationService()
        bad = _job("Oracle-1", _config(completion_strategy="magic"))
        good = _job("Ambler-4")
        bad_handle, good_handle = service.submit_batch([bad, good])
        service.run()
        assert bad_handle.status is JobStatus.FAILED
        assert "magic" in bad_handle.error
        assert bad_handle.result is None
        assert good_handle.status is JobStatus.DONE
        assert good_handle.result.succeeded
        with pytest.raises(RuntimeError):
            MigrationService().migrate_batch([bad])

    def test_cancel_pending_job_skips_it(self):
        service = MigrationService()
        first, second = service.submit_batch([_job("Oracle-1"), _job("Ambler-4")])
        second.cancel()
        service.run()
        assert first.status is JobStatus.DONE
        assert second.status is JobStatus.CANCELLED
        assert second.result is None

    def test_cancel_running_job_mid_completion(self):
        # Cancel the Ambler-3 job from its own event stream (first candidate
        # rejection): the session winds down cooperatively and the service
        # reports CANCELLED with the partial result attached, while the next
        # job still runs to completion.
        from repro.api import CandidateRejected

        service = MigrationService(on_event=lambda name, event: _maybe_cancel(name, event))
        target_handle, other_handle = service.submit_batch(
            [_job("Ambler-3"), _job("Oracle-1")]
        )

        def _maybe_cancel(name: str, event: SessionEvent) -> None:
            if name == "Ambler-3" and isinstance(event, CandidateRejected):
                target_handle.cancel()

        service.run()
        assert target_handle.status is JobStatus.CANCELLED
        assert target_handle.result is not None and target_handle.result.cancelled
        assert other_handle.status is JobStatus.DONE

    def test_on_event_is_tagged_with_job_name(self):
        seen: set[str] = set()
        service = MigrationService(on_event=lambda name, event: seen.add(name))
        service.migrate_batch([_job("Oracle-1"), _job("Ambler-4")])
        assert seen == {"Oracle-1", "Ambler-4"}

    def test_per_job_parallelism_is_flattened(self):
        # The service parallelizes across jobs; a job asking for its own
        # worker pool runs sequentially instead of nesting process pools.
        job = _job("Oracle-1", _config(parallel_workers=4))
        (result,) = MigrationService().migrate_batch([job])
        assert result.succeeded
        assert result.parallel_workers_used == 0


class TestSharedArtifacts:
    def test_same_source_jobs_share_counterexamples_and_cache(self):
        # Multi-target batch: one source program, several candidate target
        # schemas (the production "try these refactorings" scenario).  Later
        # jobs must observe shared source-output cache hits well above what
        # a cold run sees.
        bench = get_benchmark("coachup")
        base = SchemaSpec.from_schema(bench.target_schema, "coachup_v2")
        table = next(iter(base.tables))
        column = next(iter(base.tables[table]))
        variant = rename_column(base.copy("coachup_v2b"), table, column, column + "_r").build()

        config = _config()
        jobs = [
            MigrationJob("coachup->v2", bench.source_program, bench.target_schema, config),
            MigrationJob("coachup->v2b", bench.source_program, variant, config),
        ]
        warm_first, warm_second = MigrationService().migrate_batch(jobs)
        cold_second = migrate(bench.source_program, variant, config)
        assert warm_second.succeeded and cold_second.succeeded
        assert warm_second.cache.source_cache_hits > cold_second.cache.source_cache_hits

    def test_distinct_sources_do_not_share_pools(self):
        service = MigrationService()
        service.migrate_batch([_job("Oracle-1"), _job("Ambler-4")])
        # One pool per distinct source program fingerprint.
        assert len(service._pools) == 2


class TestPooledService:
    def test_process_pool_batch_matches_in_process(self):
        names = ["Oracle-1", "Ambler-3", "Ambler-4", "MathHotSpot"]
        pooled = migrate_batch([_job(name) for name in names], max_workers=2)
        in_process = migrate_batch([_job(name) for name in names])
        assert [r.succeeded for r in pooled] == [r.succeeded for r in in_process]
        for a, b in zip(pooled, in_process):
            assert a.attempts == b.attempts
            assert format_program(a.program) == format_program(b.program)

    def test_process_pool_isolates_failures(self):
        service = MigrationService(max_workers=2)
        bad = _job("Oracle-1", _config(completion_strategy="magic"))
        good = _job("Ambler-4")
        bad_handle, good_handle = service.submit_batch([bad, good])
        service.run()
        assert bad_handle.status is JobStatus.FAILED
        assert good_handle.status is JobStatus.DONE

    def test_pooled_jobs_stream_live_events(self):
        # Before the unified execution layer, max_workers > 1 delivered no
        # events at all (only post-hoc AttemptRecord summaries).
        events: dict[str, list] = {"Oracle-1": [], "Ambler-4": []}
        service = MigrationService(
            max_workers=2, on_event=lambda name, event: events[name].append(event)
        )
        handles = service.submit_batch([_job("Oracle-1"), _job("Ambler-4")])
        service.run()
        assert all(handle.status is JobStatus.DONE for handle in handles)
        for name, stream in events.items():
            assert stream, f"{name} streamed no events"
            assert isinstance(stream[0], VcSelected)
            assert any(event.kind == "solved" for event in stream)

    def test_single_job_pooled_batch_runs_in_worker(self):
        # A 1-job batch must still execute on a worker process: running the
        # pooled entry point inline would leak the worker-process globals
        # (shared pools/caches) into the parent.
        import repro.service as service_module

        pools_before = dict(service_module._process_pools)
        service = MigrationService(max_workers=2)
        (handle,) = service.submit_batch([_job("Oracle-1")])
        service.run()
        assert handle.status is JobStatus.DONE and handle.result.succeeded
        assert service_module._process_pools == pools_before

    def test_raising_on_event_does_not_fail_job(self):
        # Subscriber exceptions are isolated per event on BOTH transports
        # (recorded on the channel port, never propagated into the session),
        # so a buggy callback cannot flip a job's outcome between modes.
        def on_event(_name, _event):
            raise RuntimeError("buggy observer")

        for max_workers in (0, 2):
            service = MigrationService(max_workers=max_workers, on_event=on_event)
            (handle,) = service.submit_batch([_job("Oracle-1")])
            service.run()
            assert handle.status is JobStatus.DONE, max_workers
            assert handle.result.succeeded

    def test_pooled_cancel_mid_job(self):
        # Cancel the long enumerative job from its own live event stream:
        # the cancel signal must cross the process boundary and stop the
        # completion loop cooperatively, well before the ~20k-candidate
        # enumeration finishes.
        bench = get_benchmark("Oracle-2")
        job = MigrationJob("long", bench.source_program, bench.target_schema, _long_config())
        box: dict = {}

        def on_event(name, event):
            if isinstance(event, CandidateRejected):
                box["handle"].cancel()

        service = MigrationService(max_workers=2, on_event=on_event)
        (handle,) = service.submit_batch([job])
        box["handle"] = handle
        service.run()
        assert handle.status is JobStatus.CANCELLED
        assert handle.result is not None and handle.result.cancelled
        assert handle.result.iterations < 5000, "cancellation did not stop the worker"


class TestCrossTransportEquivalence:
    #: Registry slice for every tier-1 run; the full 20-workload sweep rides
    #: behind REPRO_FULL_EQUIV=1.
    QUICK = ["Oracle-1", "Ambler-3", "Ambler-5"]

    def _run(self, names: list[str], max_workers: int):
        events: dict[str, list] = {name: [] for name in names}
        service = MigrationService(
            max_workers=max_workers,
            on_event=lambda name, event: events[name].append(event),
        )
        handles = service.submit_batch([_job(name) for name in names])
        service.run()
        return handles, events

    def _assert_equivalent(self, names: list[str]):
        direct_handles, direct_events = self._run(names, 0)
        queued_handles, queued_events = self._run(names, 2)
        for name, direct, queued in zip(names, direct_handles, queued_handles):
            assert direct.status is queued.status is JobStatus.DONE, name
            # Same ordered event stream per job (queue events survive the
            # pickle round-trip with value equality)...
            assert direct_events[name] == queued_events[name], name
            # ... and the same trajectory on the results.
            assert _trajectory(direct.result) == _trajectory(queued.result), name

    def test_transports_equivalent_on_registry_slice(self):
        self._assert_equivalent(self.QUICK)

    @pytest.mark.skipif(
        os.environ.get("REPRO_FULL_EQUIV", "") in ("", "0", "false"),
        reason="full 20-workload sweep; set REPRO_FULL_EQUIV=1",
    )
    def test_transports_equivalent_on_all_workloads(self):
        self._assert_equivalent(list(benchmark_names()))


class TestPriorityAndDeadline:
    def test_priority_orders_dispatch(self):
        first_event_order: list[str] = []

        def on_event(name, event):
            if name not in first_event_order:
                first_event_order.append(name)

        service = MigrationService(on_event=on_event)
        service.submit_batch(
            [
                _job("Oracle-1", priority=5),
                _job("Ambler-4", priority=1),
                _job("MathHotSpot", priority=3),
            ]
        )
        service.run()
        assert first_event_order == ["Ambler-4", "MathHotSpot", "Oracle-1"]

    def test_expired_deadline_skips_queued_job(self):
        service = MigrationService()
        ran, expired = service.submit_batch(
            [_job("Oracle-1"), _job("Ambler-4", deadline=0.0)]
        )
        service.run()
        assert ran.status is JobStatus.DONE
        assert expired.status is JobStatus.EXPIRED
        assert expired.result is None
        assert "deadline" in expired.error
        assert expired.done
        assert expired.to_dict()["status"] == "expired"

    def test_deadline_clips_running_job(self):
        # The long enumerative sketch would churn for a long time; a 0.5 s
        # job deadline must fold into its time_limit and stop it.
        bench = get_benchmark("Oracle-2")
        job = MigrationJob(
            "budgeted", bench.source_program, bench.target_schema, _long_config(),
            deadline=0.5,
        )
        service = MigrationService()
        (handle,) = service.submit_batch([job])
        service.run()
        assert handle.status is JobStatus.DONE
        assert handle.result is not None
        assert handle.result.timed_out and not handle.result.succeeded


class TestJobStoreAndResume:
    #: Distinct source programs: no observable cross-job sharing, so the
    #: resumed-vs-uninterrupted pinning is exact (same-source batches share
    #: counterexample pools, whose per-job observations depend on history).
    NAMES = ["Oracle-1", "Ambler-3", "Ambler-4"]

    def test_lifecycle_records_are_appended(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        service = MigrationService(job_store=path)
        service.submit_batch([_job("Oracle-1"), _job("Ambler-4")])
        service.run()
        records = [json.loads(line) for line in open(path, encoding="utf-8")]
        by_type = {}
        for record in records:
            by_type.setdefault(record["type"], []).append(record["job"])
        assert sorted(by_type["submitted"]) == ["Ambler-4", "Oracle-1"]
        assert sorted(by_type["running"]) == ["Ambler-4", "Oracle-1"]
        assert sorted(by_type["settled"]) == ["Ambler-4", "Oracle-1"]
        settled = [r for r in records if r["type"] == "settled"]
        assert all(r["status"] == "done" for r in settled)
        assert all(r["result"]["succeeded"] for r in settled)
        # Submission records carry the rebuild spec; settled records do not.
        assert all("spec" in r for r in records if r["type"] == "submitted")
        assert all("spec" not in r for r in settled)

    def test_resume_runs_only_unfinished_jobs_with_pinned_results(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        # Generation 1 settles the first two jobs...
        first = MigrationService(job_store=path)
        first.submit_batch([_job(name) for name in self.NAMES[:2]])
        first.run()
        # ... generation 2 submits the third and "crashes" before running it.
        interrupted = MigrationService(job_store=path)
        interrupted.submit_batch([_job(self.NAMES[2])])
        del interrupted

        ran: set[str] = set()
        resumed = MigrationService.resume(path, on_event=lambda name, _e: ran.add(name))
        assert sorted(h.job.name for h in resumed.handles) == sorted(self.NAMES)
        resumed.run()
        assert ran == {self.NAMES[2]}, "resume must run only the unfinished job"

        # Pinned: the combined batch is indistinguishable from one that was
        # never interrupted.
        uninterrupted = MigrationService()
        uninterrupted.submit_batch([_job(name) for name in self.NAMES])
        uninterrupted.run()
        expected = {h.job.name: h.to_dict() for h in uninterrupted.handles}
        for handle in resumed.handles:
            response = handle.to_dict()
            reference = expected[handle.job.name]
            assert response["status"] == reference["status"] == "done"
            assert response["result"]["attempts"] == reference["result"]["attempts"]
            assert response["result"]["program"] == reference["result"]["program"]
        # Restored handles serve recorded responses without rerunning.
        restored = [h for h in resumed.handles if h.restored]
        assert sorted(h.job.name for h in restored) == sorted(self.NAMES[:2])
        assert all(h.result is None and h.done for h in restored)

    def test_resume_reruns_job_interrupted_mid_run(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        service = MigrationService(job_store=path)
        handle = service.submit(_job("Oracle-1"))
        # Simulate dying mid-job: the store's last record says "running".
        service._store.record_running(handle)
        stored = JobStore.load(path)["Oracle-1"]
        assert not stored.settled and stored.resumable

        resumed = MigrationService.resume(path)
        (rerun,) = resumed.handles
        assert rerun.status is JobStatus.PENDING and not rerun.restored
        resumed.run()
        assert rerun.status is JobStatus.DONE and rerun.result.succeeded

    def test_deferred_submissions_are_adopted_on_demand(self, tmp_path):
        # submit_deferred writes a store-only record (the job is not in the
        # live batch); adopt_unfinished pulls it in later — the deferred
        # pattern of the HTTP front.
        path = str(tmp_path / "jobs.jsonl")
        live = MigrationService(job_store=path)
        live.submit_batch([_job("Oracle-1")])
        live.run()
        live.submit_deferred(_job("Ambler-4"))
        assert [h.job.name for h in live.handles] == ["Oracle-1"]
        adopted = live.adopt_unfinished()
        assert [h.job.name for h in adopted] == ["Ambler-4"]
        assert live.adopt_unfinished() == []  # idempotent: already tracked
        live.run()
        assert adopted[0].status is JobStatus.DONE and adopted[0].result.succeeded

    def test_adopt_unfinished_on_fresh_store_is_empty(self, tmp_path):
        # The store file only exists after the first submission; scanning
        # before that must be a no-op, not an error (the /resume route of a
        # fresh HTTP front hits exactly this).
        service = MigrationService(job_store=str(tmp_path / "never-written.jsonl"))
        assert service.adopt_unfinished() == []
        with pytest.raises(ValueError):
            MigrationService().submit_deferred(_job("Oracle-1"))  # no store

    def test_resume_with_all_jobs_settled_is_a_noop(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        service = MigrationService(job_store=path)
        service.submit_batch([_job("Oracle-1")])
        service.run()
        before = open(path, encoding="utf-8").read()
        resumed = MigrationService.resume(path)
        ran: list = []
        resumed._on_event = lambda name, _e: ran.append(name)
        resumed.run()
        assert not ran
        assert all(h.restored for h in resumed.handles)
        assert open(path, encoding="utf-8").read() == before, "no-op resume must not write"

    def test_load_ignores_torn_tail_record(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        service = MigrationService(job_store=path)
        service.submit_batch([_job("Oracle-1")])
        service.run()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "settled", "job": "Oracle-1", "stat')  # torn write
        stored = JobStore.load(path)
        assert stored["Oracle-1"].settled  # the intact history still wins

    def test_resume_over_sqlite_store_is_pinned(self, tmp_path):
        # The indexed backend honours the same resume contract as JSONL.
        path = "sqlite:" + str(tmp_path / "jobs.sqlite")
        first = MigrationService(job_store=path)
        first.submit_batch([_job("Oracle-1")])
        first.run()
        interrupted = MigrationService(job_store=path)
        interrupted.submit_batch([_job("Ambler-3")])
        del interrupted

        resumed = MigrationService.resume(path)
        resumed.run()
        reference = MigrationService()
        reference.submit_batch([_job("Oracle-1"), _job("Ambler-3")])
        reference.run()
        expected = {h.job.name: _trajectory(h.result) for h in reference.handles}
        for handle in resumed.handles:
            if handle.restored:
                assert handle.job.name == "Oracle-1"
                assert handle.to_dict()["status"] == "done"
            else:
                assert _trajectory(handle.result) == expected[handle.job.name]


class TestResumeRePinning:
    """resume() re-verifies stored specs against the current code/registry;
    anything unresolvable settles loudly as INCOMPATIBLE, never silently."""

    def _crashed_store(self, tmp_path, job) -> str:
        """A store whose only job died mid-run (last record: running)."""
        path = str(tmp_path / "jobs.jsonl")
        service = MigrationService(job_store=path)
        handle = service.submit(job)
        service._store.record_running(handle)
        return path

    def test_workload_job_repins_to_current_registry_program(self, tmp_path):
        path = self._crashed_store(tmp_path, _job("Oracle-1", workload="Oracle-1"))
        resumed = MigrationService.resume(path)
        (handle,) = resumed.handles
        assert handle.status is JobStatus.PENDING
        # The decoded pickle's program was swapped for the live registry
        # object — resume runs current code, the pin just proves it matches.
        assert handle.job.source_program is get_benchmark("Oracle-1").source_program
        resumed.run()
        assert handle.result.succeeded

    def test_vanished_workload_is_incompatible(self, tmp_path):
        job = _job("Oracle-1", workload="Retired-99")  # never in the registry
        path = self._crashed_store(tmp_path, job)
        resumed = MigrationService.resume(path)
        (handle,) = resumed.handles
        assert handle.status is JobStatus.INCOMPATIBLE
        assert handle.done and handle.result is None
        assert "gone from the registry" in handle.error
        # The verdict is terminal and persisted: the job is settled in the
        # store, and a second resume restores it instead of re-judging.
        stored = JobStore.load(path)["Oracle-1"]
        assert stored.settled and stored.status == "incompatible"
        again = MigrationService.resume(path)
        (restored,) = again.handles
        assert restored.restored and restored.to_dict()["status"] == "incompatible"

    def test_drifted_workload_pin_is_incompatible(self, tmp_path):
        # The workload still exists, but its registry program is not the one
        # the spec was pinned against (registry drift between generations).
        job = _job("Oracle-1", workload="coachup")  # wrong program for the pin
        path = self._crashed_store(tmp_path, job)
        resumed = MigrationService.resume(path)
        (handle,) = resumed.handles
        assert handle.status is JobStatus.INCOMPATIBLE
        assert "no longer matches the stored pin" in handle.error

    def test_tampered_pin_is_incompatible(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        service = MigrationService(job_store=path)
        service.submit_deferred(_job("Oracle-1"))
        records = [json.loads(line) for line in open(path, encoding="utf-8")]
        assert records[0]["pin"]["source"]
        records[0]["pin"]["source"] = "deadbeefdeadbeef"
        with open(path, "w", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(record) + "\n")

        resumed = MigrationService.resume(path)
        (handle,) = resumed.handles
        assert handle.status is JobStatus.INCOMPATIBLE
        assert "submission pin" in handle.error
        assert JobStore.load(path)["Oracle-1"].status == "incompatible"

    def test_incompatible_jobs_do_not_block_the_batch(self, tmp_path):
        path = self._crashed_store(tmp_path, _job("Oracle-1", workload="Retired-99"))
        more = MigrationService(job_store=path)
        more.submit_deferred(_job("Ambler-4"))
        resumed = MigrationService.resume(path)
        resumed.run()
        by_name = {h.job.name: h for h in resumed.handles}
        assert by_name["Oracle-1"].status is JobStatus.INCOMPATIBLE
        assert by_name["Ambler-4"].status is JobStatus.DONE
        assert by_name["Ambler-4"].result.succeeded


class TestCompiledClosureSharing:
    def test_same_schema_jobs_share_compiled_closures(self):
        # Two identical-schema jobs in one batch: the second must reuse the
        # first's compiled closures (the shared ProgramCompiler), observable
        # as cache counters well above a cold solo run's.
        bench = get_benchmark("coachup")
        config = _config()
        jobs = [
            MigrationJob("warm-a", bench.source_program, bench.target_schema, config),
            MigrationJob("warm-b", bench.source_program, bench.target_schema, config),
        ]
        warm_a, warm_b = MigrationService().migrate_batch(jobs)
        cold = migrate(bench.source_program, bench.target_schema, config)
        # The first job pays the compilations; the second reuses its closures
        # (it still *executes* via the cache, hence nonzero hits) and
        # compiles strictly less than a cold run — ideally nothing at all.
        assert warm_a.cache.compiled_function_misses == cold.cache.compiled_function_misses
        assert warm_b.cache.compiled_function_hits > 0
        assert warm_b.cache.compiled_function_misses < cold.cache.compiled_function_misses

    def test_counters_serialize_in_job_responses(self):
        service = MigrationService()
        (handle,) = service.submit_batch([_job("Oracle-1")])
        service.run()
        cache = handle.to_dict()["result"]["cache"]
        assert "compiled_function_hits" in cache
        assert "compiled_function_misses" in cache
