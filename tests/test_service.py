"""Tests for the multi-job MigrationService facade (repro.service)."""

from __future__ import annotations

import pytest

from repro import SynthesisConfig, format_program, migrate
from repro.api import (
    JobStatus,
    MigrationJob,
    MigrationService,
    SessionEvent,
    migrate_batch,
)
from repro.workloads import SchemaSpec, get_benchmark, rename_column


def _config(**overrides) -> SynthesisConfig:
    config = SynthesisConfig()
    config.verifier_random_sequences = 10
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def _job(name: str, config: SynthesisConfig | None = None) -> MigrationJob:
    bench = get_benchmark(name)
    return MigrationJob(name, bench.source_program, bench.target_schema, config or _config())


class TestInProcessService:
    def test_batch_results_match_individual_migrate(self):
        names = ["Oracle-1", "Ambler-3", "MathHotSpot"]
        jobs = [_job(name) for name in names]
        results = MigrationService().migrate_batch(jobs)
        for job, result in zip(jobs, results):
            solo = migrate(job.source_program, job.target_schema, _config())
            # Distinct source programs share nothing observable, so the
            # service-run results are the same trajectories as solo runs.
            assert result.attempts == solo.attempts
            assert format_program(result.program) == format_program(solo.program)

    def test_handles_report_status_and_responses(self):
        service = MigrationService()
        handles = service.submit_batch([_job("Oracle-1"), _job("Ambler-4")])
        assert all(handle.status is JobStatus.PENDING for handle in handles)
        service.run()
        assert all(handle.status is JobStatus.DONE for handle in handles)
        response = handles[0].to_dict(include_program=False)
        assert response["job"] == "Oracle-1"
        assert response["status"] == "done"
        assert response["result"]["succeeded"] is True
        assert response["result"]["program"] is None

    def test_failed_job_is_isolated(self):
        service = MigrationService()
        bad = _job("Oracle-1", _config(completion_strategy="magic"))
        good = _job("Ambler-4")
        bad_handle, good_handle = service.submit_batch([bad, good])
        service.run()
        assert bad_handle.status is JobStatus.FAILED
        assert "magic" in bad_handle.error
        assert bad_handle.result is None
        assert good_handle.status is JobStatus.DONE
        assert good_handle.result.succeeded
        with pytest.raises(RuntimeError):
            MigrationService().migrate_batch([bad])

    def test_cancel_pending_job_skips_it(self):
        service = MigrationService()
        first, second = service.submit_batch([_job("Oracle-1"), _job("Ambler-4")])
        second.cancel()
        service.run()
        assert first.status is JobStatus.DONE
        assert second.status is JobStatus.CANCELLED
        assert second.result is None

    def test_cancel_running_job_mid_completion(self):
        # Cancel the Ambler-3 job from its own event stream (first candidate
        # rejection): the session winds down cooperatively and the service
        # reports CANCELLED with the partial result attached, while the next
        # job still runs to completion.
        from repro.api import CandidateRejected

        service = MigrationService(on_event=lambda name, event: _maybe_cancel(name, event))
        target_handle, other_handle = service.submit_batch(
            [_job("Ambler-3"), _job("Oracle-1")]
        )

        def _maybe_cancel(name: str, event: SessionEvent) -> None:
            if name == "Ambler-3" and isinstance(event, CandidateRejected):
                target_handle.cancel()

        service.run()
        assert target_handle.status is JobStatus.CANCELLED
        assert target_handle.result is not None and target_handle.result.cancelled
        assert other_handle.status is JobStatus.DONE

    def test_on_event_is_tagged_with_job_name(self):
        seen: set[str] = set()
        service = MigrationService(on_event=lambda name, event: seen.add(name))
        service.migrate_batch([_job("Oracle-1"), _job("Ambler-4")])
        assert seen == {"Oracle-1", "Ambler-4"}

    def test_per_job_parallelism_is_flattened(self):
        # The service parallelizes across jobs; a job asking for its own
        # worker pool runs sequentially instead of nesting process pools.
        job = _job("Oracle-1", _config(parallel_workers=4))
        (result,) = MigrationService().migrate_batch([job])
        assert result.succeeded
        assert result.parallel_workers_used == 0


class TestSharedArtifacts:
    def test_same_source_jobs_share_counterexamples_and_cache(self):
        # Multi-target batch: one source program, several candidate target
        # schemas (the production "try these refactorings" scenario).  Later
        # jobs must observe shared source-output cache hits well above what
        # a cold run sees.
        bench = get_benchmark("coachup")
        base = SchemaSpec.from_schema(bench.target_schema, "coachup_v2")
        table = next(iter(base.tables))
        column = next(iter(base.tables[table]))
        variant = rename_column(base.copy("coachup_v2b"), table, column, column + "_r").build()

        config = _config()
        jobs = [
            MigrationJob("coachup->v2", bench.source_program, bench.target_schema, config),
            MigrationJob("coachup->v2b", bench.source_program, variant, config),
        ]
        warm_first, warm_second = MigrationService().migrate_batch(jobs)
        cold_second = migrate(bench.source_program, variant, config)
        assert warm_second.succeeded and cold_second.succeeded
        assert warm_second.cache.source_cache_hits > cold_second.cache.source_cache_hits

    def test_distinct_sources_do_not_share_pools(self):
        service = MigrationService()
        service.migrate_batch([_job("Oracle-1"), _job("Ambler-4")])
        # One pool per distinct source program fingerprint.
        assert len(service._pools) == 2


class TestPooledService:
    def test_process_pool_batch_matches_in_process(self):
        names = ["Oracle-1", "Ambler-3", "Ambler-4", "MathHotSpot"]
        pooled = migrate_batch([_job(name) for name in names], max_workers=2)
        in_process = migrate_batch([_job(name) for name in names])
        assert [r.succeeded for r in pooled] == [r.succeeded for r in in_process]
        for a, b in zip(pooled, in_process):
            assert a.attempts == b.attempts
            assert format_program(a.program) == format_program(b.program)

    def test_process_pool_isolates_failures(self):
        service = MigrationService(max_workers=2)
        bad = _job("Oracle-1", _config(completion_strategy="magic"))
        good = _job("Ambler-4")
        bad_handle, good_handle = service.submit_batch([bad, good])
        service.run()
        assert bad_handle.status is JobStatus.FAILED
        assert good_handle.status is JobStatus.DONE
