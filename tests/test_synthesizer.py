"""End-to-end tests for the synthesizer (Algorithm 1) on the running example."""

import pytest

from repro.core import SynthesisConfig, Synthesizer, migrate
from repro.datamodel import Attribute
from repro.equivalence import BoundedVerifier
from repro.lang.pretty import format_program


@pytest.fixture(scope="module")
def running_example_result(course_program, course_target_schema):
    config = SynthesisConfig()
    config.verifier_random_sequences = 50
    return Synthesizer(config).synthesize(course_program, course_target_schema)


class TestSynthesizer:
    def test_running_example_succeeds(self, running_example_result):
        assert running_example_result.succeeded

    def test_value_correspondence_matches_paper(self, running_example_result):
        vc = running_example_result.correspondence
        assert vc.image(Attribute("Instructor", "IPic")) == frozenset({Attribute("Picture", "Pic")})
        assert vc.image(Attribute("TA", "TPic")) == frozenset({Attribute("Picture", "Pic")})

    def test_first_correspondence_is_enough(self, running_example_result):
        assert running_example_result.value_correspondences_tried == 1

    def test_result_is_verified_equivalent(self, running_example_result, course_program):
        verifier = BoundedVerifier(max_updates=3, random_sequences=200)
        assert verifier.verify(course_program, running_example_result.program).equivalent

    def test_synthesized_program_uses_picture_table(self, running_example_result):
        text = format_program(running_example_result.program)
        assert "Picture" in text
        assert "IPic" not in text  # the source attribute no longer exists

    def test_result_summary_mentions_status(self, running_example_result):
        assert "[OK]" in running_example_result.summary()

    def test_statistics_are_populated(self, running_example_result):
        assert running_example_result.iterations >= 1
        assert running_example_result.total_time >= running_example_result.synthesis_time

    def test_migrate_convenience_wrapper(self, people_program, people_schema):
        # migrating to the identical schema must trivially succeed
        result = migrate(people_program, people_schema)
        assert result.succeeded
        assert result.value_correspondences_tried == 1

    def test_unknown_strategy_rejected(self, course_program, course_target_schema):
        config = SynthesisConfig()
        config.completion_strategy = "magic"
        with pytest.raises(ValueError):
            Synthesizer(config).synthesize(course_program, course_target_schema)

    def test_impossible_target_reports_failure(self, people_program):
        from repro.datamodel import DataType as T, make_schema

        # the target schema cannot store the queried string attribute at all
        target = make_schema("bad", {"Person": {"PersonId": T.INT, "Age": T.INT}})
        result = migrate(people_program, target)
        assert not result.succeeded

    def test_time_limit_flags_timeout(self, course_program, course_target_schema):
        config = SynthesisConfig()
        config.time_limit = 0.0
        result = Synthesizer(config).synthesize(course_program, course_target_schema)
        assert not result.succeeded
        assert result.timed_out
