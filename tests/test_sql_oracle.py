"""Differential-oracle tests: registry workloads replayed through sqlite3.

The replayer itself lives in :mod:`repro.equivalence.sql_oracle` (it moved
out of this file when the corpus subsystem started cross-checking generated
workloads with it); these tests pin its translation on the registry
workloads and on constructs the registry never uses.

A slice of the registry runs on every invocation; all 20 workloads run
under ``REPRO_FULL_EQUIV=1``.
"""

from __future__ import annotations

import itertools
import os
import random

import pytest

from repro.datamodel import DataType as T, make_schema
from repro.engine import run_invocation_sequence
from repro.equivalence.invocation import SequenceGenerator
from repro.equivalence.result_compare import canonicalize_outputs
from repro.equivalence.sql_oracle import (
    SqliteOracle,
    normalize_bools,
    oracle_agrees,
)
from repro.lang.builder import (
    ProgramBuilder,
    conj,
    delete,
    disj,
    eq,
    gt,
    in_query,
    insert,
    join,
    lt,
    neg,
    select,
    update,
)
from repro.workloads.registry import load_all

FULL_EQUIV = os.environ.get("REPRO_FULL_EQUIV") == "1"


def assert_oracle_agrees(program, sequences, min_compared=1):
    compared = 0
    for sequence in sequences:
        verdict = oracle_agrees(program, sequence)
        if verdict is None:
            continue
        compared += 1
        assert verdict, f"sqlite oracle diverges from interpreter on {sequence}"
    assert compared >= min_compared, "oracle skipped too many sequences"


# ----------------------------------------------------------------- workloads
WORKLOADS = load_all().names()
#: Every run replays a diverse slice (two multi-iteration synthesis
#: workloads, a large schema, and three mid-size apps); the full registry
#: runs under REPRO_FULL_EQUIV=1.
ORACLE_SLICE = (
    WORKLOADS
    if FULL_EQUIV
    else ["cdx", "2030Club", "gallery", "Oracle-2", "Ambler-1", "Ambler-5"]
)


@pytest.mark.parametrize("name", ORACLE_SLICE)
def test_sqlite_oracle_agrees_on_workload(name):
    """Registry workloads replayed through sqlite3 match the interpreter."""
    program = load_all().get(name).source_program
    generator = SequenceGenerator(programs=[program])
    enumerated = itertools.islice(generator.sequences(), 60)
    randomized = generator.random_sequences(10, max_length=4, rng=random.Random(7))
    assert_oracle_agrees(
        program, itertools.chain(enumerated, randomized), min_compared=30
    )


# ------------------------------------------------------- construct coverage
def _catalog_schema():
    return make_schema(
        "catalog",
        {
            "Item": {
                "ItemId": T.INT,
                "Label": T.STRING,
                "Price": T.INT,
                "Archived": T.BOOL,
            },
            "Stock": {"StockId": T.INT, "Count": T.INT},
        },
    )


def _catalog_program():
    """A hand-built program exercising constructs the registry never uses.

    The registry's source programs only contain equality predicates, so the
    ordering / boolean / IN-subquery / connective translations would
    otherwise go untested against the interpreter.
    """
    pb = ProgramBuilder("catalog", _catalog_schema())
    pb.update(
        "addItem",
        [("id", "int"), ("label", "str"), ("price", "int"), ("archived", "bool")],
        insert(
            join(["Item", "Stock"], on=[("Item.ItemId", "Stock.StockId")]),
            {
                "Item.ItemId": "$id",
                "Item.Label": "$label",
                "Item.Price": "$price",
                "Item.Archived": "$archived",
                "Stock.Count": "$price",
            },
        ),
    )
    pb.update(
        "markArchived",
        [("limit", "int")],
        update("Item", gt("Item.Price", "$limit"), "Item.Archived", True),
    )
    pb.update(
        "dropCheap",
        [("limit", "int")],
        delete("Item", "Item", lt("Item.Price", "$limit")),
    )
    pb.query(
        "pricey",
        [("limit", "int")],
        select(
            ["Item.Label", "Item.Price", "Item.Archived"],
            "Item",
            conj(gt("Item.Price", "$limit"), neg(eq("Item.Archived", True))),
        ),
    )
    pb.query(
        "mixed",
        [("label", "str"), ("price", "int")],
        select(
            ["Item.ItemId"],
            "Item",
            disj(
                eq("Item.Label", "$label"),
                # Cross-type ordering (string column vs int parameter) is
                # always false in the paper's value model.
                gt("Item.Label", "$price"),
            ),
        ),
    )
    pb.query(
        "stocked",
        [("count", "int")],
        select(
            ["Item.Label"],
            "Item",
            in_query(
                "Item.ItemId",
                select(["Stock.StockId"], "Stock", gt("Stock.Count", "$count")),
            ),
        ),
    )
    # Ordering against a BOOL column: statically false, even though the
    # encoded carrier (an integer) would happily compare in raw SQL.
    pb.query(
        "badOrder",
        [("price", "int")],
        select(["Item.ItemId"], "Item", gt("Item.Archived", "$price")),
    )
    pb.query(
        "joined",
        [("count", "int")],
        select(
            ["Item.Label", "Stock.Count"],
            join(["Item", "Stock"], on=[("Item.ItemId", "Stock.StockId")]),
            gt("Stock.Count", "$count"),
        ),
    )
    return pb.build(validate=False)


class TestOracleConstructCoverage:
    """The translator is pinned on constructs absent from the registry."""

    def test_ordering_booleans_connectives_and_subqueries(self):
        program = _catalog_program()
        generator = SequenceGenerator(programs=[program])
        enumerated = itertools.islice(generator.sequences(), 300)
        randomized = generator.random_sequences(
            40, max_length=4, rng=random.Random(11)
        )
        assert_oracle_agrees(
            program, itertools.chain(enumerated, randomized), min_compared=100
        )

    def test_uid_equality_structure_survives_translation(self):
        """Insert-into-join links attributes with one shared fresh UID."""
        program = _catalog_program()
        sequence = (
            ("addItem", (7, "A", 3, False)),
            ("markArchived", (1,)),
            ("pricey", (0,)),
            ("joined", (0,)),
            ("stocked", (2,)),
        )
        assert oracle_agrees(program, sequence) is True

    def test_ordering_with_uid_operands_is_false(self):
        """A UID stored in an INT column never satisfies an ordering test."""
        schema = make_schema("u", {"Box": {"BoxId": T.INT, "Tag": T.STRING}})
        pb = ProgramBuilder("uids", schema)
        # No value for BoxId: the engine fabricates a fresh UID.
        pb.update("addBox", [("tag", "str")], insert("Box", {"Box.Tag": "$tag"}))
        pb.query(
            "bigIds", [("n", "int")], select(["Box.Tag"], "Box", gt("Box.BoxId", "$n"))
        )
        pb.query(
            "someIds",
            [("n", "int")],
            select(["Box.BoxId"], "Box", eq("Box.Tag", "A")),
        )
        program = pb.build(validate=False)
        sequence = (
            ("addBox", ("A",)),
            ("addBox", ("B",)),
            ("bigIds", (0,)),
            ("someIds", (1,)),
        )
        assert oracle_agrees(program, sequence) is True

    def test_multi_target_delete_over_join(self):
        """del([T1, T2], chain, pred) removes pre-state matches from both."""
        schema = make_schema(
            "d",
            {
                "Person": {"PersonId": T.INT, "Name": T.STRING},
                "Badge": {"BadgeId": T.INT, "Owner": T.INT},
            },
        )
        pb = ProgramBuilder("multidel", schema)
        chain = join(["Person", "Badge"], on=[("Person.PersonId", "Badge.Owner")])
        pb.update(
            "addBoth",
            [("id", "int"), ("name", "str")],
            insert(
                chain,
                {
                    "Person.PersonId": "$id",
                    "Person.Name": "$name",
                    "Badge.BadgeId": "$id",
                },
            ),
        )
        pb.update(
            "purge",
            [("name", "str")],
            delete(["Person", "Badge"], chain, eq("Person.Name", "$name")),
        )
        pb.query("people", [], select(["Person.PersonId", "Person.Name"], "Person"))
        pb.query("badges", [], select(["Badge.BadgeId", "Badge.Owner"], "Badge"))
        program = pb.build(validate=False)
        generator = SequenceGenerator(programs=[program])
        enumerated = itertools.islice(generator.sequences(), 200)
        randomized = generator.random_sequences(
            30, max_length=5, rng=random.Random(3)
        )
        assert_oracle_agrees(
            program, itertools.chain(enumerated, randomized), min_compared=40
        )

    def test_oracle_detects_a_real_divergence(self):
        """The oracle is not vacuous: a buggy sibling program is caught."""
        program = _catalog_program()
        pb = ProgramBuilder("catalog_bug", _catalog_schema())
        for func in program:
            if func.name == "dropCheap":
                # Inverted comparison: deletes the expensive items instead.
                pb.update(
                    "dropCheap",
                    [("limit", "int")],
                    delete("Item", "Item", gt("Item.Price", "$limit")),
                )
            else:
                pb.add(func)
        buggy = pb.build(validate=False)
        sequence = (
            ("addItem", (1, "A", 0, False)),
            ("addItem", (2, "B", 5, False)),
            ("dropCheap", (3,)),
            ("pricey", (0,)),
        )
        expected = normalize_bools(run_invocation_sequence(program, sequence))
        oracle = SqliteOracle(buggy)
        try:
            actual = oracle.run(sequence)
        finally:
            oracle.close()
        assert canonicalize_outputs(expected) != canonicalize_outputs(actual)
