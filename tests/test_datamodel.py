"""Tests for schemas, types, and database instances."""

import pytest
from hypothesis import given, strategies as st

from repro.datamodel import (
    Attribute,
    DataType,
    DatabaseInstance,
    InstanceError,
    Schema,
    SchemaError,
    TypeError_,
    check_value,
    default_seed_values,
    make_schema,
    parse_type,
)
from repro.engine.uid import UniqueValue


# ------------------------------------------------------------------------------ types
class TestDataTypes:
    def test_parse_type_aliases(self):
        assert parse_type("int") is DataType.INT
        assert parse_type("Integer") is DataType.INT
        assert parse_type("String") is DataType.STRING
        assert parse_type("str") is DataType.STRING
        assert parse_type("Binary") is DataType.BINARY
        assert parse_type("bool") is DataType.BOOL

    def test_parse_type_unknown(self):
        with pytest.raises(ValueError):
            parse_type("varchar")

    def test_check_value_accepts_matching(self):
        check_value(3, DataType.INT)
        check_value("x", DataType.STRING)
        check_value("blob", DataType.BINARY)
        check_value(True, DataType.BOOL)

    def test_check_value_accepts_null_and_uid(self):
        check_value(None, DataType.INT)
        check_value(UniqueValue(0), DataType.STRING)

    def test_check_value_rejects_mismatch(self):
        with pytest.raises(TypeError_):
            check_value("x", DataType.INT)
        with pytest.raises(TypeError_):
            check_value(1, DataType.STRING)

    def test_bool_is_not_an_int(self):
        with pytest.raises(TypeError_):
            check_value(True, DataType.INT)

    def test_seed_values_nonempty_for_every_type(self):
        for dtype in DataType:
            values = default_seed_values(dtype)
            assert values
            for value in values:
                check_value(value, dtype)


# ----------------------------------------------------------------------------- schema
class TestSchema:
    def test_attribute_parse(self):
        attr = Attribute.parse("Person.Name")
        assert attr.table == "Person"
        assert attr.name == "Name"

    def test_attribute_parse_requires_qualification(self):
        with pytest.raises(ValueError):
            Attribute.parse("Name")

    def test_make_schema_and_lookup(self, people_schema):
        assert people_schema.num_tables() == 1
        assert people_schema.num_attributes() == 3
        assert people_schema.has_attribute(Attribute("Person", "Name"))
        assert people_schema.type_of(Attribute("Person", "Age")) is DataType.INT

    def test_unknown_table_raises(self, people_schema):
        with pytest.raises(SchemaError):
            people_schema.table("Nope")

    def test_unknown_attribute_raises(self, people_schema):
        with pytest.raises(SchemaError):
            people_schema.type_of(Attribute("Person", "Nope"))

    def test_duplicate_table_raises(self):
        schema = Schema("s")
        schema.add_table("T", {"a": DataType.INT})
        with pytest.raises(SchemaError):
            schema.add_table("T", {"b": DataType.INT})

    def test_empty_table_raises(self):
        schema = Schema("s")
        with pytest.raises(SchemaError):
            schema.add_table("T", {})

    def test_primary_key_must_be_column(self):
        schema = Schema("s")
        with pytest.raises(ValueError):
            schema.add_table("T", {"a": DataType.INT}, primary_key="b")

    def test_foreign_key_requires_existing_attributes(self):
        schema = make_schema("s", {"A": {"x": DataType.INT}, "B": {"y": DataType.INT}})
        with pytest.raises(SchemaError):
            schema.add_foreign_key("A.x", "B.z")

    def test_joinable_pairs_same_name(self, course_target_schema):
        pairs = course_target_schema.joinable_pairs()
        flat = {frozenset((str(a), str(b))) for a, b in pairs}
        assert frozenset(("Instructor.PicId", "Picture.PicId")) in flat
        assert frozenset(("TA.PicId", "Picture.PicId")) in flat
        assert frozenset(("Class.InstId", "Instructor.InstId")) in flat

    def test_joinable_pairs_includes_foreign_keys(self):
        schema = make_schema(
            "s",
            {"A": {"ref": DataType.INT, "x": DataType.INT}, "B": {"key": DataType.INT}},
            foreign_keys=[("A.ref", "B.key")],
        )
        pairs = schema.joinable_pairs()
        assert (Attribute("A", "ref"), Attribute("B", "key")) in pairs

    def test_joinable_pairs_ignores_type_mismatch(self):
        schema = make_schema(
            "s", {"A": {"x": DataType.INT}, "B": {"x": DataType.STRING}}
        )
        assert schema.joinable_pairs() == []

    def test_attributes_order_is_declaration_order(self, course_source_schema):
        attrs = course_source_schema.attributes()
        assert attrs[0] == Attribute("Class", "ClassId")
        assert attrs[-1] == Attribute("TA", "TPic")

    def test_describe_lists_all_tables(self, course_source_schema):
        text = course_source_schema.describe()
        assert "Class (ClassId, InstId, TaId)" in text
        assert "Instructor (InstId, IName, IPic)" in text


# --------------------------------------------------------------------------- instance
class TestDatabaseInstance:
    def test_insert_and_snapshot(self, people_schema):
        instance = DatabaseInstance(people_schema)
        instance.insert("Person", {"PersonId": 1, "Name": "Ann", "Age": 30})
        assert instance.snapshot()["Person"] == [(1, "Ann", 30)]

    def test_insert_missing_columns_default_to_null(self, people_schema):
        instance = DatabaseInstance(people_schema)
        instance.insert("Person", {"PersonId": 1})
        assert instance.snapshot()["Person"] == [(1, None, None)]

    def test_insert_unknown_column_raises(self, people_schema):
        instance = DatabaseInstance(people_schema)
        with pytest.raises(InstanceError):
            instance.insert("Person", {"Nope": 1})

    def test_insert_type_checks(self, people_schema):
        instance = DatabaseInstance(people_schema)
        with pytest.raises(TypeError_):
            instance.insert("Person", {"PersonId": "x"})

    def test_delete_rows_by_rowid(self, people_schema):
        instance = DatabaseInstance(people_schema)
        row1 = instance.insert("Person", {"PersonId": 1, "Name": "A", "Age": 1})
        instance.insert("Person", {"PersonId": 2, "Name": "B", "Age": 2})
        removed = instance.delete_rows("Person", [row1.rowid])
        assert removed == 1
        assert instance.size("Person") == 1

    def test_delete_rows_empty_set_is_noop(self, people_schema):
        instance = DatabaseInstance(people_schema)
        instance.insert("Person", {"PersonId": 1})
        assert instance.delete_rows("Person", []) == 0
        assert instance.size("Person") == 1

    def test_update_rows(self, people_schema):
        instance = DatabaseInstance(people_schema)
        row = instance.insert("Person", {"PersonId": 1, "Name": "A", "Age": 1})
        changed = instance.update_rows("Person", [row.rowid], "Name", "Z")
        assert changed == 1
        assert instance.snapshot()["Person"][0][1] == "Z"

    def test_update_unknown_column_raises(self, people_schema):
        instance = DatabaseInstance(people_schema)
        row = instance.insert("Person", {"PersonId": 1})
        with pytest.raises(InstanceError):
            instance.update_rows("Person", [row.rowid], "Nope", 1)

    def test_clear_empties_all_tables(self, people_schema):
        instance = DatabaseInstance(people_schema)
        instance.insert("Person", {"PersonId": 1})
        instance.clear()
        assert instance.is_empty()

    def test_rowids_are_unique(self, people_schema):
        instance = DatabaseInstance(people_schema)
        rowids = {instance.insert("Person", {"PersonId": i}).rowid for i in range(10)}
        assert len(rowids) == 10

    def test_unknown_table_raises(self, people_schema):
        instance = DatabaseInstance(people_schema)
        with pytest.raises(InstanceError):
            instance.rows("Nope")

    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=25))
    def test_total_rows_matches_inserts(self, ids):
        schema = make_schema("s", {"T": {"x": DataType.INT}})
        instance = DatabaseInstance(schema)
        for value in ids:
            instance.insert("T", {"x": value})
        assert instance.total_rows() == len(ids)
        assert [row[0] for row in instance.snapshot()["T"]] == list(ids)
