"""Distributed execution: wire framing, the remote fleet, and equivalence.

Layers under test, bottom up:

* :mod:`repro.exec.wire` — frame round-trips, torn/corrupt stream failures,
  handshake version checking (plain ``socketpair``, no processes);
* :class:`repro.exec.remote.RemoteFleet` + ``repro.worker`` — dispatch,
  ordered event streaming, failure propagation, cross-socket cancel, lease
  expiry → re-lease with exactly-once settlement (in-thread workers for the
  protocol tests, real killed subprocesses for the crash tests);
* cross-transport equivalence — the socket transport must produce the same
  events and results as the direct and queue transports on the pinned
  registry slice (all 20 benchmarks under ``REPRO_FULL_EQUIV=1``);
* the CI distributed smoke (``REPRO_DIST_SMOKE=1``): a 5-job service batch
  over a 2-worker fleet, one worker killed -9 mid-batch, trajectories
  pinned against the sequential service.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from remote_tasks import echo_task, failing_task, sleepy_task, stream_task
from repro.api import MigrationJob, MigrationService, RemoteFleet, SynthesisConfig
from repro.core.session import SynthesisSession
from repro.core.synthesizer import migrate
from repro.exec import ExecutorUnavailable, TaskState, WorkScheduler
from repro.exec import wire
from repro.exec.remote import FleetUnavailable, WorkerLost
from repro.lang.pretty import format_program
from repro.worker import WorkerAgent
from repro.workloads import benchmark_names, get_benchmark

ROOT = Path(__file__).resolve().parents[1]
WORKER_ENV = {
    **os.environ,
    "PYTHONPATH": os.pathsep.join([str(ROOT / "src"), str(ROOT / "tests")]),
}


def _spawn_connect_worker(address: str, worker_id: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro.worker", "--connect", address, "--id", worker_id],
        env=WORKER_ENV,
    )


def _spawn_listen_worker(worker_id: str) -> tuple[subprocess.Popen, str]:
    """Start a ``--listen 127.0.0.1:0`` worker; returns (process, address)."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.worker", "--listen", "127.0.0.1:0", "--id", worker_id],
        env=WORKER_ENV,
        stdout=subprocess.PIPE,
        text=True,
    )
    line = process.stdout.readline()
    assert "listening on " in line, f"worker banner missing: {line!r}"
    return process, line.strip().rpartition("listening on ")[2]


def _reap(*processes: subprocess.Popen) -> None:
    for process in processes:
        if process.poll() is None:
            process.kill()
        process.wait(timeout=10)


# ------------------------------------------------------------------- wire
class TestWire:
    def test_frame_round_trip(self):
        left, right = socket.socketpair()
        with left, right:
            payload = wire.dump_payload({"numbers": list(range(50))})
            wire.send_frame(left, {"type": "task", "task": 7}, payload)
            header, body = wire.recv_frame(right)
        assert header == {"type": "task", "task": 7}
        assert wire.load_payload(body) == {"numbers": list(range(50))}

    def test_control_frame_has_empty_payload(self):
        left, right = socket.socketpair()
        with left, right:
            wire.send_frame(left, {"type": "heartbeat"})
            header, body = wire.recv_frame(right)
        assert header["type"] == "heartbeat"
        assert body == b""

    def test_clean_close_raises_connection_closed(self):
        left, right = socket.socketpair()
        with right:
            left.close()
            with pytest.raises(wire.ConnectionClosed):
                wire.recv_frame(right)

    def test_torn_frame_raises_frame_error(self):
        left, right = socket.socketpair()
        with right:
            # A length prefix announcing more bytes than ever arrive.
            left.sendall(b"\x00\x00\x00\xff\x00\x00\x00\x00{")
            left.close()
            with pytest.raises(wire.FrameError) as excinfo:
                wire.recv_frame(right)
        assert not isinstance(excinfo.value, wire.ConnectionClosed)

    def test_oversized_announcement_fails_loudly(self):
        left, right = socket.socketpair()
        with left, right:
            left.sendall(b"\xff\xff\xff\xff\xff\xff\xff\xff")
            with pytest.raises(wire.FrameError, match="MAX_FRAME_BYTES"):
                wire.recv_frame(right)

    def test_non_json_header_raises(self):
        left, right = socket.socketpair()
        with left, right:
            body = b"not json"
            left.sendall(len(body).to_bytes(4, "big") + b"\x00\x00\x00\x00" + body)
            with pytest.raises(wire.FrameError, match="not JSON"):
                wire.recv_frame(right)

    def test_handshake_happy_path(self):
        left, right = socket.socketpair()
        with left, right:
            accepted = {}

            def coordinator():
                accepted.update(
                    wire.coordinator_accept(right, heartbeat_interval=0.5, lease_ttl=3.0)
                )

            thread = threading.Thread(target=coordinator)
            thread.start()
            welcome = wire.worker_hello(left, worker_id="w1", slots=2, pid=123)
            thread.join(timeout=5)
        assert accepted["worker"] == "w1"
        assert accepted["slots"] == 2
        assert welcome["heartbeat"] == 0.5
        assert welcome["lease"] == 3.0

    def test_handshake_version_mismatch_rejects_both_sides(self):
        left, right = socket.socketpair()
        with left, right:
            errors = []

            def coordinator():
                try:
                    wire.coordinator_accept(right, heartbeat_interval=1.0, lease_ttl=5.0)
                except wire.HandshakeError as error:
                    errors.append(error)

            thread = threading.Thread(target=coordinator)
            thread.start()
            wire.send_frame(
                left, {"type": "hello", "version": 999, "worker": "w1", "slots": 1}
            )
            with pytest.raises(wire.HandshakeError, match="version mismatch"):
                header, _ = wire.recv_frame(left)
                assert header["type"] == "reject"
                raise wire.HandshakeError(header["reason"])
            thread.join(timeout=5)
        assert errors and "version mismatch" in str(errors[0])

    def test_parse_address(self):
        assert wire.parse_address("example.org:9001") == ("example.org", 9001)
        assert wire.parse_address("9001") == ("127.0.0.1", 9001)
        assert wire.parse_address(":9001") == ("127.0.0.1", 9001)
        with pytest.raises(ValueError):
            wire.parse_address("example.org:http")


# -------------------------------------------------------------- wire fuzzing
def _frame_bytes(header: dict, payload: bytes = b"") -> bytes:
    """A valid frame as raw bytes (the format send_frame puts on the wire)."""
    body = json.dumps(header).encode("utf-8")
    return (
        len(body).to_bytes(4, "big")
        + len(payload).to_bytes(4, "big")
        + body
        + payload
    )


def _recv_mangled(data: bytes):
    """Feed *data* then EOF to ``recv_frame``; return its outcome.

    The receiving socket carries a hard timeout so a parser that waits for
    bytes that will never arrive fails the test instead of hanging it.
    """
    left, right = socket.socketpair()
    with left, right:
        right.settimeout(2.0)
        left.sendall(data)
        left.close()
        try:
            return ("frame", wire.recv_frame(right))
        except wire.FrameError as error:
            return ("error", error)


class TestWireFuzz:
    """Property tests: no mangled byte stream may hang or crash the framing.

    Every corruption must surface as the :class:`wire.FrameError` family
    (``ConnectionClosed`` included) or parse as a complete well-formed frame
    — never a hang (socket timeouts fail the test) and never an uncaught
    non-protocol exception.
    """

    SAMPLE = _frame_bytes(
        {"type": "task", "task": 3, "name": "fuzz"},
        b"x" * 64,
    )

    @given(cut=st.integers(min_value=0, max_value=len(SAMPLE) - 1))
    @settings(deadline=None, max_examples=50)
    def test_any_truncation_raises_frame_error(self, cut):
        outcome, value = _recv_mangled(self.SAMPLE[:cut])
        assert outcome == "error", f"truncation at {cut} produced {value!r}"

    @given(
        position=st.integers(min_value=0, max_value=len(SAMPLE) - 1),
        bit=st.integers(min_value=0, max_value=7),
    )
    @settings(deadline=None, max_examples=50)
    def test_single_bit_flip_never_hangs(self, position, bit):
        mangled = bytearray(self.SAMPLE)
        mangled[position] ^= 1 << bit
        outcome, value = _recv_mangled(bytes(mangled))
        if outcome == "frame":
            # A flip confined to the payload (or one that still decodes)
            # must yield a *complete* frame, never a partial read.
            header, body = value
            assert isinstance(header, dict)
            assert isinstance(body, bytes)
        else:
            assert isinstance(value, wire.FrameError)

    @given(
        json_length=st.integers(min_value=0, max_value=2**32 - 1),
        payload_length=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(deadline=None, max_examples=50)
    def test_announced_lengths_with_no_body_fail_loudly(
        self, json_length, payload_length
    ):
        assume(json_length + payload_length > 0)
        prefix = json_length.to_bytes(4, "big") + payload_length.to_bytes(4, "big")
        outcome, value = _recv_mangled(prefix)
        assert outcome == "error", (
            f"lengths ({json_length}, {payload_length}) with an empty body "
            f"produced {value!r}"
        )
        assert isinstance(value, wire.FrameError)


# ------------------------------------------------------------------ fleet
@pytest.fixture()
def fleet_with_thread_workers():
    """A listening fleet served by two in-process worker threads.

    In-thread workers speak the full wire protocol over real TCP sockets —
    everything except process isolation — which keeps the protocol tests
    fast and deterministic; the crash tests below use real processes.
    """
    fleet = RemoteFleet(listen="127.0.0.1:0", min_workers=2, start_timeout=15.0)
    host, port = wire.parse_address(fleet.bound_address)
    threads = []
    for index in range(2):
        agent = WorkerAgent(worker_id=f"thread-w{index}")
        thread = threading.Thread(
            target=agent.connect, args=(host, port), daemon=True
        )
        thread.start()
        threads.append(thread)
    try:
        yield fleet
    finally:
        fleet.close()
        for thread in threads:
            thread.join(timeout=5)


class TestRemoteFleet:
    def test_round_trip_and_results(self, fleet_with_thread_workers):
        fleet = fleet_with_thread_workers
        with WorkScheduler(fleet=fleet) as scheduler:
            handles = [
                scheduler.submit(echo_task, index, name=f"echo-{index}")
                for index in range(6)
            ]
            scheduler.drain()
        assert [handle.state for handle in handles] == [TaskState.DONE] * 6
        assert [handle.result for handle in handles] == [
            ("echo", index) for index in range(6)
        ]

    def test_event_streams_are_per_task_ordered(self, fleet_with_thread_workers):
        fleet = fleet_with_thread_workers
        streams: dict[int, list] = {}
        with WorkScheduler(fleet=fleet) as scheduler:
            for index in range(4):
                streams[index] = []
                scheduler.submit(
                    stream_task,
                    {"count": 5, "tag": index},
                    on_event=streams[index].append,
                    name=f"stream-{index}",
                )
            scheduler.drain()
        for index, events in streams.items():
            assert events == [("tick", index, tick) for tick in range(5)]

    def test_worker_exception_settles_failed(self, fleet_with_thread_workers):
        fleet = fleet_with_thread_workers
        with WorkScheduler(fleet=fleet) as scheduler:
            handle = scheduler.submit(failing_task, "payload", name="fails")
            scheduler.drain()
        assert handle.state is TaskState.FAILED
        assert isinstance(handle.exception, ValueError)
        assert "boom: payload" in handle.error

    def test_cancel_crosses_the_socket(self, fleet_with_thread_workers):
        fleet = fleet_with_thread_workers
        with WorkScheduler(fleet=fleet) as scheduler:
            handle = scheduler.submit(
                sleepy_task,
                10.0,
                name="sleeper",
                on_start=lambda: threading.Timer(0.3, handle.cancel).start(),
            )
            scheduler.drain()
        # The cooperative cancel reached the worker: the task *returned*
        # (DONE, reporting it saw the signal) instead of sleeping 10s.
        assert handle.state is TaskState.DONE
        assert handle.result == "cancelled"

    def test_unpicklable_payload_fails_only_that_task(self, fleet_with_thread_workers):
        fleet = fleet_with_thread_workers
        with WorkScheduler(fleet=fleet) as scheduler:
            bad = scheduler.submit(echo_task, threading.Lock(), name="unpicklable")
            good = scheduler.submit(echo_task, "fine", name="good")
            scheduler.drain()
        assert bad.state is TaskState.FAILED
        assert good.state is TaskState.DONE

    def test_no_workers_surfaces_executor_unavailable(self):
        fleet = RemoteFleet(workers=["127.0.0.1:1"], start_timeout=0.5)
        try:
            with WorkScheduler(fleet=fleet) as scheduler:
                handle = scheduler.submit(echo_task, 1, name="never-runs")
                with pytest.raises(ExecutorUnavailable):
                    scheduler.drain()
            # The unwind leaves the task PENDING for an inline fallback.
            assert handle.state is TaskState.PENDING
        finally:
            fleet.close()

    def test_ensure_started_timeout_raises_fleet_unavailable(self):
        fleet = RemoteFleet(workers=["127.0.0.1:1"], start_timeout=0.3)
        try:
            with pytest.raises(FleetUnavailable):
                fleet.ensure_started()
        finally:
            fleet.close()


class TestLeaseRecovery:
    def test_kill9_mid_task_releases_and_releases_exactly_once(self):
        """A kill -9'd worker's lease is re-granted; settlement stays single."""

        class MemoryLog:
            def __init__(self):
                self.records = []

            def append(self, record):
                self.records.append(dict(record))

        log = MemoryLog()
        fleet = RemoteFleet(
            listen="127.0.0.1:0",
            min_workers=2,
            heartbeat_interval=0.2,
            lease_ttl=1.5,
            lease_log=log,
        )
        first = _spawn_connect_worker(fleet.bound_address, "kill-w0")
        second = _spawn_connect_worker(fleet.bound_address, "kill-w1")
        try:
            # Both workers must be registered before the kill timer arms, or
            # a slow interpreter start turns "killed mid-task" into "killed
            # before it ever joined" and the fleet never reaches min_workers.
            fleet.ensure_started()
            with WorkScheduler(fleet=fleet) as scheduler:
                handles = [
                    scheduler.submit(sleepy_task, 1.2, name=f"lease-{index}")
                    for index in range(2)
                ]
                threading.Timer(0.4, lambda: first.send_signal(signal.SIGKILL)).start()
                scheduler.drain()
            assert [handle.state for handle in handles] == [TaskState.DONE] * 2
            assert [handle.result for handle in handles] == ["slept"] * 2
            # Exactly one task was re-leased, charged one crash retry.
            assert sum(handle.retries for handle in handles) == 1
            assert scheduler.stats.task_retries == 1
            assert scheduler.stats.workers_lost == 1
            assert scheduler.stats.tasks_done == 2
            releases = [r for r in log.records if r["type"] == "released"]
            assert sorted(r["outcome"] for r in releases) == ["done", "done", "lost"]
            # The re-grant is journalled: the lost job has two leased lines,
            # the second to the surviving worker.
            lost_job = next(r["job"] for r in releases if r["outcome"] == "lost")
            grants = [
                r["worker"]
                for r in log.records
                if r["type"] == "leased" and r["job"] == lost_job
            ]
            assert len(grants) == 2 and grants[0] != grants[1]
        finally:
            fleet.close()
            _reap(first, second)

    def test_expire_revalidates_under_lock(self, fleet_with_thread_workers):
        """Regression: the monitor must not expire a renewed or closing link.

        ``_expire_link`` re-checks liveness and ``last_beat`` freshness under
        the fleet lock before committing the loss — a heartbeat landing
        between the monitor's scan and the expiry, or ``close()`` tearing the
        link down concurrently, must turn the expiry into a no-op.
        """
        fleet = fleet_with_thread_workers
        fleet.ensure_started()
        link = next(iter(fleet._links.values()))

        # Scan saw the link silent, but a heartbeat renews it before the
        # expire commits: the expiry must notice the fresh last_beat.
        link.last_beat = time.time() - 10 * fleet.lease_ttl
        fleet._apply_heartbeat(link)
        assert fleet._expire_link(link, "stale scan") is False
        assert not link.lost
        assert link.worker_id in fleet._links
        assert fleet.workers_lost == 0

        # A link already being closed (lost flag set) must not be expired
        # again — no double workers_lost, no double _fail_inflight.
        link.last_beat = time.time() - 10 * fleet.lease_ttl
        with fleet._lock:
            link.lost = True
        try:
            assert fleet._expire_link(link, "racing close") is False
            assert fleet.workers_lost == 0
        finally:
            with fleet._lock:
                link.lost = False
            link.last_beat = time.time()

    @pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
    def test_lease_journal_replays_from_real_store_backends(self, tmp_path, backend):
        """The fleet's lease_log can be a real job store of either backend:
        the journal lands as replayable lease annotations in load_jobs()."""
        from repro.jobstore import JobStore, SQLiteJobStore

        if backend == "sqlite":
            store = SQLiteJobStore(tmp_path / "leases.sqlite", fsync=False)
        else:
            store = JobStore(tmp_path / "leases.jsonl", fsync=False)
        fleet = RemoteFleet(
            listen="127.0.0.1:0", min_workers=2, start_timeout=15.0, lease_log=store
        )
        host, port = wire.parse_address(fleet.bound_address)
        threads = []
        for index in range(2):
            agent = WorkerAgent(worker_id=f"lease-w{index}")
            thread = threading.Thread(
                target=agent.connect, args=(host, port), daemon=True
            )
            thread.start()
            threads.append(thread)
        try:
            with WorkScheduler(fleet=fleet) as scheduler:
                handles = [
                    scheduler.submit(echo_task, index, name=f"journal-{index}")
                    for index in range(3)
                ]
                scheduler.drain()
            assert [handle.state for handle in handles] == [TaskState.DONE] * 3
        finally:
            fleet.close()
            for thread in threads:
                thread.join(timeout=5)
        standings = store.load_jobs()
        store.close()
        for index in range(3):
            lease = standings[f"journal-{index}"].lease
            # Latest record wins: a clean run ends on the release.
            assert lease["type"] == "released" and lease["outcome"] == "done"
            assert lease["worker"].startswith("lease-w")

    def test_sigstop_expires_lease_without_connection_drop(self):
        """A silent (not dead) worker loses its lease at the TTL."""
        fleet = RemoteFleet(
            listen="127.0.0.1:0",
            min_workers=2,
            heartbeat_interval=0.15,
            lease_ttl=1.0,
        )
        stalled = _spawn_connect_worker(fleet.bound_address, "stall-w0")
        healthy = _spawn_connect_worker(fleet.bound_address, "stall-w1")
        try:
            # See the kill -9 test: registration first, then stall mid-task.
            fleet.ensure_started()
            with WorkScheduler(fleet=fleet) as scheduler:
                handles = [
                    scheduler.submit(sleepy_task, 0.8, name=f"stall-{index}")
                    for index in range(2)
                ]
                threading.Timer(
                    0.2, lambda: stalled.send_signal(signal.SIGSTOP)
                ).start()
                scheduler.drain()
            assert [handle.state for handle in handles] == [TaskState.DONE] * 2
            assert scheduler.stats.workers_lost == 1
            assert scheduler.stats.task_retries == 1
        finally:
            try:
                stalled.send_signal(signal.SIGCONT)
            except ProcessLookupError:
                pass
            fleet.close()
            _reap(stalled, healthy)


# ---------------------------------------------------- transport equivalence
QUICK_SLICE = ["Oracle-1", "Ambler-3", "Ambler-5"]


def _pin_config(**overrides) -> SynthesisConfig:
    """The determinism-pinned profile shared by the equivalence tests.

    ``parallel_wave_size=1`` + pooling off makes parallel trajectories a
    pure function of the enumeration order (see tests/test_session.py);
    the same pin makes the socket transport byte-comparable.
    """
    return SynthesisConfig(counterexample_pool=False, **overrides)


def _run_with_fleet(benchmark, addresses) -> tuple:
    events: list = []
    session = SynthesisSession(
        benchmark.source_program,
        benchmark.target_schema,
        _pin_config(execution_fleet=tuple(addresses), parallel_wave_size=1),
        on_event=events.append,
    )
    result = session.run()
    return result, events


def _assert_equivalent(name, sequential, seq_events, remote, remote_events):
    assert (sequential.program is None) == (remote.program is None), name
    if sequential.program is not None:
        assert format_program(sequential.program) == format_program(remote.program), name
    assert sequential.attempts == remote.attempts, name
    assert sequential.iterations == remote.iterations, name
    assert [type(e).__name__ for e in seq_events] == [
        type(e).__name__ for e in remote_events
    ], name


@pytest.fixture(scope="module")
def listen_workers():
    """Two subprocess ``--listen`` workers shared by the equivalence tests."""
    first, first_address = _spawn_listen_worker("equiv-w0")
    second, second_address = _spawn_listen_worker("equiv-w1")
    try:
        yield [first_address, second_address]
    finally:
        _reap(first, second)


class TestSocketTransportEquivalence:
    def test_socket_stream_matches_sequential_on_slice(self, listen_workers):
        for name in QUICK_SLICE:
            benchmark = get_benchmark(name)
            seq_events: list = []
            sequential = SynthesisSession(
                benchmark.source_program,
                benchmark.target_schema,
                _pin_config(),
                on_event=seq_events.append,
            ).run()
            remote, remote_events = _run_with_fleet(benchmark, listen_workers)
            _assert_equivalent(name, sequential, seq_events, remote, remote_events)
            assert remote.parallel_workers_used == 2, name
            assert remote.scheduler is not None, name
            assert remote.scheduler["workers_lost"] == 0, name

    def test_socket_matches_queue_transport(self, listen_workers):
        name = QUICK_SLICE[1]
        benchmark = get_benchmark(name)
        queue_events: list = []
        pooled = SynthesisSession(
            benchmark.source_program,
            benchmark.target_schema,
            _pin_config(parallel_workers=2, parallel_wave_size=1),
            on_event=queue_events.append,
        ).run()
        remote, remote_events = _run_with_fleet(benchmark, listen_workers)
        _assert_equivalent(name, pooled, queue_events, remote, remote_events)

    @pytest.mark.skipif(
        os.environ.get("REPRO_FULL_EQUIV", "") in ("", "0", "false"),
        reason="full 20-benchmark sweep only in scheduled CI (REPRO_FULL_EQUIV=1)",
    )
    def test_socket_stream_matches_sequential_all_benchmarks(self, listen_workers):
        for name in benchmark_names():
            benchmark = get_benchmark(name)
            seq_events: list = []
            sequential = SynthesisSession(
                benchmark.source_program,
                benchmark.target_schema,
                _pin_config(),
                on_event=seq_events.append,
            ).run()
            remote, remote_events = _run_with_fleet(benchmark, listen_workers)
            _assert_equivalent(name, sequential, seq_events, remote, remote_events)


# ------------------------------------------------------- distributed smoke
@pytest.mark.skipif(
    os.environ.get("REPRO_DIST_SMOKE", "") in ("", "0", "false"),
    reason="distributed smoke only in its dedicated CI job (REPRO_DIST_SMOKE=1)",
)
class TestDistributedSmoke:
    """The CI smoke: a 5-job fleet batch survives kill -9 with pinned output."""

    JOBS = ["Oracle-1", "Ambler-3", "Ambler-4", "MathHotSpot", "coachup"]

    def _jobs(self):
        batch = []
        for name in self.JOBS:
            benchmark = get_benchmark(name)
            batch.append(
                MigrationJob(
                    name=name,
                    source_program=benchmark.source_program,
                    target_schema=benchmark.target_schema,
                )
            )
        return batch

    @staticmethod
    def _comparable_response(response: dict) -> dict:
        result = dict(response["result"])
        for field in ("synthesis_time", "verification_time", "total_time"):
            result.pop(field, None)
        # Execution-shape fields legitimately differ across transports.
        result.pop("parallel_workers_used", None)
        result.pop("scheduler", None)
        result.pop("resilience", None)
        cache = dict(result.get("cache") or {})
        cache.pop("screening_time", None)
        # Cache *occupancy* is execution-shape too: a worker's shared source
        # cache holds entries for whichever other jobs it happened to run.
        cache.pop("source_cache_entries", None)
        cache.pop("source_cache_evictions", None)
        result["cache"] = cache
        return {"job": response["job"], "status": response["status"], "result": result}

    def test_five_job_batch_survives_kill9_with_pinned_trajectories(self, tmp_path):
        config = SynthesisConfig(counterexample_pool=False)
        sequential = MigrationService(default_config=config)
        sequential.submit_batch(self._jobs())
        sequential.run()
        baseline = {
            handle.job.name: self._comparable_response(handle.to_dict())
            for handle in sequential.handles
        }

        store = tmp_path / "smoke.jsonl"
        fleet = RemoteFleet(
            listen="127.0.0.1:0",
            min_workers=2,
            heartbeat_interval=0.2,
            lease_ttl=1.5,
        )
        first = _spawn_connect_worker(fleet.bound_address, "smoke-w0")
        second = _spawn_connect_worker(fleet.bound_address, "smoke-w1")
        killed = threading.Event()

        def kill_on_first_event(_job, _event):
            if not killed.is_set():
                killed.set()
                first.send_signal(signal.SIGKILL)

        try:
            with MigrationService(
                workers=fleet,
                job_store=str(store),
                default_config=config,
                on_event=kill_on_first_event,
            ) as service:
                handles = service.submit_batch(self._jobs())
                service.run()
            assert killed.is_set(), "the kill trigger never fired"
            assert fleet.workers_lost >= 1, "the killed worker was never declared lost"
            for handle in handles:
                assert handle.status.value == "done", handle.job.name
            distributed = {
                handle.job.name: self._comparable_response(handle.to_dict())
                for handle in handles
            }
            assert distributed == baseline
            # The lease journal shows the crash and the re-grant.
            records = [
                json.loads(line)
                for line in store.read_text().splitlines()
                if line.strip()
            ]
            outcomes = [r.get("outcome") for r in records if r["type"] == "released"]
            assert "lost" in outcomes
            lost_jobs = {
                r["job"]
                for r in records
                if r["type"] == "released" and r["outcome"] == "lost"
            }
            for job_name in lost_jobs:
                grants = [
                    r for r in records if r["type"] == "leased" and r["job"] == job_name
                ]
                assert len(grants) >= 2, f"{job_name} was never re-leased"
        finally:
            fleet.close()
            _reap(first, second)
