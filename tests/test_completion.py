"""Tests for sketch encoding, instantiation, and the completion solvers."""

import pytest

from repro.baselines import BmcCompleter
from repro.completion import (
    EnumerativeCompleter,
    SketchCompleter,
    SketchEncoder,
    instantiate,
)
from repro.completion.instantiate import InstantiationError
from repro.correspondence import ValueCorrespondenceEnumerator
from repro.equivalence import BoundedTester, BoundedVerifier
from repro.lang import Program, QueryFunction, UpdateFunction
from repro.lang.visitors import validate_program
from repro.sat.solver import SatSolver, Status
from repro.sketchgen import SketchGenerator


@pytest.fixture()
def running_example(course_program, course_target_schema):
    enumerator = ValueCorrespondenceEnumerator(course_program, course_target_schema)
    vc = enumerator.next_value_corr().correspondence
    sketch = SketchGenerator(course_program, course_target_schema).generate(vc)
    return course_program, course_target_schema, sketch


# ------------------------------------------------------------------------------- encoder
class TestEncoder:
    def test_exactly_one_variable_per_hole_position(self, running_example):
        _, _, sketch = running_example
        encoding = SketchEncoder(sketch, consistency_constraints=False).encode()
        total_positions = sum(hole.size for hole in sketch.holes())
        assert encoding.cnf.num_variables >= total_positions
        assert len(encoding.variable_of) == total_positions

    def test_every_model_assigns_every_hole(self, running_example):
        _, _, sketch = running_example
        encoding = SketchEncoder(sketch).encode()
        solver = SatSolver()
        solver.add_cnf(encoding.cnf)
        result = solver.solve()
        assert result.is_sat
        assignment = encoding.model_to_assignment(result.model)
        assert set(assignment) == {hole.index for hole in sketch.holes()}
        for hole in sketch.holes():
            assert 0 <= assignment[hole.index] < hole.size

    def test_blocking_clause_excludes_assignment(self, running_example):
        _, _, sketch = running_example
        encoding = SketchEncoder(sketch).encode()
        solver = SatSolver()
        solver.add_cnf(encoding.cnf)
        result = solver.solve()
        assignment = encoding.model_to_assignment(result.model)
        hole_indices = [hole.index for hole in sketch.holes()]
        solver.add_clause(encoding.blocking_clause(assignment, hole_indices))
        second = solver.solve()
        assert second.is_sat
        assert encoding.model_to_assignment(second.model) != assignment

    def test_consistency_constraints_reduce_models(self, running_example):
        _, _, sketch = running_example

        def count_models(consistency):
            encoding = SketchEncoder(sketch, consistency_constraints=consistency).encode()
            solver = SatSolver()
            solver.add_cnf(encoding.cnf)
            count = 0
            while count < 2000:
                result = solver.solve()
                if result.status is not Status.SAT:
                    break
                count += 1
                assignment = encoding.model_to_assignment(result.model)
                solver.add_clause(
                    encoding.blocking_clause(assignment, [h.index for h in sketch.holes()])
                )
            return count

        assert count_models(True) <= count_models(False)


# --------------------------------------------------------------------------- instantiate
class TestInstantiate:
    def test_default_assignment_produces_valid_program(self, running_example):
        source, target_schema, sketch = running_example
        assignment = {hole.index: 0 for hole in sketch.holes()}
        program = instantiate(sketch, assignment)
        assert isinstance(program, Program)
        assert set(program.function_names) == set(source.function_names)
        validate_program(program)

    def test_signatures_are_preserved(self, running_example):
        source, _, sketch = running_example
        assignment = {hole.index: 0 for hole in sketch.holes()}
        program = instantiate(sketch, assignment)
        for name in source.function_names:
            assert program.function(name).params == source.function(name).params

    def test_function_kinds_preserved(self, running_example):
        source, _, sketch = running_example
        assignment = {hole.index: 0 for hole in sketch.holes()}
        program = instantiate(sketch, assignment)
        for name in source.function_names:
            assert isinstance(
                program.function(name),
                QueryFunction if source.function(name).is_query else UpdateFunction,
            )

    def test_missing_hole_raises(self, running_example):
        _, _, sketch = running_example
        with pytest.raises(InstantiationError):
            instantiate(sketch, {})

    def test_different_assignments_yield_different_programs(self, running_example):
        _, _, sketch = running_example
        holes = sketch.holes()
        base = {hole.index: 0 for hole in holes}
        variant = dict(base)
        variable_hole = next(hole for hole in holes if hole.size > 1)
        variant[variable_hole.index] = 1
        from repro.lang.pretty import format_program

        assert format_program(instantiate(sketch, base)) != format_program(
            instantiate(sketch, variant)
        )


# ----------------------------------------------------------------------------- completers
class TestSketchCompleter:
    def test_running_example_completes(self, running_example):
        source, _, sketch = running_example
        completer = SketchCompleter(source, verifier=BoundedVerifier(random_sequences=50))
        result = completer.complete(sketch)
        assert result.succeeded
        assert result.statistics.iterations >= 1
        # the synthesized program is equivalent up to the testing bound
        assert BoundedTester(source, max_updates=2).check_equivalent(result.program)

    def test_mfi_blocking_is_no_slower_than_enumerative(self, running_example):
        source, _, sketch = running_example
        mfi = SketchCompleter(source).complete(sketch)
        enumerative = EnumerativeCompleter(source, max_iterations=2000).complete(sketch)
        assert mfi.succeeded
        if enumerative.succeeded:
            assert mfi.statistics.iterations <= enumerative.statistics.iterations

    def test_iteration_cap_reports_failure(self, running_example):
        source, _, sketch = running_example
        completer = SketchCompleter(source, max_iterations=0)
        result = completer.complete(sketch)
        assert not result.succeeded

    def test_time_limit_reports_failure(self, running_example):
        source, _, sketch = running_example
        completer = SketchCompleter(source, time_limit=0.0)
        result = completer.complete(sketch)
        assert not result.succeeded

    def test_bmc_completer_on_running_example(self, running_example):
        source, _, sketch = running_example
        completer = BmcCompleter(source, time_limit=120.0)
        result = completer.complete(sketch)
        assert result.succeeded
        assert BoundedTester(source).check_equivalent(result.program)
        assert result.statistics.sequences_encoded > 0

    def test_eliminated_estimate_counts_pruned_programs(self, running_example):
        source, _, sketch = running_example
        completer = SketchCompleter(source)
        result = completer.complete(sketch)
        if result.statistics.blocked_clauses:
            assert result.statistics.eliminated_estimate >= result.statistics.blocked_clauses
