"""Tests for the streaming session API (repro.core.session).

Covers the event taxonomy, event-stream/final-result consistency,
cancellation mid-completion, the run-wide deadline threaded into sketch
completion, re-entrant consumption, sequential-vs-parallel trajectory
equivalence through the shared session core, and result serialization.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from dataclasses import replace

import pytest

from repro import SynthesisConfig, format_program, migrate
from repro.api import (
    TERMINAL_EVENTS,
    BudgetExhausted,
    BudgetTimeout,
    Cancelled,
    CandidateRejected,
    SketchGenerated,
    Solved,
    SynthesisSession,
    Synthesizer,
    VcSelected,
)
from repro.workloads import benchmark_names, get_benchmark


def _config(**overrides) -> SynthesisConfig:
    config = SynthesisConfig()
    config.verifier_random_sequences = 10
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def _comparable(result) -> tuple:
    """Everything except wall-clock fields, for byte-identical comparisons."""
    cache = dataclasses.asdict(result.cache)
    cache.pop("screening_time")
    return (
        result.succeeded,
        result.timed_out,
        result.cancelled,
        result.value_correspondences_tried,
        result.iterations,
        result.attempts,
        None if result.program is None else format_program(result.program),
        result.correspondence,
        cache,
    )


class TestEventStream:
    def test_successful_run_event_shape(self, course_program, course_target_schema):
        session = SynthesisSession(course_program, course_target_schema, _config())
        events = list(session.events())
        assert session.finished
        # The stream starts by selecting the first correspondence and ends
        # with exactly one terminal event.
        assert isinstance(events[0], VcSelected)
        assert events[0].index == 1
        assert any(isinstance(event, SketchGenerated) for event in events)
        terminals = [event for event in events if isinstance(event, TERMINAL_EVENTS)]
        assert len(terminals) == 1
        assert isinstance(events[-1], Solved)

    def test_event_stream_matches_result(self, course_program, course_target_schema):
        session = SynthesisSession(course_program, course_target_schema, _config())
        events = list(session.events())
        result = session.result
        assert result.succeeded
        # One VcSelected per attempted correspondence, in index order.
        selections = [event for event in events if isinstance(event, VcSelected)]
        assert [event.index for event in selections] == list(
            range(1, result.value_correspondences_tried + 1)
        )
        # Candidate rejections + the solved candidate account for the
        # completion iterations of the recorded attempts.
        rejections = [event for event in events if isinstance(event, CandidateRejected)]
        solved = [event for event in events if isinstance(event, Solved)]
        assert solved[0].iterations == result.attempts[-1].iterations
        assert len(rejections) <= result.iterations
        # The per-attempt summaries reflect the same stream.
        assert result.attempts[-1].events[-1].startswith("solved")

    def test_budget_exhausted_when_no_solution(self, people_program):
        from repro.datamodel import DataType as T, make_schema

        target = make_schema("bad", {"Person": {"PersonId": T.INT, "Age": T.INT}})
        session = SynthesisSession(people_program, target, _config())
        events = list(session.events())
        assert not session.result.succeeded
        assert isinstance(events[-1], BudgetExhausted)

    def test_on_event_callback_sees_every_event(self, course_program, course_target_schema):
        streamed: list = []
        session = SynthesisSession(
            course_program, course_target_schema, _config(), on_event=streamed.append
        )
        pulled = list(session.events())
        assert streamed == pulled

    def test_reentrant_consumption(self):
        # Events are delivered at attempt granularity, so a multi-attempt
        # workload (Ambler-5 tries 10 correspondences) can be paused midway:
        # the first attempt's events arrive while later attempts are pending.
        bench = get_benchmark("Ambler-5")
        session = SynthesisSession(bench.source_program, bench.target_schema, _config())
        stream = session.events()
        first = next(stream)
        assert isinstance(first, VcSelected)
        assert not session.finished
        assert session.result.value_correspondences_tried < 10
        # run() resumes the same stream instead of restarting the run.
        result = session.run()
        assert session.finished
        assert result.succeeded
        assert result.value_correspondences_tried == 10


class TestByteIdenticalWithMigrate:
    #: Small-but-representative slice for every tier-1 run; the full registry
    #: sweep rides behind REPRO_FULL_EQUIV=1 (it synthesizes all 20 twice).
    QUICK = ["Oracle-1", "Oracle-2", "Ambler-3", "Ambler-5"]

    @pytest.mark.parametrize("name", QUICK)
    def test_session_matches_migrate(self, name):
        bench = get_benchmark(name)
        blocking = migrate(bench.source_program, bench.target_schema, _config())
        session = SynthesisSession(bench.source_program, bench.target_schema, _config())
        streamed = session.run()
        assert _comparable(blocking) == _comparable(streamed)

    @pytest.mark.skipif(
        os.environ.get("REPRO_FULL_EQUIV", "") in ("", "0", "false"),
        reason="full 20-workload sweep; set REPRO_FULL_EQUIV=1",
    )
    def test_all_registry_workloads_match(self):
        for name in benchmark_names():
            bench = get_benchmark(name)
            blocking = migrate(bench.source_program, bench.target_schema, SynthesisConfig())
            streamed = SynthesisSession(
                bench.source_program, bench.target_schema, SynthesisConfig()
            ).run()
            assert _comparable(blocking) == _comparable(streamed), name


class TestCancellation:
    def test_cancel_before_start(self, course_program, course_target_schema):
        session = SynthesisSession(course_program, course_target_schema, _config())
        session.cancel()
        events = list(session.events())
        result = session.result
        assert result.cancelled and not result.succeeded and not result.timed_out
        assert isinstance(events[-1], Cancelled)
        assert result.attempts == []
        assert result.status == "CANCELLED"

    def test_cancel_mid_completion(self):
        # Ambler-3's first sketch rejects several candidates before solving;
        # cancelling from the rejection callback stops the completion loop
        # at its next iteration — mid-sketch, not between correspondences.
        bench = get_benchmark("Ambler-3")

        def on_event(event):
            if isinstance(event, CandidateRejected):
                session.cancel()

        session = SynthesisSession(
            bench.source_program, bench.target_schema, _config(), on_event=on_event
        )
        result = session.run()
        assert result.cancelled and not result.succeeded
        assert result.attempts, "the interrupted attempt must still be recorded"
        assert result.attempts[-1].failure_reason == "cancelled"
        baseline = migrate(bench.source_program, bench.target_schema, _config())
        assert result.iterations < baseline.iterations

    def test_cancelled_attempt_events_summary(self):
        bench = get_benchmark("Ambler-3")

        def on_event(event):
            if isinstance(event, CandidateRejected):
                session.cancel()

        session = SynthesisSession(
            bench.source_program, bench.target_schema, _config(), on_event=on_event
        )
        result = session.run()
        assert any("candidate_rejected" in entry for entry in result.attempts[-1].events)
        assert not any("solved" in entry for entry in result.attempts[-1].events)


class TestDeadline:
    def test_zero_time_limit_flags_timeout(self, course_program, course_target_schema):
        session = SynthesisSession(
            course_program, course_target_schema, _config(time_limit=0.0)
        )
        events = list(session.events())
        assert session.result.timed_out and not session.result.succeeded
        assert isinstance(events[-1], BudgetTimeout)

    def test_deadline_stops_long_sketch_mid_completion(self):
        # The enumerative strategy on Oracle-2 without iteration caps churns
        # through thousands of candidates on one sketch; before the deadline
        # redesign the global time_limit was only checked *between* VCs, so
        # this run would overshoot its budget by the whole sketch.
        bench = get_benchmark("Oracle-2")
        config = _config(
            completion_strategy="enumerative",
            counterexample_pool=False,
            final_verification=False,
            max_iterations_per_sketch=None,
            time_limit=1.0,
        )
        started = time.perf_counter()
        result = SynthesisSession(bench.source_program, bench.target_schema, config).run()
        elapsed = time.perf_counter() - started
        assert result.timed_out and not result.succeeded
        assert elapsed < 5.0, f"deadline overshot: {elapsed:.1f}s for a 1s budget"
        assert result.attempts[-1].failure_reason == "time limit reached"

    def test_deadline_stops_deep_verification_pass(self):
        # coachup's verification pass dominates its run (~0.1s synthesis vs
        # ~1s verification at these bounds); a budget landing inside that
        # pass must interrupt it — the verifier polls the deadline per
        # sequence — instead of letting the run overshoot by the whole pass.
        bench = get_benchmark("coachup")
        config = _config(
            verifier_max_updates=3, verifier_random_sequences=300, time_limit=0.4
        )
        started = time.perf_counter()
        result = SynthesisSession(bench.source_program, bench.target_schema, config).run()
        elapsed = time.perf_counter() - started
        assert result.timed_out and not result.succeeded
        assert elapsed < 0.9, f"verification overran the 0.4s budget: {elapsed:.2f}s"

    def test_verifier_interrupt_hook(self, course_program):
        from repro.equivalence import BoundedVerifier, TestingInterrupted

        verifier = BoundedVerifier(max_updates=2, random_sequences=10)
        verifier.interrupt = lambda: True
        with pytest.raises(TestingInterrupted):
            verifier.verify(course_program, course_program)


def _crash_explore_once(task, ctx):
    """Fork-safe crash injection for the kill-a-worker retry test.

    Hard-kills the worker the first time it runs vc-1 (marker file keeps it
    once-only across the rebuilt pool), then delegates to the real worker
    entry point.  Module-level so the fork pool pickles it by reference.
    """
    import repro.core.parallel as parallel_module

    marker = os.environ.get("REPRO_TEST_CRASH_MARKER", "")
    if marker and task.index == 1 and not os.path.exists(marker):
        open(marker, "w").close()
        os._exit(1)
    return parallel_module._real_explore_for_test(task, ctx)


class TestParallelStreamingSession:
    """API v2: one session over every execution mode, streaming everywhere."""

    #: Small-but-representative slice for every tier-1 run; the full registry
    #: sweep rides behind REPRO_FULL_EQUIV=1.
    QUICK = ["Oracle-1", "Ambler-3", "Ambler-5"]

    @staticmethod
    def _seq_config(**overrides) -> SynthesisConfig:
        # Pooling off: the counterexample pool is a *shared accelerator*
        # whose per-attempt observations depend on scheduling, so the
        # pinned cross-mode stream equality holds for pool-free runs (the
        # same configuration the 1.x trajectory-equivalence tests pinned).
        return _config(counterexample_pool=False, **overrides)

    @classmethod
    def _par_config(cls, **overrides) -> SynthesisConfig:
        return replace(
            cls._seq_config(**overrides), parallel_workers=2, parallel_wave_size=1
        )

    def _streams(self, name: str):
        bench = get_benchmark(name)
        sequential = SynthesisSession(
            bench.source_program, bench.target_schema, self._seq_config()
        )
        seq_events = list(sequential.events())
        parallel = SynthesisSession(
            bench.source_program, bench.target_schema, self._par_config()
        )
        par_events = list(parallel.events())
        return (seq_events, sequential.result), (par_events, parallel.result)

    def _assert_equivalent(self, name: str) -> None:
        (seq_events, seq), (par_events, par) = self._streams(name)
        # Same ordered typed event stream (workers publish through channel
        # transports; the merge is deterministic)...
        assert seq_events == par_events, name
        # ... and the same pinned trajectory on the results.
        assert seq.attempts == par.attempts, name
        assert seq.value_correspondences_tried == par.value_correspondences_tried, name
        assert (seq.program is None) == (par.program is None), name
        if seq.program is not None:
            assert format_program(seq.program) == format_program(par.program), name
        assert par.parallel_workers_used == 2, name

    def test_merged_stream_matches_sequential_on_slice(self):
        for name in self.QUICK:
            self._assert_equivalent(name)

    @pytest.mark.skipif(
        os.environ.get("REPRO_FULL_EQUIV", "") in ("", "0", "false"),
        reason="full 20-workload sweep; set REPRO_FULL_EQUIV=1",
    )
    def test_merged_stream_matches_sequential_on_all_workloads(self):
        for name in benchmark_names():
            self._assert_equivalent(name)

    def test_exhausted_run_stream_matches_sequential(self, people_program):
        from repro.datamodel import DataType as T, make_schema

        target = make_schema("bad", {"Person": {"PersonId": T.INT, "Age": T.INT}})
        seq_session = SynthesisSession(people_program, target, self._seq_config())
        seq_events = list(seq_session.events())
        par_session = SynthesisSession(people_program, target, self._par_config())
        par_events = list(par_session.events())
        assert seq_events == par_events
        assert isinstance(par_events[-1], BudgetExhausted)
        assert not par_session.result.succeeded

    def test_on_event_fires_live_in_parallel_mode(self):
        bench = get_benchmark("Ambler-5")
        streamed: list = []
        session = SynthesisSession(
            bench.source_program,
            bench.target_schema,
            self._par_config(),
            on_event=streamed.append,
        )
        pulled = list(session.events())
        assert streamed == pulled
        assert isinstance(pulled[0], VcSelected) and pulled[0].index == 1
        assert isinstance(pulled[-1], Solved)

    def test_migrate_is_a_session_drain_in_parallel_mode(self):
        # migrate() has no parallel special-case left: it drains the same
        # session the streaming path runs.
        bench = get_benchmark("Ambler-5")
        blocking = migrate(bench.source_program, bench.target_schema, self._par_config())
        session = SynthesisSession(
            bench.source_program, bench.target_schema, self._par_config()
        )
        streamed = session.run()
        assert blocking.attempts == streamed.attempts
        assert format_program(blocking.program) == format_program(streamed.program)
        assert blocking.parallel_workers_used == streamed.parallel_workers_used == 2

    def test_parallel_cancel_mid_completion(self):
        bench = get_benchmark("Ambler-3")
        box: dict = {}

        def on_event(event):
            if isinstance(event, CandidateRejected):
                box["session"].cancel()

        box["session"] = SynthesisSession(
            bench.source_program, bench.target_schema, self._par_config(), on_event=on_event
        )
        result = box["session"].run()
        assert result.cancelled and not result.succeeded
        assert result.attempts, "the interrupted attempt must still be recorded"
        assert result.attempts[-1].failure_reason == "cancelled"
        assert result.status == "CANCELLED"

    def test_parallel_cancel_before_start(self):
        bench = get_benchmark("Oracle-1")
        session = SynthesisSession(
            bench.source_program, bench.target_schema, self._par_config()
        )
        session.cancel()
        events = list(session.events())
        assert session.result.cancelled and not session.result.succeeded
        assert isinstance(events[-1], Cancelled)
        assert session.result.attempts == []

    def test_parallel_zero_time_limit_flags_timeout(self):
        bench = get_benchmark("Oracle-1")
        session = SynthesisSession(
            bench.source_program,
            bench.target_schema,
            self._par_config(time_limit=0.0),
        )
        events = list(session.events())
        assert session.result.timed_out and not session.result.succeeded
        assert isinstance(events[-1], BudgetTimeout)

    def test_killed_worker_is_retried_with_same_trajectory(self, monkeypatch, tmp_path):
        # Kill the vc-1 worker once mid-wave: the scheduler's crash recovery
        # requeues just that task onto a rebuilt pool, and the run finishes
        # with the exact sequential trajectory (no wholesale fallback).
        import repro.core.parallel as parallel_module

        marker = tmp_path / "worker-crashed"
        monkeypatch.setenv("REPRO_TEST_CRASH_MARKER", str(marker))
        monkeypatch.setattr(
            parallel_module,
            "_real_explore_for_test",
            parallel_module._explore_correspondence,
            raising=False,
        )
        monkeypatch.setattr(
            parallel_module, "_explore_correspondence", _crash_explore_once
        )
        bench = get_benchmark("Oracle-1")
        result = SynthesisSession(
            bench.source_program, bench.target_schema, self._par_config()
        ).run()
        assert marker.exists(), "the crash injection never fired"
        assert result.succeeded
        assert result.parallel_workers_used == 2
        sequential = migrate(bench.source_program, bench.target_schema, self._seq_config())
        assert result.attempts == sequential.attempts
        assert format_program(result.program) == format_program(sequential.program)


class TestParallelTrajectoryEquivalence:
    def test_wave_size_one_matches_sequential(self):
        # With one-VC waves and the pool disabled, the parallel driver feeds
        # the shared session core exactly the sequential schedule, so the
        # whole trajectory — every AttemptRecord including its event summary,
        # and the winning program — must match the sequential run.
        bench = get_benchmark("Ambler-5")
        config = _config(counterexample_pool=False)
        sequential = Synthesizer(config).synthesize(bench.source_program, bench.target_schema)
        parallel = Synthesizer(
            replace(config, parallel_workers=2, parallel_wave_size=1)
        ).synthesize(bench.source_program, bench.target_schema)
        assert sequential.attempts == parallel.attempts
        assert format_program(sequential.program) == format_program(parallel.program)
        assert sequential.iterations == parallel.iterations
        assert parallel.parallel_workers_used == 2

    def test_single_vc_workload_matches_with_pool(self):
        # A first-correspondence success exercises the pool-carrying path:
        # the worker starts from an empty snapshot exactly like the
        # sequential core, so trajectories coincide even with pooling on.
        bench = get_benchmark("Oracle-2")
        config = _config()
        sequential = Synthesizer(config).synthesize(bench.source_program, bench.target_schema)
        parallel = Synthesizer(
            replace(config, parallel_workers=2, parallel_wave_size=1)
        ).synthesize(bench.source_program, bench.target_schema)
        assert sequential.attempts == parallel.attempts
        assert format_program(sequential.program) == format_program(parallel.program)


class TestSerialization:
    def test_result_to_dict_round_trips_json(self, course_program, course_target_schema):
        result = migrate(course_program, course_target_schema, _config())
        payload = json.loads(result.to_json())
        assert payload["succeeded"] is True
        assert payload["status"] == "OK"
        assert payload["source_program"] == course_program.name
        assert payload["program"] == format_program(result.program)
        assert payload["iterations"] == result.iterations
        assert payload["attempts"][0]["vc_weight"] == result.attempts[0].vc_weight
        assert payload["attempts"][0]["events"] == list(result.attempts[0].events)
        assert payload["cache"]["pool_hits"] == result.cache.pool_hits

    def test_to_dict_can_exclude_program(self, course_program, course_target_schema):
        result = migrate(course_program, course_target_schema, _config())
        payload = result.to_dict(include_program=False)
        assert payload["program"] is None
        assert payload["succeeded"] is True

    def test_failed_result_serializes(self, people_program):
        from repro.datamodel import DataType as T, make_schema

        target = make_schema("bad", {"Person": {"PersonId": T.INT, "Age": T.INT}})
        result = migrate(people_program, target, _config())
        payload = json.loads(result.to_json())
        assert payload["succeeded"] is False
        assert payload["program"] is None
        assert payload["status"] == "FAILED"

    def test_attempt_record_is_keyword_only(self):
        from repro.core.result import AttemptRecord

        with pytest.raises(TypeError):
            AttemptRecord(1, 2, 3, 4, False, "")  # positional construction is fragile
        record = AttemptRecord(vc_weight=1, succeeded=True)
        assert record.sketch_holes == 0 and record.events == ()
