"""Tests for the benchmark suite: registry, refactoring operations, CRUD generation."""

import pytest

from repro.core import SynthesisConfig, Synthesizer
from repro.datamodel import DataType as T
from repro.lang.visitors import validate_program
from repro.workloads import (
    REGISTRY,
    RefactoringError,
    SchemaSpec,
    add_column,
    benchmark_names,
    fold_table,
    get_benchmark,
    load_all,
    merge_tables,
    move_column_to_new_table,
    rename_column,
    rename_table,
    split_table,
)
from repro.workloads.crud import CrudProgramGenerator, EntityDef
from repro.workloads.realworld import make_coachup, paper_sized

EXPECTED_NAMES = {
    "Oracle-1", "Oracle-2", "Ambler-1", "Ambler-2", "Ambler-3", "Ambler-4", "Ambler-5",
    "Ambler-6", "Ambler-7", "Ambler-8", "cdx", "coachup", "2030Club", "rails-ecomm",
    "royk", "MathHotSpot", "gallery", "DeeJBase", "visible-closet", "probable-engine",
}


# ------------------------------------------------------------------------------ registry
class TestRegistry:
    def test_all_twenty_benchmarks_registered(self):
        assert set(benchmark_names()) == EXPECTED_NAMES

    def test_benchmarks_are_cached(self):
        assert get_benchmark("Oracle-1") is get_benchmark("Oracle-1")

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            load_all().get("nope")

    def test_categories(self):
        registry = load_all()
        assert len(registry.by_category("textbook")) == 10
        assert len(registry.by_category("real-world")) == 10

    @pytest.mark.parametrize("name", sorted(EXPECTED_NAMES))
    def test_benchmark_programs_are_well_formed(self, name):
        benchmark = get_benchmark(name)
        validate_program(benchmark.source_program)
        assert benchmark.num_functions >= 4
        assert benchmark.target_schema.num_tables() >= 1
        assert benchmark.stats()["name"] == name

    @pytest.mark.parametrize("name", sorted(EXPECTED_NAMES))
    def test_paper_rows_present(self, name):
        benchmark = get_benchmark(name)
        assert benchmark.paper_row is not None
        assert benchmark.paper_row["funcs"] >= benchmark.num_functions or name.startswith(
            ("Oracle", "Ambler")
        )


# --------------------------------------------------------------------------- refactorings
class TestRefactorings:
    @pytest.fixture()
    def spec(self):
        return SchemaSpec(
            "s",
            {
                "users": {"users_id": T.INT, "users_name": T.STRING, "users_bio": T.STRING},
                "posts": {"posts_id": T.INT, "posts_title": T.STRING, "users_id": T.INT},
            },
            [("posts.users_id", "users.users_id")],
        )

    def test_split_table_moves_columns(self, spec):
        result = split_table(spec, "users", ["users_bio"], "profiles", "profile_id")
        assert "users_bio" not in result.tables["users"]
        assert "users_bio" in result.tables["profiles"]
        assert "profile_id" in result.tables["users"]
        assert ("users.profile_id", "profiles.profile_id") in result.foreign_keys
        # original spec untouched
        assert "users_bio" in spec.tables["users"]

    def test_split_unknown_column_raises(self, spec):
        with pytest.raises(RefactoringError):
            split_table(spec, "users", ["nope"], "profiles", "profile_id")

    def test_rename_column_updates_foreign_keys(self, spec):
        result = rename_column(spec, "users", "users_id", "uid")
        assert "uid" in result.tables["users"]
        assert ("posts.users_id", "users.uid") in result.foreign_keys

    def test_rename_column_conflict_raises(self, spec):
        with pytest.raises(RefactoringError):
            rename_column(spec, "users", "users_id", "users_name")

    def test_rename_table(self, spec):
        result = rename_table(spec, "users", "accounts")
        assert "accounts" in result.tables and "users" not in result.tables
        assert ("posts.users_id", "accounts.users_id") in result.foreign_keys

    def test_add_column(self, spec):
        result = add_column(spec, "posts", "posts_slug", T.STRING)
        assert result.tables["posts"]["posts_slug"] is T.STRING

    def test_add_existing_column_raises(self, spec):
        with pytest.raises(RefactoringError):
            add_column(spec, "users", "users_name", T.STRING)

    def test_merge_tables(self):
        spec = SchemaSpec(
            "s",
            {
                "cats": {"cats_id": T.INT, "cats_name": T.STRING},
                "dogs": {"dogs_id": T.INT, "dogs_name": T.STRING},
            },
        )
        result = merge_tables(spec, "cats", "dogs", "pets")
        assert set(result.tables) == {"pets"}
        assert set(result.tables["pets"]) == {"cats_id", "cats_name", "dogs_id", "dogs_name"}

    def test_merge_with_overlapping_columns_raises(self, spec):
        other = SchemaSpec("s2", {"a": {"x": T.INT}, "b": {"x": T.INT}})
        with pytest.raises(RefactoringError):
            merge_tables(other, "a", "b", "ab")

    def test_build_produces_schema(self, spec):
        schema = spec.build()
        assert schema.num_tables() == 2
        assert schema.num_attributes() == spec.num_attributes()


# ------------------------------------------------------------------- hardening / fold
class TestRefactoringHardening:
    """Regression tests: malformed operations raise RefactoringError naming
    the offending table/column instead of producing a corrupt spec."""

    @pytest.fixture()
    def spec(self):
        return SchemaSpec(
            "s",
            {
                "users": {"users_id": T.INT, "users_name": T.STRING, "users_bio": T.STRING},
                "posts": {"posts_id": T.INT, "posts_title": T.STRING, "users_id": T.INT},
            },
            [("posts.users_id", "users.users_id")],
        )

    def test_merge_colliding_columns_names_the_columns(self, spec):
        other = SchemaSpec("s2", {"a": {"x": T.INT, "y": T.INT}, "b": {"x": T.INT}})
        with pytest.raises(RefactoringError) as exc:
            merge_tables(other, "a", "b", "ab")
        assert "'a'" in str(exc.value) and "'x'" in str(exc.value)

    def test_merge_extra_columns_collision_names_the_columns(self):
        other = SchemaSpec(
            "s2", {"cats": {"cats_id": T.INT}, "dogs": {"dogs_id": T.INT}}
        )
        with pytest.raises(RefactoringError) as exc:
            merge_tables(other, "cats", "dogs", "m", extra_columns={"cats_id": T.INT})
        assert "cats_id" in str(exc.value) and "'m'" in str(exc.value)

    def test_merge_self_raises(self, spec):
        with pytest.raises(RefactoringError) as exc:
            merge_tables(spec, "users", "users", "m")
        assert "itself" in str(exc.value)

    def test_merge_into_unrelated_existing_table_raises(self):
        # Reusing one of the merged tables' own names is the common
        # rename-merge and stays legal; only *unrelated* names are rejected.
        other = SchemaSpec(
            "s3", {"a": {"x": T.INT}, "b": {"y": T.INT}, "c": {"z": T.INT}}
        )
        assert set(merge_tables(other, "a", "b", "a").tables) == {"a", "c"}
        with pytest.raises(RefactoringError) as exc:
            merge_tables(other, "a", "b", "c")
        assert "'c'" in str(exc.value) and "already exists" in str(exc.value)

    def test_move_missing_column_names_table_and_column(self, spec):
        with pytest.raises(RefactoringError) as exc:
            move_column_to_new_table(spec, "users", "users_age", "ages", "age_id")
        assert "'users'" in str(exc.value) and "'users_age'" in str(exc.value)

    def test_split_moving_every_column_raises(self, spec):
        with pytest.raises(RefactoringError) as exc:
            split_table(
                spec, "users", ["users_id", "users_name", "users_bio"], "u2", "link"
            )
        assert "'users'" in str(exc.value) and "all" in str(exc.value)

    def test_split_moving_nothing_raises(self, spec):
        with pytest.raises(RefactoringError) as exc:
            split_table(spec, "users", [], "u2", "link")
        assert "at least one column" in str(exc.value)

    def test_split_link_column_collision_raises(self, spec):
        with pytest.raises(RefactoringError) as exc:
            split_table(spec, "users", ["users_bio"], "u2", "users_name")
        assert "users_name" in str(exc.value)

    def test_fold_undoes_a_split(self, spec):
        split = split_table(spec, "users", ["users_bio"], "profiles", "profile_id")
        folded = fold_table(split, "users", "profiles", "profile_id")
        assert folded.tables == spec.tables
        assert sorted(folded.foreign_keys) == sorted(spec.foreign_keys)

    def test_fold_unknown_link_column_names_both(self, spec):
        split = split_table(spec, "users", ["users_bio"], "profiles", "profile_id")
        with pytest.raises(RefactoringError) as exc:
            fold_table(split, "users", "profiles", "nope")
        assert "'nope'" in str(exc.value)

    def test_fold_into_itself_raises(self, spec):
        with pytest.raises(RefactoringError) as exc:
            fold_table(spec, "users", "users", "users_id")
        assert "itself" in str(exc.value)

    def test_fold_with_column_collision_names_columns(self, spec):
        split = split_table(spec, "users", ["users_bio"], "profiles", "profile_id")
        collided = add_column(split, "users", "users_bio", T.STRING)
        with pytest.raises(RefactoringError) as exc:
            fold_table(collided, "users", "profiles", "profile_id")
        assert "users_bio" in str(exc.value)


# ------------------------------------------------------------------------------ CRUD gen
class TestCrudGenerator:
    @pytest.fixture()
    def generator(self):
        spec = SchemaSpec(
            "shop",
            {
                "items": {"items_id": T.INT, "items_name": T.STRING, "items_price": T.INT},
                "orders": {"orders_id": T.INT, "orders_total": T.INT, "items_id": T.INT},
            },
            [("orders.items_id", "items.items_id")],
        )
        schema = spec.build()
        entities = [
            EntityDef("items", "items_id", spec.tables["items"]),
            EntityDef("orders", "orders_id", spec.tables["orders"]),
        ]
        return CrudProgramGenerator("shop", schema, entities)

    def test_generates_requested_number_of_functions(self, generator):
        program = generator.generate(10)
        assert program.num_functions() == 10
        validate_program(program)

    def test_small_budget_prioritizes_add_get_delete(self, generator):
        program = generator.generate(6)
        names = set(program.function_names)
        assert {"addItems", "getItems", "deleteItems", "addOrders", "getOrders", "deleteOrders"} == names

    def test_function_names_are_unique_even_for_large_budgets(self, generator):
        program = generator.generate(60)
        assert len(program.function_names) == len(set(program.function_names))

    def test_every_query_filters_on_some_attribute(self, generator):
        from repro.lang.visitors import attributes_of_query

        program = generator.generate(20)
        for func in program.query_functions():
            assert attributes_of_query(func.query)

    def test_paper_sized_builds_larger_program(self):
        scaled = make_coachup(num_functions=12)
        full = paper_sized("coachup")
        assert full.num_functions >= scaled.num_functions
        assert full.num_functions == 45

    def test_paper_sized_unknown_name(self):
        with pytest.raises(KeyError):
            paper_sized("nope")


# --------------------------------------------------------------------- end-to-end (small)
class TestBenchmarkSynthesis:
    """End-to-end synthesis on the cheapest benchmarks (kept fast for CI)."""

    @pytest.mark.parametrize("name", ["Oracle-1", "Ambler-2", "Ambler-4", "Ambler-7"])
    def test_small_textbook_benchmarks_synthesize(self, name):
        benchmark = get_benchmark(name)
        config = SynthesisConfig()
        config.verifier_random_sequences = 25
        config.time_limit = 120
        result = Synthesizer(config).synthesize(benchmark.source_program, benchmark.target_schema)
        assert result.succeeded, f"{name} failed to synthesize"
