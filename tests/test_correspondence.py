"""Tests for similarity, value correspondences, and their lazy enumeration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.correspondence import (
    DEFAULT_ALPHA,
    FactoredVcEnumerator,
    MaxSatVcEnumerator,
    ValueCorrespondence,
    ValueCorrespondenceEnumerator,
    VcEnumerationError,
    compatible_targets,
    identity_correspondence,
    levenshtein,
    name_similarity,
    normalized_similarity,
)
from repro.datamodel import Attribute, DataType as T, make_schema
from repro.lang.builder import ProgramBuilder, eq, insert, select


# ----------------------------------------------------------------------------- similarity
class TestSimilarity:
    def test_levenshtein_basics(self):
        assert levenshtein("", "") == 0
        assert levenshtein("abc", "abc") == 0
        assert levenshtein("abc", "") == 3
        assert levenshtein("kitten", "sitting") == 3
        assert levenshtein("IPic", "Pic") == 1

    def test_levenshtein_symmetry(self):
        assert levenshtein("email", "mail") == levenshtein("mail", "email")

    @settings(max_examples=50, deadline=None)
    @given(st.text(max_size=8), st.text(max_size=8), st.text(max_size=8))
    def test_levenshtein_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    def test_identical_names_score_alpha(self):
        assert name_similarity("InstId", "instid") == DEFAULT_ALPHA

    def test_substring_rename_scores_high(self):
        assert name_similarity("email", "email_address") == DEFAULT_ALPHA - 1

    def test_unrelated_names_score_negative(self):
        assert name_similarity("users_email", "products_weight") < 0

    def test_normalized_similarity_bounds(self):
        assert normalized_similarity("abc", "abc") == 1.0
        assert 0.0 <= normalized_similarity("abc", "xyz") <= 1.0


# ---------------------------------------------------------------------- value correspondence
@pytest.fixture()
def simple_pair():
    source = make_schema("src", {"A": {"x": T.INT, "y": T.STRING}})
    target = make_schema("tgt", {"B": {"x": T.INT, "z": T.STRING}})
    return source, target


class TestValueCorrespondence:
    def test_image_and_dropped(self, simple_pair):
        source, target = simple_pair
        vc = ValueCorrespondence(source, target, {Attribute("A", "x"): {Attribute("B", "x")}})
        assert vc.image(Attribute("A", "x")) == frozenset({Attribute("B", "x")})
        assert not vc.is_mapped(Attribute("A", "y"))
        assert Attribute("A", "y") in vc.dropped_attributes()

    def test_unknown_source_attribute_rejected(self, simple_pair):
        source, target = simple_pair
        with pytest.raises(ValueError):
            ValueCorrespondence(source, target, {Attribute("A", "nope"): set()})

    def test_unknown_target_attribute_rejected(self, simple_pair):
        source, target = simple_pair
        with pytest.raises(ValueError):
            ValueCorrespondence(
                source, target, {Attribute("A", "x"): {Attribute("B", "nope")}}
            )

    def test_inverse(self, simple_pair):
        source, target = simple_pair
        vc = ValueCorrespondence(
            source,
            target,
            {Attribute("A", "x"): {Attribute("B", "x")}, Attribute("A", "y"): {Attribute("B", "z")}},
        )
        inverse = vc.inverse()
        assert inverse[Attribute("B", "z")] == {Attribute("A", "y")}

    def test_equality_and_hash(self, simple_pair):
        source, target = simple_pair
        vc1 = ValueCorrespondence(source, target, {Attribute("A", "x"): {Attribute("B", "x")}})
        vc2 = ValueCorrespondence(source, target, {Attribute("A", "x"): {Attribute("B", "x")}})
        assert vc1 == vc2
        assert len({vc1, vc2}) == 1

    def test_identity_correspondence(self, course_source_schema, course_target_schema):
        vc = identity_correspondence(course_source_schema, course_target_schema)
        assert vc.image(Attribute("Instructor", "IName")) == frozenset(
            {Attribute("Instructor", "IName")}
        )
        # IPic has no same-named target attribute and is dropped
        assert not vc.is_mapped(Attribute("Instructor", "IPic"))


# ----------------------------------------------------------------------------- enumeration
class TestEnumeration:
    def test_compatible_targets_filters_types_and_sorts(self, course_source_schema, course_target_schema):
        targets = compatible_targets(
            course_source_schema, course_target_schema, Attribute("Instructor", "IPic")
        )
        names = [attr for attr, _ in targets]
        assert names[0] == Attribute("Picture", "Pic")
        assert all(course_target_schema.type_of(a) == T.BINARY for a, _ in targets)

    def test_first_vc_of_running_example(self, course_program, course_target_schema):
        enumerator = ValueCorrespondenceEnumerator(course_program, course_target_schema)
        first = enumerator.next_value_corr()
        vc = first.correspondence
        assert vc.image(Attribute("Instructor", "IPic")) == frozenset({Attribute("Picture", "Pic")})
        assert vc.image(Attribute("TA", "TPic")) == frozenset({Attribute("Picture", "Pic")})
        assert vc.image(Attribute("Instructor", "InstId")) == frozenset(
            {Attribute("Instructor", "InstId")}
        )

    def test_enumeration_is_non_increasing_in_weight(self, course_program, course_target_schema):
        enumerator = FactoredVcEnumerator(course_program, course_target_schema)
        weights = []
        for candidate, _ in zip(enumerator.candidates(), range(15)):
            weights.append(candidate.weight)
        assert weights == sorted(weights, reverse=True)

    def test_enumeration_never_repeats(self, course_program, course_target_schema):
        enumerator = FactoredVcEnumerator(course_program, course_target_schema)
        seen = set()
        for candidate, _ in zip(enumerator.candidates(), range(25)):
            key = candidate.correspondence.key()
            assert key not in seen
            seen.add(key)

    def test_queried_attribute_without_target_raises(self):
        source = make_schema("s", {"A": {"x": T.BINARY}})
        target = make_schema("t", {"B": {"y": T.INT}})
        pb = ProgramBuilder("p", source)
        pb.query("q", [("v", "binary")], select(["A.x"], "A", eq("A.x", "$v")))
        program = pb.build()
        with pytest.raises(VcEnumerationError):
            ValueCorrespondenceEnumerator(program, target)

    def test_engines_agree_on_optimum_weight(self):
        """On a tiny schema, the factored engine and the full MaxSAT encoding agree."""
        source = make_schema("s", {"A": {"id": T.INT, "name": T.STRING}})
        target = make_schema(
            "t", {"B": {"id": T.INT, "name": T.STRING, "title": T.STRING}}
        )
        pb = ProgramBuilder("p", source)
        pb.update("add", [("id", "int"), ("name", "str")],
                  insert("A", {"A.id": "$id", "A.name": "$name"}))
        pb.query("get", [("id", "int")], select(["A.name"], "A", eq("A.id", "$id")))
        program = pb.build()

        factored = FactoredVcEnumerator(program, target)
        maxsat = MaxSatVcEnumerator(program, target)
        best_factored = next(factored.candidates())
        best_maxsat = next(maxsat.candidates())
        assert best_factored.correspondence == best_maxsat.correspondence
        # objective values are reported on different scales (satisfied weight vs
        # factored reward), but both must map name -> name and id -> id
        assert best_factored.correspondence.image(Attribute("A", "name")) == frozenset(
            {Attribute("B", "name")}
        )

    def test_auto_engine_selects_maxsat_for_tiny_schemas(self):
        source = make_schema("s", {"A": {"x": T.INT}})
        target = make_schema("t", {"B": {"x": T.INT}})
        pb = ProgramBuilder("p", source)
        pb.query("q", [("v", "int")], select(["A.x"], "A", eq("A.x", "$v")))
        enumerator = ValueCorrespondenceEnumerator(pb.build(), target, engine="auto")
        assert enumerator.engine_name == "maxsat"

    def test_auto_engine_selects_factored_for_larger_schemas(
        self, course_program, course_target_schema
    ):
        enumerator = ValueCorrespondenceEnumerator(
            course_program, course_target_schema, engine="auto"
        )
        assert enumerator.engine_name == "factored"

    def test_unknown_engine_rejected(self, course_program, course_target_schema):
        with pytest.raises(ValueError):
            ValueCorrespondenceEnumerator(course_program, course_target_schema, engine="magic")

    def test_max_fanout_limits_image_size(self, course_program, course_target_schema):
        enumerator = FactoredVcEnumerator(course_program, course_target_schema, max_fanout=1)
        for candidate, _ in zip(enumerator.candidates(), range(20)):
            for _, image in candidate.correspondence.items():
                assert len(image) <= 1
