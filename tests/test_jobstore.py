"""Job-store hardening: versioned specs, lease journal replay, compaction.

The lifecycle/resume behaviour is covered from the service side in
tests/test_service.py (TestJobStoreAndResume); this module exercises the
store as a standalone durability layer — the distributed-execution additions
of the 2.1 surface:

* format-versioned ``spec`` fields (legacy bare-base64 decodes, foreign
  versions and corrupt payloads fail loudly with
  :class:`~repro.jobstore.JobStoreFormatError`);
* lease-journal records as annotations (they never change lifecycle
  standing, survive torn tails, and surface as ``StoredJob.lease``);
* :meth:`~repro.jobstore.JobStore.compact` — settled generations fold to
  one line, open leases on unsettled jobs survive, torn tails die.
"""

from __future__ import annotations

import base64
import json

import pytest

from repro.jobstore import (
    LEASE_RECORD_TYPES,
    SPEC_FORMAT_VERSION,
    JobStore,
    JobStoreFormatError,
    StoredJob,
    decode_job,
    encode_job,
)


def _write_lines(path, lines):
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line if line.endswith("\n") or not line else line + "\n")


def _read_records(path):
    with open(path, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


# ------------------------------------------------------------ spec versioning
class TestSpecFormat:
    def test_round_trip_carries_format_version(self):
        spec = encode_job({"name": "j1", "priority": 3})
        assert spec.startswith(f"{SPEC_FORMAT_VERSION}:")
        assert decode_job(spec) == {"name": "j1", "priority": 3}

    def test_legacy_bare_base64_decodes_as_v1(self):
        # Pre-2.1 stores wrote the pickle unprefixed; the colon never occurs
        # in the base64 alphabet, so the legacy shape is unambiguous.
        legacy = encode_job(("legacy", 42)).split(":", 1)[1]
        assert ":" not in legacy
        assert decode_job(legacy) == ("legacy", 42)

    def test_unsupported_future_version_fails_loudly(self):
        payload = encode_job("x").split(":", 1)[1]
        with pytest.raises(JobStoreFormatError, match="v99"):
            decode_job(f"99:{payload}")

    def test_corrupt_payload_fails_loudly(self):
        with pytest.raises(JobStoreFormatError, match="corrupt"):
            decode_job(f"{SPEC_FORMAT_VERSION}:!!!not-base64!!!")

    def test_truncated_pickle_fails_loudly(self):
        # Valid base64 of an invalid pickle: the damage is inside the payload.
        truncated = base64.b64encode(b"\x80\x04").decode("ascii")
        with pytest.raises(JobStoreFormatError, match="corrupt"):
            decode_job(f"{SPEC_FORMAT_VERSION}:{truncated}")


# ---------------------------------------------------------- lease replay
class TestLeaseJournalReplay:
    def test_lease_records_annotate_without_changing_standing(self, tmp_path):
        store = JobStore(tmp_path / "batch.jsonl")
        store.append({"type": "submitted", "job": "j1", "status": "pending", "spec": encode_job("s")})
        store.record_leased("j1", "w0", expiry=123.0)
        jobs = JobStore.load(store.path)
        assert jobs["j1"].status == "pending"  # still the lifecycle standing
        assert jobs["j1"].lease == {
            "type": "leased",
            "job": "j1",
            "worker": "w0",
            "expiry": 123.0,
        }

    def test_latest_lease_record_wins(self, tmp_path):
        store = JobStore(tmp_path / "batch.jsonl")
        store.append({"type": "submitted", "job": "j1", "status": "pending"})
        store.record_leased("j1", "w0", expiry=10.0)
        store.record_lease_heartbeat("j1", "w0", expiry=20.0)
        store.record_lease_released("j1", "w0", outcome="lost")
        lease = JobStore.load(store.path)["j1"].lease
        assert lease["type"] == "released" and lease["outcome"] == "lost"

    def test_trailing_lease_line_does_not_resurrect_settled_job(self, tmp_path):
        store = JobStore(tmp_path / "batch.jsonl")
        store.append({"type": "submitted", "job": "j1", "status": "pending"})
        store.append({"type": "settled", "job": "j1", "status": "done"})
        store.record_leased("j1", "straggler", expiry=999.0)
        entry = JobStore.load(store.path)["j1"]
        assert entry.settled and entry.status == "done"

    def test_torn_tail_with_interleaved_leases(self, tmp_path):
        """A mid-append crash tears only the final line; intact lease and
        lifecycle records on either side of job boundaries all replay."""
        path = tmp_path / "torn.jsonl"
        records = [
            {"type": "submitted", "job": "a", "status": "pending", "spec": encode_job("a")},
            {"type": "submitted", "job": "b", "status": "pending", "spec": encode_job("b")},
            {"type": "leased", "job": "a", "worker": "w0", "expiry": 5.0},
            {"type": "running", "job": "a", "status": "running"},
            {"type": "leased", "job": "b", "worker": "w1", "expiry": 5.0},
            {"type": "lease_heartbeat", "job": "a", "worker": "w0", "expiry": 9.0},
            {"type": "released", "job": "a", "worker": "w0", "outcome": "done"},
            {"type": "settled", "job": "a", "status": "done"},
        ]
        lines = [json.dumps(r) for r in records]
        lines.append('{"type": "released", "job": "b", "worker": "w1", "outc')  # torn
        _write_lines(path, lines)

        jobs = JobStore.load(path)
        assert jobs["a"].settled
        assert jobs["a"].lease["outcome"] == "done"
        # b: the torn release never happened — its lease is still the grant.
        assert jobs["b"].status == "running" or jobs["b"].status == "pending"
        assert jobs["b"].lease == {"type": "leased", "job": "b", "worker": "w1", "expiry": 5.0}
        assert jobs["b"].resumable

    def test_fleet_journal_protocol_matches_store_api(self, tmp_path):
        """The RemoteFleet journals through append(record) duck-typing; the
        record shapes it emits are exactly the store's lease vocabulary."""
        store = JobStore(tmp_path / "journal.jsonl", fsync=False)
        for kind in sorted(LEASE_RECORD_TYPES):
            if kind == "released":
                store.record_lease_released("j", "w", outcome="done")
            elif kind == "leased":
                store.record_leased("j", "w", expiry=1.0)
            else:
                store.record_lease_heartbeat("j", "w", expiry=2.0)
        types = {r["type"] for r in _read_records(store.path)}
        assert types == set(LEASE_RECORD_TYPES)


# ------------------------------------------------------------- compaction
class TestCompaction:
    def test_settled_jobs_fold_to_terminal_record(self, tmp_path):
        store = JobStore(tmp_path / "batch.jsonl", fsync=False)
        store.append({"type": "submitted", "job": "j1", "status": "pending", "spec": encode_job("s")})
        store.append({"type": "running", "job": "j1", "status": "running"})
        store.record_leased("j1", "w0", expiry=1.0)
        store.record_lease_released("j1", "w0", outcome="done")
        store.append({"type": "settled", "job": "j1", "status": "done", "answer": 7})

        removed = store.compact()
        assert removed == 4
        records = _read_records(store.path)
        assert records == [{"type": "settled", "job": "j1", "status": "done", "answer": 7}]
        assert JobStore.load(store.path)["j1"].settled

    def test_unsettled_job_keeps_spec_lifecycle_and_open_lease(self, tmp_path):
        store = JobStore(tmp_path / "batch.jsonl", fsync=False)
        spec = encode_job("rebuild-me")
        store.append({"type": "submitted", "job": "j1", "status": "pending", "spec": spec})
        store.append({"type": "running", "job": "j1", "status": "running"})
        store.record_leased("j1", "w0", expiry=2.0)
        store.record_lease_heartbeat("j1", "w0", expiry=9.0)

        store.compact()
        before = JobStore.load(store.path)["j1"]
        assert before.status == "running"
        assert before.spec == spec
        # The open lease is evidence of in-flight work — it survives.
        assert before.lease["type"] == "lease_heartbeat"
        assert before.resumable

    def test_compaction_is_standing_preserving(self, tmp_path):
        """load() before == load() after, for a mixed store."""
        store = JobStore(tmp_path / "mixed.jsonl", fsync=False)
        store.append({"type": "submitted", "job": "done-job", "status": "pending", "spec": encode_job(1)})
        store.append({"type": "settled", "job": "done-job", "status": "done"})
        store.append({"type": "submitted", "job": "live-job", "status": "pending", "spec": encode_job(2)})
        store.append({"type": "running", "job": "live-job", "status": "running"})
        store.append({"type": "submitted", "job": "queued-job", "status": "pending", "spec": encode_job(3)})

        before = JobStore.load(store.path)
        store.compact()
        after = JobStore.load(store.path)
        assert set(before) == set(after)
        for name in before:
            assert before[name].status == after[name].status, name
            if not before[name].settled:
                # Settled jobs fold to the terminal snapshot — their spec is
                # history (resume never reruns a settled job).
                assert before[name].spec == after[name].spec, name

    def test_torn_tail_dies_in_compaction(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        _write_lines(
            path,
            [
                json.dumps({"type": "submitted", "job": "j1", "status": "pending", "spec": encode_job("s")}),
                '{"type": "settled", "job": "j1", "sta',  # torn
            ],
        )
        store = JobStore(path, fsync=False)
        store.compact()
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                json.loads(line)  # every surviving line parses

    def test_compact_missing_file_is_a_noop(self, tmp_path):
        assert JobStore(tmp_path / "never-written.jsonl").compact() == 0

    def test_released_lease_on_unsettled_job_is_dropped(self, tmp_path):
        # A released lease is history, not in-flight evidence.
        store = JobStore(tmp_path / "batch.jsonl", fsync=False)
        store.append({"type": "submitted", "job": "j1", "status": "pending", "spec": encode_job("s")})
        store.record_leased("j1", "w0", expiry=1.0)
        store.record_lease_released("j1", "w0", outcome="lost")
        store.compact()
        entry = JobStore.load(store.path)["j1"]
        assert entry.lease is None
        assert entry.resumable


# ------------------------------------------------------------- fsync modes
class TestDurabilityModes:
    @pytest.mark.parametrize("fsync", [True, False])
    def test_append_visible_in_both_modes(self, tmp_path, fsync):
        store = JobStore(tmp_path / f"fsync-{fsync}.jsonl", fsync=fsync)
        store.append({"type": "submitted", "job": "j1", "status": "pending"})
        assert JobStore.load(store.path)["j1"].status == "pending"

    def test_stored_job_defaults(self):
        entry = StoredJob("bare")
        assert entry.status == "pending"
        assert not entry.settled
        assert not entry.resumable  # no spec to rebuild from
        assert entry.lease is None
