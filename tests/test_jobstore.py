"""Job-store hardening: versioned specs, lease journal replay, compaction.

The lifecycle/resume behaviour is covered from the service side in
tests/test_service.py (TestJobStoreAndResume); this module exercises the
store as a standalone durability layer — the distributed-execution additions
of the 2.1 surface:

* format-versioned ``spec`` fields (legacy bare-base64 decodes, foreign
  versions and corrupt payloads fail loudly with
  :class:`~repro.jobstore.JobStoreFormatError`);
* lease-journal records as annotations (they never change lifecycle
  standing, survive torn tails, and surface as ``StoredJob.lease``);
* :meth:`~repro.jobstore.JobStore.compact` — settled generations fold to
  one line, open leases on unsettled jobs survive, torn tails die.
"""

from __future__ import annotations

import base64
import json
import os

import pytest

from repro.jobstore import (
    LEASE_RECORD_TYPES,
    SPEC_FORMAT_VERSION,
    JobStore,
    JobStoreFormatError,
    SQLiteJobStore,
    StoredJob,
    decode_job,
    encode_job,
    migrate_jsonl_to_sqlite,
    open_job_store,
)


def _write_lines(path, lines):
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line if line.endswith("\n") or not line else line + "\n")


def _read_records(path):
    with open(path, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


# ------------------------------------------------------------ spec versioning
class TestSpecFormat:
    def test_round_trip_carries_format_version(self):
        spec = encode_job({"name": "j1", "priority": 3})
        assert spec.startswith(f"{SPEC_FORMAT_VERSION}:")
        assert decode_job(spec) == {"name": "j1", "priority": 3}

    def test_legacy_bare_base64_decodes_as_v1(self):
        # Pre-2.1 stores wrote the pickle unprefixed; the colon never occurs
        # in the base64 alphabet, so the legacy shape is unambiguous.
        legacy = encode_job(("legacy", 42)).split(":", 1)[1]
        assert ":" not in legacy
        assert decode_job(legacy) == ("legacy", 42)

    def test_unsupported_future_version_fails_loudly(self):
        payload = encode_job("x").split(":", 1)[1]
        with pytest.raises(JobStoreFormatError, match="v99"):
            decode_job(f"99:{payload}")

    def test_corrupt_payload_fails_loudly(self):
        with pytest.raises(JobStoreFormatError, match="corrupt"):
            decode_job(f"{SPEC_FORMAT_VERSION}:!!!not-base64!!!")

    def test_truncated_pickle_fails_loudly(self):
        # Valid base64 of an invalid pickle: the damage is inside the payload.
        truncated = base64.b64encode(b"\x80\x04").decode("ascii")
        with pytest.raises(JobStoreFormatError, match="corrupt"):
            decode_job(f"{SPEC_FORMAT_VERSION}:{truncated}")


# ---------------------------------------------------------- lease replay
class TestLeaseJournalReplay:
    def test_lease_records_annotate_without_changing_standing(self, tmp_path):
        store = JobStore(tmp_path / "batch.jsonl")
        store.append({"type": "submitted", "job": "j1", "status": "pending", "spec": encode_job("s")})
        store.record_leased("j1", "w0", expiry=123.0)
        jobs = JobStore.load(store.path)
        assert jobs["j1"].status == "pending"  # still the lifecycle standing
        assert jobs["j1"].lease == {
            "type": "leased",
            "job": "j1",
            "worker": "w0",
            "expiry": 123.0,
        }

    def test_latest_lease_record_wins(self, tmp_path):
        store = JobStore(tmp_path / "batch.jsonl")
        store.append({"type": "submitted", "job": "j1", "status": "pending"})
        store.record_leased("j1", "w0", expiry=10.0)
        store.record_lease_heartbeat("j1", "w0", expiry=20.0)
        store.record_lease_released("j1", "w0", outcome="lost")
        lease = JobStore.load(store.path)["j1"].lease
        assert lease["type"] == "released" and lease["outcome"] == "lost"

    def test_trailing_lease_line_does_not_resurrect_settled_job(self, tmp_path):
        store = JobStore(tmp_path / "batch.jsonl")
        store.append({"type": "submitted", "job": "j1", "status": "pending"})
        store.append({"type": "settled", "job": "j1", "status": "done"})
        store.record_leased("j1", "straggler", expiry=999.0)
        entry = JobStore.load(store.path)["j1"]
        assert entry.settled and entry.status == "done"

    def test_torn_tail_with_interleaved_leases(self, tmp_path):
        """A mid-append crash tears only the final line; intact lease and
        lifecycle records on either side of job boundaries all replay."""
        path = tmp_path / "torn.jsonl"
        records = [
            {"type": "submitted", "job": "a", "status": "pending", "spec": encode_job("a")},
            {"type": "submitted", "job": "b", "status": "pending", "spec": encode_job("b")},
            {"type": "leased", "job": "a", "worker": "w0", "expiry": 5.0},
            {"type": "running", "job": "a", "status": "running"},
            {"type": "leased", "job": "b", "worker": "w1", "expiry": 5.0},
            {"type": "lease_heartbeat", "job": "a", "worker": "w0", "expiry": 9.0},
            {"type": "released", "job": "a", "worker": "w0", "outcome": "done"},
            {"type": "settled", "job": "a", "status": "done"},
        ]
        lines = [json.dumps(r) for r in records]
        lines.append('{"type": "released", "job": "b", "worker": "w1", "outc')  # torn
        _write_lines(path, lines)

        jobs = JobStore.load(path)
        assert jobs["a"].settled
        assert jobs["a"].lease["outcome"] == "done"
        # b: the torn release never happened — its lease is still the grant.
        assert jobs["b"].status == "running" or jobs["b"].status == "pending"
        assert jobs["b"].lease == {"type": "leased", "job": "b", "worker": "w1", "expiry": 5.0}
        assert jobs["b"].resumable

    def test_fleet_journal_protocol_matches_store_api(self, tmp_path):
        """The RemoteFleet journals through append(record) duck-typing; the
        record shapes it emits are exactly the store's lease vocabulary."""
        store = JobStore(tmp_path / "journal.jsonl", fsync=False)
        for kind in sorted(LEASE_RECORD_TYPES):
            if kind == "released":
                store.record_lease_released("j", "w", outcome="done")
            elif kind == "leased":
                store.record_leased("j", "w", expiry=1.0)
            else:
                store.record_lease_heartbeat("j", "w", expiry=2.0)
        types = {r["type"] for r in _read_records(store.path)}
        assert types == set(LEASE_RECORD_TYPES)


# ------------------------------------------------------------- compaction
class TestCompaction:
    def test_settled_jobs_fold_to_terminal_record(self, tmp_path):
        store = JobStore(tmp_path / "batch.jsonl", fsync=False)
        store.append({"type": "submitted", "job": "j1", "status": "pending", "spec": encode_job("s")})
        store.append({"type": "running", "job": "j1", "status": "running"})
        store.record_leased("j1", "w0", expiry=1.0)
        store.record_lease_released("j1", "w0", outcome="done")
        store.append({"type": "settled", "job": "j1", "status": "done", "answer": 7})

        removed = store.compact()
        assert removed == 4
        records = _read_records(store.path)
        assert records == [{"type": "settled", "job": "j1", "status": "done", "answer": 7}]
        assert JobStore.load(store.path)["j1"].settled

    def test_unsettled_job_keeps_spec_lifecycle_and_open_lease(self, tmp_path):
        store = JobStore(tmp_path / "batch.jsonl", fsync=False)
        spec = encode_job("rebuild-me")
        store.append({"type": "submitted", "job": "j1", "status": "pending", "spec": spec})
        store.append({"type": "running", "job": "j1", "status": "running"})
        store.record_leased("j1", "w0", expiry=2.0)
        store.record_lease_heartbeat("j1", "w0", expiry=9.0)

        store.compact()
        before = JobStore.load(store.path)["j1"]
        assert before.status == "running"
        assert before.spec == spec
        # The open lease is evidence of in-flight work — it survives.
        assert before.lease["type"] == "lease_heartbeat"
        assert before.resumable

    def test_compaction_is_standing_preserving(self, tmp_path):
        """load() before == load() after, for a mixed store."""
        store = JobStore(tmp_path / "mixed.jsonl", fsync=False)
        store.append({"type": "submitted", "job": "done-job", "status": "pending", "spec": encode_job(1)})
        store.append({"type": "settled", "job": "done-job", "status": "done"})
        store.append({"type": "submitted", "job": "live-job", "status": "pending", "spec": encode_job(2)})
        store.append({"type": "running", "job": "live-job", "status": "running"})
        store.append({"type": "submitted", "job": "queued-job", "status": "pending", "spec": encode_job(3)})

        before = JobStore.load(store.path)
        store.compact()
        after = JobStore.load(store.path)
        assert set(before) == set(after)
        for name in before:
            assert before[name].status == after[name].status, name
            if not before[name].settled:
                # Settled jobs fold to the terminal snapshot — their spec is
                # history (resume never reruns a settled job).
                assert before[name].spec == after[name].spec, name

    def test_torn_tail_dies_in_compaction(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        _write_lines(
            path,
            [
                json.dumps({"type": "submitted", "job": "j1", "status": "pending", "spec": encode_job("s")}),
                '{"type": "settled", "job": "j1", "sta',  # torn
            ],
        )
        store = JobStore(path, fsync=False)
        store.compact()
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                json.loads(line)  # every surviving line parses

    def test_compact_missing_file_is_a_noop(self, tmp_path):
        assert JobStore(tmp_path / "never-written.jsonl").compact() == 0

    def test_released_lease_on_unsettled_job_is_dropped(self, tmp_path):
        # A released lease is history, not in-flight evidence.
        store = JobStore(tmp_path / "batch.jsonl", fsync=False)
        store.append({"type": "submitted", "job": "j1", "status": "pending", "spec": encode_job("s")})
        store.record_leased("j1", "w0", expiry=1.0)
        store.record_lease_released("j1", "w0", outcome="lost")
        store.compact()
        entry = JobStore.load(store.path)["j1"]
        assert entry.lease is None
        assert entry.resumable


# ------------------------------------------------------------- fsync modes
class TestDurabilityModes:
    @pytest.mark.parametrize("fsync", [True, False])
    def test_append_visible_in_both_modes(self, tmp_path, fsync):
        store = JobStore(tmp_path / f"fsync-{fsync}.jsonl", fsync=fsync)
        store.append({"type": "submitted", "job": "j1", "status": "pending"})
        assert JobStore.load(store.path)["j1"].status == "pending"

    def test_stored_job_defaults(self):
        entry = StoredJob("bare")
        assert entry.status == "pending"
        assert not entry.settled
        assert not entry.resumable  # no spec to rebuild from
        assert entry.lease is None


# ------------------------------------------------ backend interchangeability
@pytest.fixture(params=["jsonl", "sqlite"])
def any_store(request, tmp_path):
    """One store of each backend; every parity test runs over both."""
    if request.param == "sqlite":
        store = SQLiteJobStore(tmp_path / "store.sqlite", fsync=False)
    else:
        store = JobStore(tmp_path / "store.jsonl", fsync=False)
    yield store
    store.close()


class TestBackendParity:
    """The two backends replay the same record vocabulary into the same
    standings — resume/lease-recovery/SSE code never branches on backend."""

    def test_lifecycle_replay_parity(self, any_store):
        store = any_store
        store.append(
            {
                "type": "submitted",
                "job": "j1",
                "status": "pending",
                "spec": encode_job("s1"),
                "tenant": "acme",
                "pin": {"source": "f" * 16, "target": "t"},
                "fingerprint": "f" * 16,
            }
        )
        store.append({"type": "running", "job": "j1", "status": "running"})
        store.append({"type": "submitted", "job": "j2", "status": "pending", "spec": encode_job("s2")})
        store.append({"type": "settled", "job": "j2", "status": "done"})
        jobs = store.load_jobs()
        assert jobs["j1"].status == "running" and jobs["j1"].resumable
        # Sticky identity fields survive later records that omit them.
        assert jobs["j1"].tenant == "acme"
        assert jobs["j1"].fingerprint == "f" * 16
        assert decode_job(jobs["j1"].spec) == "s1"
        assert jobs["j2"].settled and not jobs["j2"].resumable

    def test_lease_records_annotate_in_both_backends(self, any_store):
        store = any_store
        store.append({"type": "submitted", "job": "j1", "status": "pending"})
        store.record_leased("j1", "w0", expiry=10.0)
        store.record_lease_heartbeat("j1", "w0", expiry=20.0)
        entry = store.load_jobs()["j1"]
        assert entry.status == "pending"  # standing unchanged
        assert entry.lease["type"] == "lease_heartbeat" and entry.lease["expiry"] == 20.0

    def test_event_log_round_trip(self, any_store):
        store = any_store
        store.append({"type": "submitted", "job": "j1", "status": "pending"})
        for seq in (2, 1, 3):  # append order must not matter
            store.record_event("j1", seq, {"kind": "tick", "n": seq})
        assert store.load_events("j1") == [
            (1, {"kind": "tick", "n": 1}),
            (2, {"kind": "tick", "n": 2}),
            (3, {"kind": "tick", "n": 3}),
        ]
        assert store.load_events("j1", after=2) == [(3, {"kind": "tick", "n": 3})]
        assert store.last_event_seq("j1") == 3
        assert store.load_events("ghost") == [] and store.last_event_seq("ghost") == 0
        # Event records are annotations: standing is untouched.
        assert store.load_jobs()["j1"].status == "pending"

    def test_query_jobs_filters(self, any_store):
        store = any_store
        fp_a, fp_b = "a" * 16, "b" * 16
        store.append({"type": "submitted", "job": "j1", "status": "pending", "tenant": "acme", "fingerprint": fp_a})
        store.append({"type": "submitted", "job": "j2", "status": "pending", "tenant": "acme", "fingerprint": fp_b})
        store.append({"type": "settled", "job": "j2", "status": "done"})
        store.append({"type": "submitted", "job": "j3", "status": "pending", "tenant": "zed", "fingerprint": fp_a})
        names = lambda jobs: sorted(j.name for j in jobs)  # noqa: E731
        assert names(store.query_jobs(tenant="acme")) == ["j1", "j2"]
        assert names(store.query_jobs(status="pending")) == ["j1", "j3"]
        assert names(store.query_jobs(tenant="acme", status="done")) == ["j2"]
        assert names(store.query_jobs(fingerprint=fp_a)) == ["j1", "j3"]
        assert store.query_jobs(tenant="nobody") == []

    def test_compact_preserves_standings_drops_settled_residue(self, any_store):
        store = any_store
        store.append({"type": "submitted", "job": "done-job", "status": "pending", "spec": encode_job(1)})
        store.record_event("done-job", 1, {"kind": "solved"})
        store.record_leased("done-job", "w0", expiry=1.0)
        store.record_lease_released("done-job", "w0", outcome="done")
        store.append({"type": "settled", "job": "done-job", "status": "done"})
        store.append({"type": "submitted", "job": "live-job", "status": "pending", "spec": encode_job(2)})
        store.record_event("live-job", 1, {"kind": "vc_selected"})
        store.record_leased("live-job", "w1", expiry=99.0)

        before = store.load_jobs()
        removed = store.compact()
        assert removed > 0
        after = store.load_jobs()
        assert set(before) == set(after)
        for name in before:
            assert before[name].status == after[name].status, name
        # Settled residue is gone; live evidence survives.
        assert store.load_events("done-job") == []
        assert store.load_events("live-job") == [(1, {"kind": "vc_selected"})]
        assert after["done-job"].lease is None
        assert after["live-job"].lease["type"] == "leased"
        assert after["live-job"].resumable

    def test_degraded_annotation_creates_no_job(self, any_store):
        store = any_store
        store.record_degraded("fleet", "pool", "all workers lost", jobs=["a", "b"])
        assert store.load_jobs() == {}


class TestOpenJobStore:
    def test_scheme_selects_backend(self, tmp_path):
        sq = open_job_store(f"sqlite:{tmp_path / 'a'}")
        assert isinstance(sq, SQLiteJobStore) and sq.path == str(tmp_path / "a")
        sq.close()
        sq2 = open_job_store(f"sqlite://{tmp_path / 'b'}")
        assert isinstance(sq2, SQLiteJobStore) and sq2.path == str(tmp_path / "b")
        sq2.close()
        js = open_job_store(f"jsonl:{tmp_path / 'c'}")
        assert isinstance(js, JobStore)

    def test_extension_selects_sqlite(self, tmp_path):
        for suffix in (".sqlite", ".sqlite3", ".db"):
            store = open_job_store(tmp_path / f"jobs{suffix}")
            assert isinstance(store, SQLiteJobStore), suffix
            store.close()

    def test_plain_path_defaults_to_jsonl(self, tmp_path):
        assert isinstance(open_job_store(tmp_path / "jobs.jsonl"), JobStore)

    def test_explicit_scheme_beats_extension(self, tmp_path):
        # jsonl:…/jobs.db is a JSONL log whose name happens to end in .db.
        assert isinstance(open_job_store(f"jsonl:{tmp_path / 'jobs.db'}"), JobStore)

    def test_store_like_object_passes_through(self, tmp_path):
        store = JobStore(tmp_path / "jobs.jsonl")
        assert open_job_store(store) is store

    def test_fsync_flag_propagates(self, tmp_path):
        assert open_job_store(tmp_path / "a.jsonl", fsync=False).fsync is False


class TestJsonlToSqliteMigration:
    def test_migration_reaches_identical_standings_and_events(self, tmp_path):
        source = JobStore(tmp_path / "legacy.jsonl", fsync=False)
        source.append({"type": "submitted", "job": "j1", "status": "pending", "spec": encode_job("s1"), "tenant": "acme", "fingerprint": "a" * 16})
        source.append({"type": "running", "job": "j1", "status": "running"})
        source.record_leased("j1", "w0", expiry=7.0)
        source.record_event("j1", 1, {"kind": "vc_selected"})
        source.record_event("j1", 2, {"kind": "solved"})
        source.append({"type": "submitted", "job": "j2", "status": "pending", "spec": encode_job("s2")})
        source.append({"type": "settled", "job": "j2", "status": "done"})
        source.record_degraded("fleet", "inline", "test")
        with open(source.path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "settled", "job": "j1", "stat')  # torn tail

        migrated = migrate_jsonl_to_sqlite(source.path, tmp_path / "new.sqlite", fsync=False)
        try:
            before, after = source.load_jobs(), migrated.load_jobs()
            assert set(before) == set(after)
            for name in before:
                assert before[name].status == after[name].status, name
                assert before[name].spec == after[name].spec, name
                assert before[name].tenant == after[name].tenant, name
                assert before[name].fingerprint == after[name].fingerprint, name
                assert before[name].lease == after[name].lease, name
            assert migrated.load_events("j1") == source.load_events("j1")
            # The source log is left untouched.
            assert source.load_jobs()["j1"].status == "running"
        finally:
            migrated.close()


# -------------------------------------------- compaction vs concurrent readers
class TestCompactionConcurrency:
    """The 2.3 hardening: ``compact()`` must survive platforms where an open
    reader handle makes ``os.replace`` raise (Windows sharing semantics), and
    POSIX readers holding the old inode mid-iteration must finish cleanly."""

    def _seeded_store(self, tmp_path) -> JobStore:
        store = JobStore(tmp_path / "busy.jsonl", fsync=False)
        for index in range(20):
            name = f"j{index}"
            store.append({"type": "submitted", "job": name, "status": "pending", "spec": encode_job(index)})
            store.append({"type": "settled", "job": name, "status": "done"})
        return store

    def test_blocked_replace_is_retried(self, tmp_path, monkeypatch):
        store = self._seeded_store(tmp_path)
        import repro.jobstore.jsonl as jsonl_module

        real_replace = os.replace
        calls = []

        def flaky_replace(src, dst):
            calls.append(src)
            if len(calls) < 3:
                raise PermissionError("destination held open")
            real_replace(src, dst)

        monkeypatch.setattr(jsonl_module.os, "replace", flaky_replace)
        monkeypatch.setattr(jsonl_module.time, "sleep", lambda _s: None)
        assert store.compact() == 20  # one snapshot line per settled job
        assert len(calls) == 3
        assert all(entry.settled for entry in store.load_jobs().values())

    def test_permanently_blocked_replace_degrades_to_rewrite(self, tmp_path, monkeypatch):
        store = self._seeded_store(tmp_path)
        import repro.jobstore.jsonl as jsonl_module

        def always_blocked(_src, _dst):
            raise PermissionError("destination held open")

        monkeypatch.setattr(jsonl_module.os, "replace", always_blocked)
        monkeypatch.setattr(jsonl_module.time, "sleep", lambda _s: None)
        assert store.compact() == 20
        assert not os.path.exists(store.path + ".compact"), "swap file must not leak"
        jobs = store.load_jobs()
        assert len(jobs) == 20 and all(entry.settled for entry in jobs.values())

    def test_reader_mid_iteration_survives_compact(self, tmp_path):
        store = self._seeded_store(tmp_path)
        reader = JobStore._records(store.path)
        consumed = [next(reader) for _ in range(5)]  # holds the pre-compact inode
        assert store.compact() == 20
        consumed.extend(reader)  # the reader finishes its consistent old view
        assert len(consumed) == 40
        jobs: dict[str, StoredJob] = {}
        for record in consumed:
            jobs.setdefault(record["job"], StoredJob(record["job"])).absorb(record)
        assert all(entry.settled for entry in jobs.values())
        # And the post-compact file is itself consistent for new readers.
        assert all(entry.settled for entry in store.load_jobs().values())
