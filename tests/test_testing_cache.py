"""Tests for the incremental-testing subsystem (pool, source cache, parallel)."""

import pytest

from repro.core import Synthesizer, SynthesisConfig
from repro.equivalence import BoundedTester
from repro.lang.builder import ProgramBuilder, delete, eq, insert, select
from repro.testing_cache import CounterexamplePool, SourceOutputCache


def _people_variant(people_schema, *, wrong_delete=False, swap_columns=False):
    pb = ProgramBuilder("people_variant", people_schema)
    name_attr, age_attr = "Person.Name", "Person.Age"
    if swap_columns:
        name_attr, age_attr = age_attr, name_attr
    pb.update("addPerson", [("id", "int"), ("name", "str"), ("age", "int")],
              insert("Person", {"Person.PersonId": "$id", name_attr: "$name", age_attr: "$age"}))
    delete_pred = eq("Person.Name", "$id") if wrong_delete else eq("Person.PersonId", "$id")
    pb.update("deletePerson", [("id", "int")], delete("Person", "Person", delete_pred))
    pb.query("getPerson", [("id", "int")],
             select(["Person.Name", "Person.Age"], "Person", eq("Person.PersonId", "$id")))
    pb.query("findByName", [("name", "str")],
             select(["Person.PersonId"], "Person", eq("Person.Name", "$name")))
    return pb.build(validate=False)


# --------------------------------------------------------------------- source cache
class TestSourceOutputCache:
    def test_roundtrip_and_stats(self):
        cache = SourceOutputCache(max_entries=10)
        assert cache.get("p", ("s",)) is None
        cache.put("p", ("s",), ((1,),))
        assert cache.get("p", ("s",)) == ((1,),)
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_keys_are_per_program(self):
        cache = SourceOutputCache()
        cache.put("p1", ("s",), ((1,),))
        assert cache.get("p2", ("s",)) is None

    def test_lru_eviction_is_bounded(self):
        cache = SourceOutputCache(max_entries=2)
        cache.put("p", "a", 1)
        cache.put("p", "b", 2)
        cache.get("p", "a")  # refresh "a": "b" becomes the LRU entry
        cache.put("p", "c", 3)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.get("p", "b") is None
        assert cache.get("p", "a") == 1

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            SourceOutputCache(max_entries=0)


# ----------------------------------------------------------------------------- pool
class TestCounterexamplePool:
    def test_add_deduplicates(self):
        pool = CounterexamplePool()
        seq = (("f", (1,)),)
        assert pool.add(seq)
        assert not pool.add(seq)
        assert len(pool) == 1
        assert pool.stats.added == 1 and pool.stats.duplicates == 1

    def test_snapshot_orders_cheapest_first(self):
        pool = CounterexamplePool()
        long = (("f", (1,)), ("g", (2,)))
        short = (("g", (2,)),)
        pool.add(long)
        pool.add(short)
        assert pool.snapshot() == [short, long]

    def test_eviction_keeps_hitting_entries(self):
        pool = CounterexamplePool(max_size=2)
        keeper = (("f", (1,)),)
        pool.add(keeper)
        pool.add((("f", (2,)),))
        # A screening hit protects the entry from eviction.
        assert pool.screen("candidate", lambda c, s: s == keeper) == keeper
        pool.add((("f", (3,)),))
        assert len(pool) == 2
        assert keeper in pool
        assert pool.stats.evicted == 1

    def test_screen_budget_limits_executions(self):
        pool = CounterexamplePool()
        for i in range(5):
            pool.add((("f", (i,)),))
        executed = []
        pool.screen("candidate", lambda c, s: executed.append(s) or False, budget=2)
        assert len(executed) == 2
        assert pool.stats.hits == 0

    def test_merge_counts_new_entries(self):
        pool = CounterexamplePool()
        pool.add((("f", (1,)),))
        added = pool.merge([(("f", (1,)),), (("f", (2,)),)])
        assert added == 1 and len(pool) == 2

    def test_snapshot_sorts_once_per_mutation(self):
        """Regression: screening N candidates must not re-sort N times.

        The screening order is cached; only an ``add`` (new entry or
        eviction) or a screening hit — the events that change the sort key —
        may invalidate it.
        """
        pool = CounterexamplePool()
        for i in range(4):
            pool.add((("f", (i,)),))
        assert pool.stats.snapshot_sorts == 0  # sorting is lazy
        for _ in range(10):
            pool.screen("candidate", lambda c, s: False)
        assert pool.stats.snapshot_sorts == 1  # one sort serves all ten screens
        pool.add((("f", (99,)),))
        pool.screen("candidate", lambda c, s: False)
        assert pool.stats.snapshot_sorts == 2  # add() invalidated the order
        hit = (("f", (0,)),)
        assert pool.screen("candidate", lambda c, s: s == hit) == hit
        assert pool.stats.snapshot_sorts == 2  # the hit reused the cached order...
        pool.screen("candidate", lambda c, s: False)
        assert pool.stats.snapshot_sorts == 3  # ...but invalidated it for the next

    def test_screen_batch_matches_scalar_screen(self):
        """Batched screening returns the scalar path's first hit and stats."""
        sequences = [(("f", (i,)),) for i in range(20)]
        target = sequences[11]

        def differs(_candidate, sequence):
            return sequence == target

        def differs_batch(_candidate, chunk):
            for index, sequence in enumerate(chunk):
                if sequence == target:
                    return index
            return None

        scalar_pool, batch_pool = CounterexamplePool(), CounterexamplePool()
        for pool in (scalar_pool, batch_pool):
            for sequence in sequences:
                pool.add(sequence)
        assert scalar_pool.screen("c", differs) == target
        assert batch_pool.screen_batch("c", differs_batch) == target
        assert batch_pool.stats.hits == scalar_pool.stats.hits == 1
        assert (
            batch_pool.stats.sequences_screened == scalar_pool.stats.sequences_screened
        )
        assert batch_pool.stats.sequences_screened_batched >= 12
        assert batch_pool.stats.screening_batches >= 1
        # Budget cuts both paths at the same point (the earlier hit moved the
        # target ahead in both orders, so both find it again within budget).
        assert scalar_pool.screen("c", differs, budget=5) == batch_pool.screen_batch(
            "c", differs_batch, budget=5
        )
        assert (
            batch_pool.stats.sequences_screened == scalar_pool.stats.sequences_screened
        )
        never = lambda _c, _s: False  # noqa: E731
        never_batch = lambda _c, _chunk: None  # noqa: E731
        assert scalar_pool.screen("c", never, budget=5) is None
        assert batch_pool.screen_batch("c", never_batch, budget=5) is None
        assert (
            batch_pool.stats.sequences_screened == scalar_pool.stats.sequences_screened
        )


# ------------------------------------------------------------------ tester integration
class TestTesterPoolIntegration:
    def test_pool_hit_skips_full_enumeration(self, people_program, people_schema):
        pool = CounterexamplePool()
        tester = BoundedTester(people_program, pool=pool)
        first = tester.find_failing_input(_people_variant(people_schema, wrong_delete=True))
        assert first is not None
        assert tester.stats.full_enumerations == 1
        assert len(pool) == 1
        # A second candidate with the same bug dies in screening.
        second = tester.find_failing_input(_people_variant(people_schema, wrong_delete=True))
        assert second == first
        assert tester.stats.full_enumerations == 1
        assert pool.stats.hits == 1

    def test_pool_miss_falls_back_to_full_enumeration(self, people_program, people_schema):
        pool = CounterexamplePool()
        tester = BoundedTester(people_program, pool=pool)
        tester.find_failing_input(_people_variant(people_schema, wrong_delete=True))
        # An equivalent candidate passes screening and the full enumeration.
        assert tester.check_equivalent(_people_variant(people_schema))
        assert tester.stats.full_enumerations == 2

    def test_empty_shared_cache_is_adopted(self, people_program, people_schema):
        # Regression: an *empty* shared cache is falsy and was once discarded
        # by an ``or`` default, silently disabling cross-tester sharing.
        shared = SourceOutputCache()
        tester = BoundedTester(people_program, source_cache=shared)
        tester.check_equivalent(_people_variant(people_schema))
        assert len(shared) > 0

    def test_shared_cache_serves_second_tester(self, people_program, people_schema):
        shared = SourceOutputCache()
        first = BoundedTester(people_program, source_cache=shared)
        first.check_equivalent(_people_variant(people_schema))
        second = BoundedTester(people_program, source_cache=shared)
        second.check_equivalent(_people_variant(people_schema))
        assert second.stats.source_cache_hits > 0


# --------------------------------------------------------------- synthesizer wiring
def _identity_config(**overrides):
    config = SynthesisConfig()
    config.verifier_random_sequences = 10
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


class TestSynthesizerCacheWiring:
    def test_result_carries_cache_stats(self, people_program, people_schema):
        result = Synthesizer(_identity_config()).synthesize(people_program, people_schema)
        assert result.succeeded
        assert result.cache.candidates_fully_tested >= 1
        assert result.cache.source_cache_entries > 0

    def test_pool_flag_disables_screening(self, people_program, people_schema):
        result = Synthesizer(_identity_config(counterexample_pool=False)).synthesize(
            people_program, people_schema
        )
        assert result.succeeded
        assert result.cache.candidates_screened == 0
        assert result.cache.pool_hits == 0


# ------------------------------------------------------------------------- parallel
class TestParallelFrontend:
    def test_parallel_matches_sequential_outcome(self, people_program, people_schema):
        sequential = Synthesizer(_identity_config()).synthesize(people_program, people_schema)
        parallel = Synthesizer(_identity_config(parallel_workers=2)).synthesize(
            people_program, people_schema
        )
        assert parallel.parallel_workers_used == 2
        assert parallel.succeeded == sequential.succeeded
        assert parallel.value_correspondences_tried >= 1
        assert parallel.attempts, "attempts must be merged back from workers"

    def test_parallel_respects_vc_budget(self, people_program, people_schema):
        config = _identity_config(parallel_workers=2, max_value_correspondences=3)
        result = Synthesizer(config).synthesize(people_program, people_schema)
        assert result.value_correspondences_tried <= 3
