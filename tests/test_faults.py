"""Chaos suite: fault injection, unified retry policies, and the ladder.

Layers under test:

* :mod:`repro.exec.faults` — plan serialization, matching and firing
  arithmetic, deterministic replay from (seed, plan) alone;
* :mod:`repro.exec.policy` — jittered-backoff determinism and bounds;
* the fleet under injected chaos (in-thread workers over real sockets):
  kill-mid-result with exactly-once settlement, corrupted result frames,
  heartbeat loss via ``REPRO_FAULT_PLAN`` in subprocess workers, and
  poison-task quarantine;
* the graceful-degradation ladder — scheduler (fleet -> pool), the
  ``migrate`` front-end (identical results + ``ExecutionDegraded``
  events), and the service (journalled ``degraded`` records, full
  fleet -> pool -> inline walk);
* the CI chaos smoke (``REPRO_CHAOS_SMOKE=1``): a seeded fault-plan
  matrix over real subprocess workers, trajectories pinned against the
  undisturbed sequential baseline.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from remote_tasks import echo_task, sleepy_task
from repro.api import (
    ExecutionDegraded,
    FaultPlan,
    FaultSpec,
    MigrationJob,
    MigrationService,
    RemoteFleet,
    ResilienceConfig,
    RetryPolicy,
    SynthesisConfig,
    TimeoutPolicy,
)
from repro.core.session import SynthesisSession
from repro.exec import ExecutorUnavailable, TaskState, WorkScheduler, faults, wire
from repro.jobstore import JobStore
from repro.worker import WorkerAgent
from repro.workloads import get_benchmark

ROOT = Path(__file__).resolve().parents[1]
WORKER_ENV = {
    **os.environ,
    "PYTHONPATH": os.pathsep.join([str(ROOT / "src"), str(ROOT / "tests")]),
}

#: A dead address: nothing listens on the discard port in the test env.
DEAD_FLEET = ("127.0.0.1:9",)


# ------------------------------------------------------------------ plans
class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            seed=42,
            faults=(
                FaultSpec(site="wire.send", kind="drop", match={"type": "result"}),
                FaultSpec(site="worker.task", kind="slow", seconds=0.5, count=0),
                FaultSpec(
                    site="wire.send", kind="corrupt", after=3, offset=12, mask=0x40
                ),
                FaultSpec(site="wire.send", kind="truncate", cut=9),
            ),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_unknown_site_or_kind_rejected(self):
        with pytest.raises(ValueError, match="site"):
            FaultSpec(site="wire.nope", kind="drop")
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(site="wire.send", kind="explode")

    def test_match_is_subset_semantics(self):
        spec = FaultSpec(site="wire.send", kind="drop", match={"type": "result"})
        assert spec.matches({"type": "result", "task": 3})
        assert not spec.matches({"type": "heartbeat"})
        assert not spec.matches(None)
        unconditional = FaultSpec(site="wire.send", kind="drop")
        assert unconditional.matches(None)

    def test_after_and_count_arithmetic(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(site="worker.task", kind="drop", after=2, count=2),
            )
        )
        injector = faults.FaultInjector(plan)
        outcomes = []
        for index in range(6):
            try:
                injector.before_task({"task": index})
                outcomes.append("ran")
            except RuntimeError:
                outcomes.append("dropped")
        # Two matching passes let through, two firings, then exhausted.
        assert outcomes == ["ran", "ran", "dropped", "dropped", "ran", "ran"]
        assert injector.faults_injected == 2
        assert [site for site, _, _ in injector.fired] == ["worker.task"] * 2

    def test_activation_scoping(self):
        assert faults.active() is None
        plan = FaultPlan(faults=(FaultSpec(site="wire.recv", kind="delay"),))
        with faults.activate(plan) as injector:
            assert faults.active() is injector
        assert faults.active() is None


class TestRetryPolicy:
    def test_backoff_is_deterministic_per_seed(self):
        policy = RetryPolicy(seed=7)
        first = [policy.backoff_delay(n, policy.rng()) for n in range(1, 5)]
        second = [policy.backoff_delay(n, policy.rng()) for n in range(1, 5)]
        assert first == second

    def test_backoff_disabled_and_bounded(self):
        assert RetryPolicy(backoff_base=0.0).backoff_delay(3) == 0.0
        policy = RetryPolicy(
            backoff_base=0.1, backoff_factor=10.0, backoff_max=1.0, backoff_jitter=0.5
        )
        for attempt in range(1, 8):
            delay = policy.backoff_delay(attempt, policy.rng())
            assert 0.0 <= delay <= 1.0 * 1.5

    def test_effective_heartbeat_jitter(self):
        # jitter=0 keeps the configured interval exactly (the handshake pin).
        assert wire.effective_heartbeat(0.5, 0.0, "w0") == 0.5
        spread = {
            wire.effective_heartbeat(1.0, 0.25, f"worker-{i}") for i in range(8)
        }
        assert len(spread) > 1, "jitter must de-synchronize distinct workers"
        for value in spread:
            assert 0.75 <= value <= 1.25
        # Deterministic per worker id: the coordinator and the worker agree.
        assert wire.effective_heartbeat(1.0, 0.25, "worker-3") == wire.effective_heartbeat(
            1.0, 0.25, "worker-3"
        )


# ------------------------------------------------------------ fleet chaos
@pytest.fixture()
def chaos_fleet():
    """A listening fleet served by two in-process worker threads.

    Thread workers share the test process, so ``faults.activate`` in the
    test instruments the workers' sends too — injected result-frame drops
    happen exactly where a real worker crash would surface.
    """
    fleet = RemoteFleet(listen="127.0.0.1:0", min_workers=2, start_timeout=15.0)
    host, port = wire.parse_address(fleet.bound_address)
    threads = []
    for index in range(2):
        agent = WorkerAgent(worker_id=f"chaos-w{index}")
        thread = threading.Thread(target=agent.connect, args=(host, port), daemon=True)
        thread.start()
        threads.append(thread)
    try:
        yield fleet
    finally:
        fleet.close()
        for thread in threads:
            thread.join(timeout=5)


class TestFleetChaos:
    def test_kill_mid_result_settles_exactly_once(self, chaos_fleet):
        """Dropping the first result frame re-leases the task exactly once."""
        plan = FaultPlan(
            seed=1,
            faults=(
                FaultSpec(site="wire.send", kind="drop", match={"type": "result"}),
            ),
        )
        with faults.activate(plan) as injector:
            with WorkScheduler(fleet=chaos_fleet) as scheduler:
                handle = scheduler.submit(echo_task, "payload", name="mid-result")
                scheduler.drain()
        assert handle.state is TaskState.DONE
        assert handle.result == ("echo", "payload")
        assert handle.retries == 1
        assert scheduler.stats.task_retries == 1
        assert scheduler.stats.workers_lost == 1
        assert scheduler.stats.tasks_done == 1
        assert injector.faults_injected == 1

    def test_corrupted_result_frame_recovers(self, chaos_fleet):
        """A bit-flipped result frame is a FrameError, not a wrong result."""
        plan = FaultPlan(
            seed=2,
            faults=(
                FaultSpec(site="wire.send", kind="corrupt", match={"type": "result"}),
            ),
        )
        with faults.activate(plan) as injector:
            with WorkScheduler(fleet=chaos_fleet) as scheduler:
                handle = scheduler.submit(echo_task, 99, name="corrupted")
                scheduler.drain()
        assert handle.state is TaskState.DONE
        assert handle.result == ("echo", 99)
        assert scheduler.stats.workers_lost == 1
        assert injector.faults_injected == 1

    def test_poison_task_is_quarantined(self, chaos_fleet):
        """A task that keeps killing its workers settles QUARANTINED."""
        plan = FaultPlan(
            seed=3,
            faults=(
                FaultSpec(
                    site="wire.send",
                    kind="drop",
                    match={"type": "result", "name": "poison"},
                    count=0,  # every result this task ever produces
                ),
            ),
        )
        retry = RetryPolicy(max_retries=5, quarantine_after=1, backoff_base=0.0)
        with faults.activate(plan):
            with WorkScheduler(fleet=chaos_fleet, retry=retry) as scheduler:
                good = scheduler.submit(echo_task, "fine", name="good")
                poison = scheduler.submit(echo_task, "bad", name="poison")
                scheduler.drain()
        assert good.state is TaskState.DONE
        assert poison.state is TaskState.QUARANTINED
        assert poison.worker_losses == 2
        stats = scheduler.stats
        assert stats.tasks_quarantined == 1
        # Settlement invariant: every submitted task settled exactly once.
        assert stats.tasks_submitted == (
            stats.tasks_done
            + stats.tasks_failed
            + stats.tasks_cancelled
            + stats.tasks_expired
            + stats.tasks_quarantined
        )

    def test_heartbeat_drop_via_plan_env_expires_lease(self):
        """A worker whose plan (via REPRO_FAULT_PLAN) eats every heartbeat
        goes silent without dropping its connection — the monitor must
        expire its lease and re-lease the work."""
        plan = FaultPlan(
            seed=4,
            faults=(FaultSpec(site="worker.heartbeat", kind="drop", count=0),),
        )
        fleet = RemoteFleet(
            listen="127.0.0.1:0",
            min_workers=2,
            heartbeat_interval=0.15,
            lease_ttl=1.0,
        )
        silent = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.worker",
                "--connect",
                fleet.bound_address,
                "--id",
                "hb-silent",
            ],
            env={**WORKER_ENV, faults.PLAN_ENV: plan.to_json()},
        )
        healthy = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.worker",
                "--connect",
                fleet.bound_address,
                "--id",
                "hb-healthy",
            ],
            env=WORKER_ENV,
        )
        try:
            fleet.ensure_started()
            with WorkScheduler(fleet=fleet) as scheduler:
                handles = [
                    scheduler.submit(sleepy_task, 2.0, name=f"hb-{index}")
                    for index in range(2)
                ]
                scheduler.drain()
            assert [handle.state for handle in handles] == [TaskState.DONE] * 2
            assert scheduler.stats.workers_lost == 1
            assert scheduler.stats.task_retries == 1
        finally:
            fleet.close()
            for process in (silent, healthy):
                if process.poll() is None:
                    process.kill()
                process.wait(timeout=10)


# ------------------------------------------------------ degradation ladder
class TestDegradationLadder:
    def test_scheduler_degrades_fleet_to_pool(self):
        """A dead fleet degrades to a local pool; tasks still complete."""
        steps = []
        with WorkScheduler(
            fleet=DEAD_FLEET,
            timeout=TimeoutPolicy(start_timeout=0.5),
            degrade=True,
            degrade_workers=2,
            on_degrade=lambda *step: steps.append(step),
        ) as scheduler:
            handles = [
                scheduler.submit(echo_task, index, name=f"ladder-{index}")
                for index in range(3)
            ]
            scheduler.drain()
        assert [handle.state for handle in handles] == [TaskState.DONE] * 3
        assert [handle.result for handle in handles] == [
            ("echo", index) for index in range(3)
        ]
        assert scheduler.stats.degradations == 1
        assert len(steps) == 1
        assert steps[0][:2] == ("fleet", "pool")

    def test_scheduler_default_still_raises(self):
        """Without opt-in the dead fleet surfaces ExecutorUnavailable."""
        with WorkScheduler(
            fleet=DEAD_FLEET, timeout=TimeoutPolicy(start_timeout=0.3)
        ) as scheduler:
            handle = scheduler.submit(echo_task, 1, name="no-ladder")
            with pytest.raises(ExecutorUnavailable):
                scheduler.drain()
            assert handle.state is TaskState.PENDING

    def test_migrate_against_dead_fleet_matches_sequential(self):
        """The ladder completes a run against a dead fleet with identical
        results and an auditable ExecutionDegraded trail."""
        benchmark = get_benchmark("Oracle-1")
        seq_events: list = []
        sequential = SynthesisSession(
            benchmark.source_program,
            benchmark.target_schema,
            SynthesisConfig(counterexample_pool=False),
            on_event=seq_events.append,
        ).run()

        chaos_events: list = []
        degraded = SynthesisSession(
            benchmark.source_program,
            benchmark.target_schema,
            SynthesisConfig(
                counterexample_pool=False,
                execution_fleet=DEAD_FLEET,
                parallel_wave_size=1,
                resilience=ResilienceConfig(
                    timeout=TimeoutPolicy(start_timeout=0.5)
                ),
            ),
            on_event=chaos_events.append,
        ).run()

        rungs = [e for e in chaos_events if isinstance(e, ExecutionDegraded)]
        assert rungs and rungs[0].from_mode == "fleet"
        assert degraded.degradations >= 1
        # Identical synthesis outcome, event for event (ladder steps aside).
        assert degraded.attempts == sequential.attempts
        assert (degraded.program is None) == (sequential.program is None)
        assert [type(e).__name__ for e in chaos_events if not isinstance(e, ExecutionDegraded)] == [
            type(e).__name__ for e in seq_events
        ]
        resilience = degraded.to_dict()["resilience"]
        assert resilience["degradations"] == degraded.degradations
        assert set(resilience) >= {"retries", "quarantined_tasks", "degradations"}

    def test_service_ladder_journals_degraded_record(self, tmp_path):
        """A service batch against a dead fleet completes on the pool and
        journals the ladder step next to the job records."""
        store_path = tmp_path / "chaos.jsonl"
        fleet = RemoteFleet(workers=DEAD_FLEET, start_timeout=0.5)
        events: list = []
        jobs = []
        for name in ("Oracle-1", "Ambler-3"):
            benchmark = get_benchmark(name)
            jobs.append(
                MigrationJob(
                    name=name,
                    source_program=benchmark.source_program,
                    target_schema=benchmark.target_schema,
                )
            )
        try:
            with MigrationService(
                workers=fleet,
                job_store=str(store_path),
                default_config=SynthesisConfig(counterexample_pool=False),
                on_event=lambda job, event: events.append((job, event)),
            ) as service:
                handles = service.submit_batch(jobs)
                service.run()
        finally:
            fleet.close()
        for handle in handles:
            assert handle.status.value == "done", handle.job.name

        records = [
            json.loads(line)
            for line in store_path.read_text().splitlines()
            if line.strip()
        ]
        degraded = [r for r in records if r["type"] == "degraded"]
        assert degraded and degraded[0]["from"] == "fleet"
        assert set(degraded[0]["jobs"]) == {"Oracle-1", "Ambler-3"}
        # The batch-wide annotation must not create a phantom job standing.
        standings = JobStore.load(store_path)
        assert set(standings) == {"Oracle-1", "Ambler-3"}
        assert all(entry.settled for entry in standings.values())
        settled = [r for r in records if r["type"] == "settled"]
        assert sorted(r["job"] for r in settled) == ["Ambler-3", "Oracle-1"]
        # Every still-running job heard about the rung it fell down.
        rungs = [(job, e) for job, e in events if isinstance(e, ExecutionDegraded)]
        assert {job for job, _ in rungs} == {"Oracle-1", "Ambler-3"}

    def test_service_walks_full_ladder_to_inline(self, tmp_path, monkeypatch):
        """Dead fleet + no process pool: the batch still completes, inline,
        with both rungs journalled."""

        def no_pool(self):
            raise ExecutorUnavailable("process pool disabled for this test")

        monkeypatch.setattr(WorkScheduler, "_ensure_executor", no_pool)
        store_path = tmp_path / "ladder.jsonl"
        fleet = RemoteFleet(workers=DEAD_FLEET, start_timeout=0.5)
        events: list = []
        benchmark = get_benchmark("Oracle-1")
        job = MigrationJob(
            name="Oracle-1",
            source_program=benchmark.source_program,
            target_schema=benchmark.target_schema,
        )
        try:
            with MigrationService(
                workers=fleet,
                job_store=str(store_path),
                default_config=SynthesisConfig(counterexample_pool=False),
                on_event=lambda job_name, event: events.append(event),
            ) as service:
                (handle,) = service.submit_batch([job])
                service.run()
        finally:
            fleet.close()
        assert handle.status.value == "done"
        records = [
            json.loads(line)
            for line in store_path.read_text().splitlines()
            if line.strip()
        ]
        walked = [(r["from"], r["to"]) for r in records if r["type"] == "degraded"]
        assert walked == [("fleet", "pool"), ("pool", "inline")]
        rungs = [e for e in events if isinstance(e, ExecutionDegraded)]
        assert [(e.from_mode, e.to_mode) for e in rungs] == [
            ("fleet", "pool"),
            ("pool", "inline"),
        ]


# --------------------------------------------------------- CI chaos smoke
@pytest.mark.skipif(
    os.environ.get("REPRO_CHAOS_SMOKE", "") in ("", "0", "false"),
    reason="chaos smoke only in its dedicated CI job (REPRO_CHAOS_SMOKE=1)",
)
class TestChaosSmoke:
    """The CI smoke: a seeded fault-plan matrix over subprocess workers.

    Each plan perturbs one seam (dropped results, corrupted frames, slow
    tasks); every run must produce the undisturbed sequential trajectory.
    """

    BENCHMARKS = ["Oracle-1", "Ambler-3"]
    PLANS = {
        "result-drop": FaultPlan(
            seed=11,
            faults=(
                FaultSpec(site="wire.send", kind="drop", match={"type": "result"}),
            ),
        ),
        "result-corrupt": FaultPlan(
            seed=12,
            faults=(
                FaultSpec(site="wire.send", kind="corrupt", match={"type": "result"}),
            ),
        ),
        "slow-tasks": FaultPlan(
            seed=13,
            faults=(
                FaultSpec(site="worker.task", kind="slow", seconds=0.1, count=3),
            ),
        ),
    }

    @staticmethod
    def _spawn_listen_worker(worker_id: str, plan: FaultPlan | None):
        env = dict(WORKER_ENV)
        if plan is not None:
            env[faults.PLAN_ENV] = plan.to_json()
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.worker",
                "--listen",
                "127.0.0.1:0",
                "--id",
                worker_id,
            ],
            env=env,
            stdout=subprocess.PIPE,
            text=True,
        )
        line = process.stdout.readline()
        assert "listening on " in line, f"worker banner missing: {line!r}"
        return process, line.strip().rpartition("listening on ")[2]

    def test_fault_matrix_preserves_trajectories(self):
        baselines = {}
        for name in self.BENCHMARKS:
            benchmark = get_benchmark(name)
            baselines[name] = SynthesisSession(
                benchmark.source_program,
                benchmark.target_schema,
                SynthesisConfig(counterexample_pool=False),
            ).run()
        for plan_name, plan in self.PLANS.items():
            for name in self.BENCHMARKS:
                benchmark = get_benchmark(name)
                # One faulty worker, one clean: a single seeded casualty per
                # plan with a survivor to re-lease onto.
                faulty, faulty_addr = self._spawn_listen_worker(
                    f"smoke-{plan_name}-f", plan
                )
                clean, clean_addr = self._spawn_listen_worker(
                    f"smoke-{plan_name}-c", None
                )
                try:
                    result = SynthesisSession(
                        benchmark.source_program,
                        benchmark.target_schema,
                        SynthesisConfig(
                            counterexample_pool=False,
                            execution_fleet=(faulty_addr, clean_addr),
                            parallel_wave_size=1,
                        ),
                    ).run()
                finally:
                    for process in (faulty, clean):
                        if process.poll() is None:
                            process.kill()
                        process.wait(timeout=10)
                baseline = baselines[name]
                label = f"{plan_name}/{name}"
                assert result.attempts == baseline.attempts, label
                assert (result.program is None) == (baseline.program is None), label
                assert result.iterations == baseline.iterations, label
                assert result.to_dict()["resilience"] is not None, label
