"""Tests for the partial weighted MaxSAT solver."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.maxsat import MaxSatError, WPMaxSatSolver, solve_wpmaxsat
from repro.sat.cnf import CNF


def brute_force_optimum(num_vars, hard, soft):
    """Reference: minimum violated soft weight over all hard-satisfying assignments."""
    best = None
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = {i + 1: bits[i] for i in range(num_vars)}

        def satisfied(clause):
            return any(assignment.get(abs(l), False) == (l > 0) for l in clause)

        if not all(satisfied(c) for c in hard):
            continue
        cost = sum(w for c, w in soft if not satisfied(c))
        if best is None or cost < best:
            best = cost
    return best


class TestWpMaxSat:
    def test_no_soft_clauses_returns_any_model(self):
        result = solve_wpmaxsat([[1, 2], [-1]], [])
        assert result.satisfiable and result.cost == 0
        assert result.model[2] is True

    def test_unsatisfiable_hard_clauses(self):
        result = solve_wpmaxsat([[1], [-1]], [([2], 1)])
        assert not result.satisfiable

    def test_prefers_higher_weight(self):
        # x1 and x2 conflict; satisfying x2 is worth more.
        result = solve_wpmaxsat([[-1, -2]], [([1], 1), ([2], 5)])
        assert result.satisfiable
        assert result.model[2] is True
        assert result.cost == 1
        assert result.satisfied_weight == 5

    def test_all_soft_satisfiable(self):
        result = solve_wpmaxsat([], [([1], 2), ([2], 3), ([-3], 1)])
        assert result.cost == 0
        assert result.satisfied_weight == 6

    def test_weighted_tradeoff(self):
        # choose exactly one of x1..x3 (hard); soft prefers x3 strongly.
        hard = [[1, 2, 3], [-1, -2], [-1, -3], [-2, -3]]
        soft = [([1], 1), ([2], 2), ([3], 4)]
        result = solve_wpmaxsat(hard, soft)
        assert result.model[3] is True
        assert result.cost == 3

    def test_soft_clause_weight_must_be_positive(self):
        solver = WPMaxSatSolver()
        with pytest.raises(MaxSatError):
            solver.add_soft([1], 0)

    def test_empty_soft_clause_rejected(self):
        solver = WPMaxSatSolver()
        with pytest.raises(MaxSatError):
            solver.add_soft([], 1)

    def test_incremental_hard_blocking(self):
        solver = WPMaxSatSolver()
        solver.ensure_variable(2)
        solver.add_soft([1], 3)
        solver.add_soft([2], 2)
        first = solver.solve()
        assert first.model[1] and first.model[2]
        # Block the optimum and ask again.
        solver.add_hard([-1, -2])
        second = solver.solve()
        assert second.satisfiable
        assert second.cost == 2  # give up the cheaper soft clause
        assert second.model[1] is True and second.model[2] is False

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(-4, 4).filter(lambda v: v != 0), min_size=1, max_size=3),
            max_size=4,
        ),
        st.lists(
            st.tuples(
                st.lists(st.integers(-4, 4).filter(lambda v: v != 0), min_size=1, max_size=2),
                st.integers(1, 4),
            ),
            min_size=1,
            max_size=5,
        ),
    )
    def test_matches_brute_force_optimum(self, hard, soft):
        result = solve_wpmaxsat(hard, soft, num_variables=4)
        expected = brute_force_optimum(4, hard, soft)
        if expected is None:
            assert not result.satisfiable
        else:
            assert result.satisfiable
            assert result.cost == expected
