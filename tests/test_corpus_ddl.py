"""DDL ingest/emit tests: the Hypothesis round-trip property, the bundled
e-commerce dump, torn/unsupported input, and foreign-key inference."""

from __future__ import annotations

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datamodel import DataType as T
from repro.datamodel.schema import Schema
from repro.corpus import (
    DdlError,
    emit_ddl,
    ingest_ddl,
    parse_ddl,
    schema_signature,
    schemas_equal,
)

DUMP = Path(__file__).resolve().parent.parent / "examples" / "data" / "ecommerce_schema.sql"

IDENT = st.from_regex(r"[a-z][a-z0-9_]{0,7}", fullmatch=True)
DTYPE = st.sampled_from([T.INT, T.STRING, T.BINARY, T.BOOL])


@st.composite
def schemas(draw) -> Schema:
    """Random well-formed schemas: 1-4 tables, 1-5 columns, optional PKs/FKs."""
    table_names = draw(st.lists(IDENT, min_size=1, max_size=4, unique=True))
    schema = Schema("generated")
    columns_by_table: dict[str, dict[str, T]] = {}
    for table in table_names:
        names = draw(st.lists(IDENT, min_size=1, max_size=5, unique=True))
        columns = {name: draw(DTYPE) for name in names}
        primary_key = draw(st.sampled_from([None, *columns]))
        schema.add_table(table, columns, primary_key=primary_key)
        columns_by_table[table] = columns
    # Foreign keys between type-matched attributes of distinct tables.
    attributes = [
        (table, column, dtype)
        for table, columns in columns_by_table.items()
        for column, dtype in columns.items()
    ]
    pairs = [
        (src, dst)
        for src in attributes
        for dst in attributes
        if src[0] != dst[0] and src[2] == dst[2]
    ]
    if pairs:
        for src, dst in draw(
            st.lists(st.sampled_from(pairs), max_size=3, unique=True)
        ):
            schema.add_foreign_key(f"{src[0]}.{src[1]}", f"{dst[0]}.{dst[1]}")
    return schema


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(schemas())
    def test_emit_then_ingest_is_identity(self, schema):
        """Schema -> DDL -> Schema reproduces tables, order, types, PKs, FKs.

        Inference is off: it may legitimately *add* FKs the original never
        declared (that behaviour has its own test below), and the property
        is about faithful transport of what the schema states.
        """
        text = emit_ddl(schema)
        recovered, report = ingest_ddl(text, infer_foreign_keys=False)
        assert schemas_equal(schema, recovered), (
            f"signature drift:\n{schema_signature(schema)}\n"
            f"{schema_signature(recovered)}"
        )
        assert report.skipped_statements == []
        assert report.declared_foreign_keys == len(schema.foreign_keys)

    def test_bundled_dump_round_trips(self):
        schema, report = ingest_ddl(DUMP.read_text(), name="ecommerce")
        assert report.tables == [
            "customers", "products", "orders", "order_items", "payments",
        ]
        assert report.declared_foreign_keys == 4
        # The dump declares every FK explicitly; nothing is left to infer.
        assert report.inferred_foreign_keys == 0
        assert schema.table("payments").primary_key == "payment_id"
        assert schema.table("products").type_of("price_cents") is T.INT
        assert schema.table("customers").type_of("created_at") is T.STRING
        assert schema.table("customers").type_of("avatar") is T.BINARY
        recovered = parse_ddl(emit_ddl(schema), infer_foreign_keys=False)
        assert schemas_equal(schema, recovered)


class TestMalformedInput:
    """Torn or unsupported DDL raises DdlError, never a bare ValueError."""

    @pytest.mark.parametrize(
        "text, needle",
        [
            ("CREATE TABLE t (", "torn DDL"),
            ("CREATE TABLE t (x INT", "torn DDL"),
            ("CREATE TABLE t (x INT,", "torn DDL"),
            ("CREATE TABLE t ();", "empty body"),
            ("CREATE TABLE t (x FLOAT);", "unsupported column type"),
            ("CREATE TABLE t (x JSON);", "unsupported column type"),
            ("CREATE TABLE t (x INT, x INT);", "duplicate column"),
            ("CREATE TABLE t (x INT REFERENCES nope (y));", "unknown table"),
            ("CREATE TABLE t (x INT, PRIMARY KEY (zz));", "unknown column"),
            (
                "CREATE TABLE t (x INT, y INT, "
                "FOREIGN KEY (x, y) REFERENCES t (x, y));",
                "composite foreign keys",
            ),
            ("SELECT 1;", "no CREATE TABLE"),
            ("", "no CREATE TABLE"),
            ("CREATE TABLE t (x INT); @@@", "unrecognised DDL"),
            ("CREATE TABLE t (x INT); CREATE TABLE t (y INT);", "declared twice"),
        ],
    )
    def test_raises_typed_error(self, text, needle):
        with pytest.raises(DdlError, match=needle):
            parse_ddl(text)

    def test_ddl_error_is_a_value_error(self):
        assert issubclass(DdlError, ValueError)
        with pytest.raises(ValueError):
            parse_ddl("CREATE TABLE t (")


class TestDialectCoverage:
    def test_comments_quoting_and_noise_statements(self):
        text = """
        -- line comment
        # mysql comment
        /* block
           comment */
        SET search_path TO public;
        CREATE TABLE `a` ("x" INT PRIMARY KEY, [y] VARCHAR(10) NOT NULL);
        CREATE INDEX idx ON a (x);
        INSERT INTO a VALUES (1, 'two');
        """
        schema, report = ingest_ddl(text)
        assert schema.table("a").primary_key == "x"
        assert schema.table("a").type_of("y") is T.STRING
        assert len(report.skipped_statements) == 3

    def test_composite_primary_key_is_recorded_and_ignored(self):
        schema, report = ingest_ddl(
            "CREATE TABLE t (x INT, y INT, PRIMARY KEY (x, y));"
        )
        assert schema.table("t").primary_key is None
        assert report.ignored_composite_keys == ["t"]

    def test_alter_table_adds_pk_and_fk(self):
        text = """
        CREATE TABLE users (user_id INT, email TEXT);
        CREATE TABLE posts (post_id INT, author INT);
        ALTER TABLE ONLY users ADD CONSTRAINT users_pkey PRIMARY KEY (user_id);
        ALTER TABLE posts ADD FOREIGN KEY (author) REFERENCES users (user_id);
        """
        schema, report = ingest_ddl(text)
        assert schema.table("users").primary_key == "user_id"
        assert report.declared_foreign_keys == 1
        fk = schema.foreign_keys[0]
        assert (str(fk.source), str(fk.target)) == ("posts.author", "users.user_id")

    def test_type_coarsening(self):
        text = (
            "CREATE TABLE t (a NUMERIC(8,2), b MONEY, c TIMESTAMP WITH TIME ZONE,"
            " d UUID, e BYTEA, f BIT, g CHARACTER VARYING(40));"
        )
        table = parse_ddl(text).table("t")
        assert table.type_of("a") is T.INT
        assert table.type_of("b") is T.INT
        assert table.type_of("c") is T.STRING
        assert table.type_of("d") is T.STRING
        assert table.type_of("e") is T.BINARY
        assert table.type_of("f") is T.BOOL
        assert table.type_of("g") is T.STRING


class TestForeignKeyInference:
    TEXT = """
    CREATE TABLE users (users_id INT PRIMARY KEY, email TEXT);
    CREATE TABLE orders (orders_id INT PRIMARY KEY, users_id INT, total INT);
    """

    def test_convention_named_column_is_inferred(self):
        schema, report = ingest_ddl(self.TEXT)
        assert report.inferred_foreign_keys == 1
        fk = schema.foreign_keys[0]
        assert (str(fk.source), str(fk.target)) == ("orders.users_id", "users.users_id")

    def test_inference_can_be_disabled(self):
        schema, report = ingest_ddl(self.TEXT, infer_foreign_keys=False)
        assert schema.foreign_keys == []
        assert report.inferred_foreign_keys == 0

    def test_declared_keys_are_not_re_inferred(self):
        text = self.TEXT.replace(
            "users_id INT, total",
            "users_id INT REFERENCES users (users_id), total",
        )
        schema, report = ingest_ddl(text)
        assert report.declared_foreign_keys == 1
        assert report.inferred_foreign_keys == 0
        assert len(schema.foreign_keys) == 1

    def test_type_mismatch_blocks_inference(self):
        text = """
        CREATE TABLE users (users_id INT PRIMARY KEY);
        CREATE TABLE orders (orders_id INT PRIMARY KEY, users_id TEXT);
        """
        _, report = ingest_ddl(text)
        assert report.inferred_foreign_keys == 0
