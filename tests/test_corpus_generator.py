"""Property-based workload generator tests: determinism, oracle soundness,
backend agreement, and opt-in registration."""

from __future__ import annotations

import pytest

from repro.corpus import (
    CorpusConfig,
    FoldStep,
    MergeStep,
    RewriteError,
    SplitStep,
    derive_refactoring_pair,
    fuzz_corpus,
    fuzz_workload,
    generate_corpus,
    generate_workload,
    register_corpus,
    schemas_equal,
)
from repro.corpus.generator import crud_program_for_spec
from repro.datamodel import DataType as T
from repro.equivalence import BoundedVerifier
from repro.lang.visitors import validate_program
from repro.workloads import SchemaSpec, benchmark_names
from repro.workloads.registry import BenchmarkRegistry

SMALL = CorpusConfig().scaled(tables=2, columns=3, steps=2, functions=8)


class TestDeterminism:
    def test_same_seed_same_workload(self):
        first = generate_workload(42, SMALL)
        second = generate_workload(42, SMALL)
        assert first.name == second.name
        # Programs compare by functions + schema structure (Schema has no
        # structural __eq__ of its own).
        assert first.source_program.functions == second.source_program.functions
        assert schemas_equal(first.source_program.schema, second.source_program.schema)
        assert first.describe_steps() == second.describe_steps()
        assert first.oracle_program.functions == second.oracle_program.functions
        assert schemas_equal(first.target_schema, second.target_schema)

    def test_different_seeds_differ(self):
        # Not guaranteed per-pair in principle, but pinned for these seeds:
        # a collision here means the sampler stopped consuming the rng.
        assert (
            generate_workload(1, SMALL).describe_steps()
            != generate_workload(7, SMALL).describe_steps()
        )

    def test_generate_corpus_is_reproducible(self):
        first = generate_corpus(5, 4, SMALL)
        second = generate_corpus(5, 4, SMALL)
        assert [w.seed for w in first] == [w.seed for w in second]
        assert [w.source_program.functions for w in first] == [
            w.source_program.functions for w in second
        ]

    def test_fuzz_report_is_reproducible(self):
        first = fuzz_corpus(3, 3, SMALL, max_sequences=10, random_sequences=4)
        second = fuzz_corpus(3, 3, SMALL, max_sequences=10, random_sequences=4)
        assert first.to_dict() == second.to_dict()
        assert first.ok


class TestWorkloadSoundness:
    @pytest.mark.parametrize("seed", range(6))
    def test_programs_are_well_formed(self, seed):
        workload = generate_workload(seed, SMALL)
        validate_program(workload.source_program)
        validate_program(workload.oracle_program)
        assert 1 <= len(workload.steps) <= SMALL.num_steps
        assert schemas_equal(workload.oracle_program.schema, workload.target_schema)

    @pytest.mark.parametrize("seed", range(4))
    def test_oracle_is_equivalent_to_source(self, seed):
        """The constructed oracle must be a correct migration of the source."""
        workload = generate_workload(seed, SMALL)
        verifier = BoundedVerifier(max_updates=2, random_sequences=25)
        verdict = verifier.verify(workload.source_program, workload.oracle_program)
        assert verdict.equivalent, (
            f"seed {seed}: oracle diverges on {verdict.counterexample} "
            f"after steps {workload.describe_steps()}"
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_all_backends_agree(self, seed):
        workload = generate_workload(seed, SMALL)
        checked, divergences = fuzz_workload(
            workload, max_sequences=15, random_sequences=5
        )
        assert checked > 0
        assert divergences == []

    def test_config_knobs_bound_the_shape(self):
        config = CorpusConfig().scaled(tables=3, columns=4, steps=1, functions=6)
        workload = generate_workload(11, config)
        schema = workload.source_program.schema
        assert schema.num_tables() == 3
        assert all(
            len(table.columns) <= 4 + 1  # sampled columns + the key column
            for table in schema.tables.values()
        )
        assert workload.source_program.num_functions() <= 6


class TestRegistration:
    def test_registration_is_opt_in(self):
        """Generated benchmarks land in the registry you pass — the global
        registry stays pinned to the 20 paper scenarios."""
        workloads = generate_corpus(9, 2, SMALL)
        registry = BenchmarkRegistry()
        names = register_corpus(workloads, registry)
        assert sorted(names) == sorted(registry.names())
        benchmark = registry.get(names[0])
        assert benchmark.category == "generated"
        assert schemas_equal(benchmark.target_schema, workloads[0].target_schema)
        assert len(benchmark_names()) == 20

    def test_benchmark_shape(self):
        workload = generate_workload(2, SMALL)
        benchmark = workload.benchmark()
        assert benchmark.name == workload.name
        assert benchmark.source_program is workload.source_program


class TestDerivedPair:
    def test_split_then_merge_from_a_plain_spec(self):
        spec = SchemaSpec(
            "shop",
            {
                "users": {"users_id": T.INT, "users_name": T.STRING, "users_bio": T.STRING},
                "tags": {"tags_id": T.INT, "tags_label": T.STRING},
            },
        )
        program = crud_program_for_spec(spec, "shop", 8)
        steps = derive_refactoring_pair(spec, program)
        assert len(steps) == 2
        assert isinstance(steps[0], SplitStep)
        current_spec, current_program = spec, program
        for step in steps:
            current_spec, current_program = step.apply(current_spec, current_program)
        validate_program(current_program)


class TestRewriteGuards:
    def test_merge_across_a_join_is_rejected(self):
        """Merging two tables the program joins would collapse the join chain
        onto one table — the rewriter refuses instead of emitting nonsense."""
        spec = SchemaSpec(
            "g",
            {
                "users": {"users_id": T.INT, "users_name": T.STRING},
                "posts": {"posts_id": T.INT, "author_id": T.INT},
            },
            [("posts.author_id", "users.users_id")],
        )
        program = crud_program_for_spec(spec, "g", 12)
        with pytest.raises(RewriteError):
            MergeStep("users", "posts", "m").apply(spec, program)

    def test_fold_requires_the_link_join(self):
        spec = SchemaSpec(
            "g", {"users": {"users_id": T.INT, "users_bio": T.STRING}}
        )
        program = crud_program_for_spec(spec, "g", 6)
        split = SplitStep("users", ("users_bio",), "profiles", "link_id")
        spec2, program2 = split.apply(spec, program)
        folded_spec, folded_program = FoldStep("users", "profiles", "link_id").apply(
            spec2, program2
        )
        validate_program(folded_program)
        assert folded_spec.tables == spec.tables
