"""Differential tests: the columnar backend must match the interpreter.

Mirror of ``tests/test_compiled.py`` for the third execution backend
(``repro.engine.columnar``), plus the batch-kernel contracts that only this
backend has:

* every registered workload, executed on enumerated and random invocation
  sequences, produces identical outputs (exact row order and UID
  allocation) under the interpreter and the columnar backend;
* the hand-built ill-formed programs raise the same exception classes at
  the same points, including lazy per-row errors that stay silent on empty
  tables;
* the trie batch kernels (one program × many sequences, many programs ×
  one sequence) return outcome lists identical to scalar runs — including
  error sequences, prefix-sharing sequences, and fresh-UID allocation on
  forked branches;
* the batched tester/verifier/pool paths reproduce the scalar trajectory:
  same verdicts, same counterexamples, same bookkeeping;
* end-to-end synthesis under ``execution_backend="columnar"`` follows the
  compiled backend's trajectory exactly (all 20 workloads under
  ``REPRO_FULL_EQUIV=1``, a multi-iteration slice every run).
"""

from __future__ import annotations

import itertools
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Synthesizer
from repro.core.config import SynthesisConfig
from repro.datamodel import DataType as T, make_schema
from repro.datamodel.instance import InstanceError
from repro.engine import ProgramCompiler, make_batch_runner, run_invocation_sequence
from repro.engine.columnar import ColumnarFunctionCompiler, ColumnarState
from repro.engine.columnar.batch import run_programs_batch, run_sequences_batch
from repro.engine.interpreter import InvocationError
from repro.engine.joins import ExecutionError
from repro.equivalence.invocation import SequenceGenerator
from repro.equivalence.tester import BoundedTester
from repro.equivalence.verifier import BoundedVerifier
from repro.lang.builder import (
    ProgramBuilder,
    delete,
    eq,
    in_query,
    insert,
    join,
    select,
    update,
)
from repro.testing_cache import CounterexamplePool
from repro.workloads.registry import load_all

FULL_EQUIV = os.environ.get("REPRO_FULL_EQUIV") == "1"


def compile_columnar(program):
    return ProgramCompiler().compile_columnar(program)


def both_outcomes(program, sequence):
    """(kind, payload) pairs for the interpreter and the columnar backend.

    Outputs compare exactly (not canonicalized): the backends must agree on
    row order and UID allocation, not merely up to renaming.
    """

    def run(runner):
        try:
            return ("ok", runner())
        except Exception as error:  # noqa: BLE001 - the class is the assertion
            return ("err", type(error))

    interp = run(lambda: run_invocation_sequence(program, sequence))
    columnar = run(lambda: compile_columnar(program).run_sequence(sequence))
    return interp, columnar


def assert_equivalent(program, sequence):
    interp, columnar = both_outcomes(program, sequence)
    assert interp == columnar, (
        f"backends diverge on {sequence}: interpreter={interp} columnar={columnar}"
    )


def scalar_outcome(program, sequence):
    """The batch-kernel outcome shape, produced by a scalar run."""
    try:
        return ("ok", program.run_sequence(sequence))
    except Exception as error:  # noqa: BLE001
        return ("err", type(error))


# ----------------------------------------------------------------- workloads
WORKLOADS = load_all().names()


@pytest.mark.parametrize("name", WORKLOADS)
def test_differential_enumerated_sequences(name):
    """Enumerated bounded-tester sequences agree exactly on every workload."""
    program = load_all().get(name).source_program
    columnar = compile_columnar(program)
    generator = SequenceGenerator(programs=[program])
    checked = 0
    for sequence in itertools.islice(generator.sequences(), 80):
        checked += 1
        assert run_invocation_sequence(program, sequence) == columnar.run_sequence(sequence)
    assert checked > 0


@pytest.mark.parametrize("name", WORKLOADS)
def test_batch_kernel_matches_scalar_on_workloads(name):
    """The trie kernel's outcomes equal per-sequence scalar runs."""
    program = load_all().get(name).source_program
    columnar = compile_columnar(program)
    generator = SequenceGenerator(programs=[program])
    sequences = list(itertools.islice(generator.sequences(), 60))
    outcomes = run_sequences_batch(columnar, sequences)
    for sequence, (tag, payload) in zip(sequences, outcomes):
        expected = scalar_outcome(columnar, sequence)
        if tag == "ok":
            assert ("ok", payload) == expected
        else:
            assert ("err", type(payload)) == expected


@settings(max_examples=40, deadline=None)
@given(
    name=st.sampled_from(WORKLOADS),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_differential_random_sequences(name, seed):
    """Property: random sequences from the registry agree under both backends."""
    import random

    program = load_all().get(name).source_program
    generator = SequenceGenerator(programs=[program])
    rng = random.Random(seed)
    for sequence in generator.random_sequences(3, 5, rng):
        assert_equivalent(program, sequence)


# ------------------------------------------------------------ error semantics
@pytest.fixture()
def two_table_schema():
    return make_schema(
        "s",
        {
            "A": {"id": T.INT, "x": T.STRING},
            "B": {"id": T.INT, "y": T.STRING},
        },
    )


class TestErrorEquivalence:
    """The hand-built error modes of test_compiled.py, against columnar."""

    def test_self_join_raises_in_both(self, two_table_schema):
        pb = ProgramBuilder("p", two_table_schema)
        pb.query("q", [], select(["A.id"], join(["A", "A"]), None))
        program = pb.build(validate=False)
        interp, columnar = both_outcomes(program, [("q", ())])
        assert interp == columnar == ("err", ExecutionError)

    def test_condition_over_foreign_table_raises_in_both(self, two_table_schema):
        pb = ProgramBuilder("p", two_table_schema)
        pb.query("q", [], select(["A.id"], join(["A"], on=[("A.id", "B.id")]), None))
        program = pb.build(validate=False)
        interp, columnar = both_outcomes(program, [("q", ())])
        assert interp == columnar == ("err", ExecutionError)

    def test_delete_target_outside_chain(self, two_table_schema):
        pb = ProgramBuilder("p", two_table_schema)
        pb.update("add", [("i", "int")], insert("A", {"A.id": "$i"}))
        pb.update("d", [], delete(["B"], "A", None))
        program = pb.build(validate=False)
        assert_equivalent(program, [("add", (1,)), ("d", ())])

    def test_update_attribute_outside_chain(self, two_table_schema):
        pb = ProgramBuilder("p", two_table_schema)
        pb.update("add", [("i", "int")], insert("A", {"A.id": "$i"}))
        pb.update("u", [], update("A", None, "B.y", "z"))
        program = pb.build(validate=False)
        assert_equivalent(program, [("add", (1,)), ("u", ())])

    def test_predicate_attribute_error_is_lazy(self, two_table_schema):
        pb = ProgramBuilder("p", two_table_schema)
        pb.update("add", [("i", "int")], insert("A", {"A.id": "$i"}))
        pb.query("q", [], select(["A.id"], "A", eq("B.y", "z")))
        program = pb.build(validate=False)
        empty, empty_c = both_outcomes(program, [("q", ())])
        assert empty == empty_c == ("ok", [[]])
        populated, populated_c = both_outcomes(program, [("add", (1,)), ("q", ())])
        assert populated == populated_c == ("err", ExecutionError)

    def test_join_condition_bad_column_is_lazy(self, two_table_schema):
        pb = ProgramBuilder("p", two_table_schema)
        pb.update("a", [("i", "int")], insert("A", {"A.id": "$i"}))
        pb.update("b", [("i", "int")], insert("B", {"B.id": "$i"}))
        pb.query("q", [], select(["A.id"], join(["A", "B"], on=[("A.nope", "B.id")]), None))
        program = pb.build(validate=False)
        for sequence in (
            [("q", ())],
            [("a", (1,)), ("q", ())],  # one side empty: no pairs, no error
            [("a", (1,)), ("b", (1,)), ("q", ())],
        ):
            assert_equivalent(program, sequence)

    def test_unknown_table_error_ordering(self, two_table_schema):
        pb = ProgramBuilder("p", two_table_schema)
        pb.update("add", [("i", "int")], insert("A", {"A.id": "$i"}))
        pb.query(
            "q", [], select(["A.id"], join(["A", "C"], on=[("A.nope", "A.x")]), None)
        )
        program = pb.build(validate=False)
        interp, columnar = both_outcomes(program, [("q", ())])
        assert interp == columnar == ("err", InstanceError)
        interp, columnar = both_outcomes(program, [("add", (1,)), ("q", ())])
        assert interp == columnar == ("err", ExecutionError)

    def test_unbound_parameter_raises_in_both(self, two_table_schema):
        pb = ProgramBuilder("p", two_table_schema)
        pb.update("add", [("i", "int")], insert("A", {"A.id": "$i"}))
        pb.query("q", [], select(["A.id"], "A", eq("A.id", "$nope")))
        program = pb.build(validate=False)
        assert_equivalent(program, [("q", ())])  # no rows: predicate never runs
        assert_equivalent(program, [("add", (1,)), ("q", ())])

    def test_arity_and_unknown_function(self, two_table_schema):
        pb = ProgramBuilder("p", two_table_schema)
        pb.query("q", [("i", "int")], select(["A.id"], "A", eq("A.id", "$i")))
        program = pb.build(validate=False)
        interp, columnar = both_outcomes(program, [("q", ())])
        assert interp == columnar == ("err", InvocationError)
        interp, columnar = both_outcomes(program, [("zzz", ())])
        assert interp == columnar == ("err", KeyError)


# --------------------------------------------------------- columnar specifics
class TestColumnarEngine:
    def test_insert_into_join_uid_allocation_order(self, course_target_schema):
        """Fresh UIDs are observable in outputs: allocation order must match."""
        pb = ProgramBuilder("p", course_target_schema)
        chain = join(["Picture", "Instructor"], on=[("Picture.PicId", "Instructor.PicId")])
        pb.update("add", [("n", "str")], insert(chain, {"Instructor.IName": "$n"}))
        pb.query("all_pics", [], select(["Picture.PicId", "Picture.Pic"], "Picture", None))
        pb.query("joined", [], select(["Instructor.IName"], chain, None))
        program = pb.build(validate=False)
        assert_equivalent(
            program, [("add", ("Ann",)), ("add", ("Bob",)), ("all_pics", ()), ("joined", ())]
        )

    def test_in_subquery_unhashable_values_fall_back(self, two_table_schema):
        from repro.lang.builder import const

        pb = ProgramBuilder("p", two_table_schema)
        pb.update("a", [], insert("A", {"A.id": const([1]), "A.x": const("ax")}))
        pb.update("b", [], insert("B", {"B.id": const(1), "B.y": const("by")}))
        pb.query("probe", [], select(["A.x"], "A", in_query("A.id", select(["B.id"], "B", None))))
        pb.query("members", [], select(["B.y"], "B", in_query("B.id", select(["A.id"], "A", None))))
        program = pb.build(validate=False)
        assert_equivalent(program, [("a", ()), ("b", ()), ("probe", ()), ("members", ())])

    def test_hash_join_unhashable_key_falls_back(self, two_table_schema):
        """An unhashable join key degrades to the nested loop, same rows."""
        fc = ColumnarFunctionCompiler(two_table_schema)
        plan, _pos, _key = fc.compile_chain(join(["A", "B"], on=[("A.id", "B.id")]))
        state = ColumnarState(fc.table_widths)
        state.append_row(0, [[1], "row-a"])  # list key: unhashable
        state.append_row(1, [[1], "row-b"])
        state.append_row(1, [[2], "row-b2"])
        jrows = plan(state)
        assert len(jrows) == 1
        a_pos, b_pos = jrows[0]
        assert state.tables[0].cols[1][a_pos] == "row-a"
        assert state.tables[1].cols[1][b_pos] == "row-b"

    def test_empty_table_joins_yield_no_rows(self, two_table_schema):
        pb = ProgramBuilder("p", two_table_schema)
        pb.update("a", [("i", "int")], insert("A", {"A.id": "$i"}))
        pb.query("q", [], select(["A.id", "B.y"], join(["A", "B"], on=[("A.id", "B.id")]), None))
        program = pb.build(validate=False)
        assert_equivalent(program, [("q", ())])  # both sides empty
        assert_equivalent(program, [("a", (1,)), ("q", ())])  # build side empty
        columnar = compile_columnar(program)
        assert columnar.run_sequence([("a", (1,)), ("q", ())]) == [[]]

    def test_chain_results_cached_per_state(self, two_table_schema):
        """A chain's jrows are memoized until the state mutates."""
        fc = ColumnarFunctionCompiler(two_table_schema)
        plan, _pos, _key = fc.compile_chain(join(["A", "B"], on=[("A.id", "B.id")]))
        state = ColumnarState(fc.table_widths)
        state.append_row(0, [1, "a"])
        state.append_row(1, [1, "b"])
        first = plan(state)
        assert plan(state) is first  # served from chain_cache
        state.append_row(1, [1, "b2"])  # mutation invalidates
        second = plan(state)
        assert second is not first and len(second) == 2

    def test_fork_isolation_copy_on_write(self, two_table_schema):
        """Forked states never observe each other's writes."""
        fc = ColumnarFunctionCompiler(two_table_schema)
        state = ColumnarState(fc.table_widths)
        state.append_row(0, [1, "a"])
        state.append_row(0, [2, "b"])
        clone = state.fork()
        clone.set_cells(0, 1, [0], "mutated")
        clone.append_row(0, [3, "c"])
        assert state.tables[0].cols[1] == ["a", "b"]
        assert clone.tables[0].cols[1] == ["mutated", "b", "c"]
        rowid_set = {state.tables[0].rowids[0]}
        state.delete_rows(0, rowid_set)
        assert len(state.tables[0]) == 1
        assert len(clone.tables[0]) == 3
        # UID generators advance independently after the fork.
        a, b = state.uids.fresh(), clone.uids.fresh()
        assert a == b  # same counter at fork time
        assert state.uids.fresh().index == clone.uids.fresh().index

    def test_batch_kernel_prefix_sharing_and_errors(self, two_table_schema):
        """Hand-built prefix/error mix: outcomes equal scalar runs."""
        pb = ProgramBuilder("p", two_table_schema)
        pb.update("add", [("i", "int")], insert("A", {"A.id": "$i"}))
        pb.query("q", [], select(["A.id"], "A", None))
        pb.query("bad", [], select(["A.id"], join(["A", "A"]), None))  # always raises
        program = pb.build(validate=False)
        columnar = compile_columnar(program)
        sequences = [
            (("q", ()),),
            (("add", (1,)), ("q", ())),
            (("add", (1,)), ("add", (2,)), ("q", ())),
            (("add", (1,)), ("bad", ())),  # error after a shared prefix
            (("zzz", ()),),  # unknown function
            (("add", (1,)), ("add", (1,)), ("q", ())),  # duplicate invocation
            (("q", ()), ("q", ())),
        ]
        outcomes = run_sequences_batch(columnar, list(sequences))
        for sequence, (tag, payload) in zip(sequences, outcomes):
            expected = scalar_outcome(columnar, sequence)
            if tag == "ok":
                assert ("ok", payload) == expected
            else:
                assert ("err", type(payload)) == expected

    def test_batch_kernel_uid_allocation_on_forked_branches(self, course_target_schema):
        """Branches after a shared insert prefix allocate scalar-exact UIDs."""
        pb = ProgramBuilder("p", course_target_schema)
        chain = join(["Picture", "Instructor"], on=[("Picture.PicId", "Instructor.PicId")])
        pb.update("add", [("n", "str")], insert(chain, {"Instructor.IName": "$n"}))
        pb.query("pics", [], select(["Picture.PicId"], "Picture", None))
        program = pb.build(validate=False)
        columnar = compile_columnar(program)
        sequences = [
            (("add", ("Ann",)), ("pics", ())),
            (("add", ("Ann",)), ("add", ("Bob",)), ("pics", ())),
            (("add", ("Ann",)), ("add", ("Cee",)), ("pics", ())),
            (("pics", ()),),
        ]
        outcomes = run_sequences_batch(columnar, list(sequences))
        for sequence, (tag, payload) in zip(sequences, outcomes):
            assert tag == "ok"
            assert payload == columnar.run_sequence(sequence)

    def test_batch_kernel_unhashable_sequences_fall_back(self, two_table_schema):
        """Sequences with unhashable arguments still get scalar-exact outcomes."""
        pb = ProgramBuilder("p", two_table_schema)
        pb.update("add", [("i", "int")], insert("A", {"A.id": "$i"}))
        pb.query("q", [], select(["A.id"], "A", None))
        program = pb.build(validate=False)
        columnar = compile_columnar(program)
        sequences = [
            (("add", (1,)), ("q", ())),
            (("add", ([1],)), ("q", ())),  # unhashable argument: trie fallback
        ]
        outcomes = run_sequences_batch(columnar, list(sequences))
        assert outcomes[0] == ("ok", columnar.run_sequence(sequences[0]))
        tag, payload = outcomes[1]
        assert (tag, payload if tag != "err" else type(payload)) == (
            ("ok", columnar.run_sequence(sequences[1]))
            if scalar_outcome(columnar, sequences[1])[0] == "ok"
            else ("err", scalar_outcome(columnar, sequences[1])[1])
        )

    def test_many_programs_one_sequence_matches_scalar(self, people_program):
        """run_programs_batch: shared and divergent candidates, one sequence."""
        from repro.lang.ast import UpdateFunction

        compiler = ProgramCompiler()
        clone = people_program.with_functions(list(people_program), name="p")
        broken = people_program.with_functions(
            [f for f in people_program if f.name != "deletePerson"]
            + [
                UpdateFunction(
                    "deletePerson",
                    people_program.function("deletePerson").params,
                    (delete(["Person"], "Person", None),),
                )
            ],
            name="p",
        )
        missing = people_program.with_functions(
            [f for f in people_program if f.name != "deletePerson"], name="p"
        )
        programs = [
            compiler.compile_columnar(p) for p in (people_program, clone, broken, missing)
        ]
        generator = SequenceGenerator(programs=[people_program])
        for sequence in itertools.islice(generator.sequences(), 25):
            outcomes = run_programs_batch(programs, sequence)
            for program, (tag, payload) in zip(programs, outcomes):
                expected = scalar_outcome(program, sequence)
                if tag == "ok":
                    assert ("ok", payload) == expected
                else:
                    assert ("err", type(payload)) == expected

    def test_tester_backends_agree_on_verdicts(self, people_program):
        from repro.lang.ast import UpdateFunction

        broken = people_program.with_functions(
            [f for f in people_program if f.name != "deletePerson"]
            + [
                UpdateFunction(
                    "deletePerson",
                    people_program.function("deletePerson").params,
                    (delete(["Person"], "Person", None),),
                )
            ],
            name="broken",
        )
        verdicts = {}
        stats = {}
        for backend in ("interpreter", "compiled", "columnar"):
            tester = BoundedTester(people_program, execution_backend=backend)
            verdicts[backend] = (
                tester.find_failing_input(broken),
                tester.check_equivalent(people_program.with_functions(list(people_program))),
            )
            stats[backend] = (
                tester.stats.sequences_executed,
                tester.stats.full_enumerations,
                tester.stats.full_enumeration_sequences,
            )
        assert verdicts["interpreter"] == verdicts["compiled"] == verdicts["columnar"]
        assert stats["compiled"] == stats["columnar"]
        failing, self_equivalent = verdicts["columnar"]
        assert failing is not None and self_equivalent

    def test_pool_screen_batch_matches_scalar_screen(self, people_program):
        """Same hit, same bookkeeping — plus the batched-only counters."""
        from repro.lang.ast import UpdateFunction

        broken = people_program.with_functions(
            [f for f in people_program if f.name != "deletePerson"]
            + [
                UpdateFunction(
                    "deletePerson",
                    people_program.function("deletePerson").params,
                    (delete(["Person"], "Person", None),),
                )
            ],
            name="broken",
        )
        results = {}
        for backend in ("compiled", "columnar"):
            pool = CounterexamplePool()
            tester = BoundedTester(people_program, execution_backend=backend, pool=pool)
            first = tester.find_failing_input(broken)  # full enumeration, seeds pool
            second = tester.find_failing_input(broken)  # pool screen hit
            results[backend] = (
                first,
                second,
                pool.stats.hits,
                pool.stats.candidates_screened,
                pool.stats.sequences_screened,
                tester.stats.sequences_executed,
            )
            if backend == "columnar":
                assert pool.stats.sequences_screened_batched > 0
                assert pool.stats.screening_batches > 0
                assert pool.stats.max_batch_size >= 1
            else:
                assert pool.stats.sequences_screened_batched == 0
        assert results["compiled"] == results["columnar"]

    def test_verifier_backends_agree(self, people_program):
        from repro.lang.ast import UpdateFunction

        broken = people_program.with_functions(
            [f for f in people_program if f.name != "deletePerson"]
            + [
                UpdateFunction(
                    "deletePerson",
                    people_program.function("deletePerson").params,
                    (delete(["Person"], "Person", None),),
                )
            ],
            name="broken",
        )
        clone = people_program.with_functions(list(people_program), name="clone")
        results = {}
        for backend in ("compiled", "columnar"):
            verifier = BoundedVerifier(
                max_updates=2, random_sequences=25, execution_backend=backend
            )
            bad = verifier.verify(people_program, broken)
            good = verifier.verify(people_program, clone)
            results[backend] = (
                bad.equivalent,
                bad.counterexample,
                bad.sequences_checked,
                bad.method,
                good.equivalent,
                good.counterexample,
                good.sequences_checked,
                good.method,
            )
        assert results["compiled"] == results["columnar"]
        assert results["columnar"][0] is False and results["columnar"][4] is True

    def test_compiler_caches_shared_columnar_functions(self, people_program):
        compiler = ProgramCompiler()
        first = compiler.compile_columnar(people_program)
        clone = people_program.with_functions(list(people_program), name="clone")
        second = compiler.compile_columnar(clone)
        for name in people_program.function_names:
            assert first.functions[name] is second.functions[name]
        # Columnar and compiled artefacts live in separate caches.
        compiled = compiler.compile_program(people_program)
        assert compiled.functions.keys() == first.functions.keys()

    def test_unknown_backend_rejected(self, people_program):
        with pytest.raises(ValueError):
            BoundedTester(people_program, execution_backend="vectorized")
        with pytest.raises(ValueError):
            make_batch_runner("jit")
        assert make_batch_runner("compiled") is None
        assert make_batch_runner("interpreter") is None


# ------------------------------------------------------ end-to-end trajectory
TRAJECTORY_WORKLOADS = WORKLOADS if FULL_EQUIV else ["2030Club", "Ambler-5"]


@pytest.mark.parametrize("name", TRAJECTORY_WORKLOADS)
def test_synthesis_trajectory_matches_compiled(name):
    """Columnar synthesis follows the compiled backend's exact trajectory.

    Iterations, verdicts and pool bookkeeping must match run for run — the
    batched screening paths may only change *how* sequences execute, never
    which candidate survives or which counterexample is found.
    """
    import dataclasses

    workload = load_all().get(name)
    outcomes = {}
    for backend in ("compiled", "columnar"):
        config = dataclasses.replace(SynthesisConfig(), execution_backend=backend)
        result = Synthesizer(config).synthesize(workload.source_program, workload.target_schema)
        cache = result.cache
        outcomes[backend] = (
            result.succeeded,
            result.iterations,
            None if cache is None else cache.pool_hits,
            None if cache is None else cache.pool_added,
            None if cache is None else cache.candidates_screened,
            None if cache is None else cache.candidates_fully_tested,
            None if cache is None else cache.screening_sequences,
        )
    assert outcomes["compiled"] == outcomes["columnar"]
