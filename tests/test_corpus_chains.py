"""Multi-step migration chains and the corpus CLI."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.corpus import (
    CorpusConfig,
    MigrationChain,
    generate_workload,
    sqlite_differential,
)
from repro.corpus.__main__ import main

#: Small shapes keep each synthesis hop sub-second; seed 4 was pinned
#: because its chain covers split, a second split, and a fold.
CHAIN_CONFIG = CorpusConfig().scaled(tables=2, columns=2, steps=3, functions=8)


class TestMigrationChain:
    @pytest.fixture(scope="class")
    def chain_outcome(self):
        workload = generate_workload(4, CHAIN_CONFIG)
        return workload, MigrationChain(workload).run()

    def test_three_step_chain_synthesizes_end_to_end(self, chain_outcome):
        workload, outcome = chain_outcome
        assert len(workload.steps) == 3
        assert [step.succeeded for step in outcome.steps] == [True, True, True]
        assert outcome.succeeded, outcome.failure

    def test_composition_verified_against_composed_oracle(self, chain_outcome):
        _, outcome = chain_outcome
        assert outcome.verification is not None
        assert outcome.verification.equivalent
        assert outcome.verification.sequences_checked > 0

    def test_sqlite_differential_agrees(self, chain_outcome):
        _, outcome = chain_outcome
        assert outcome.sqlite_compared > 0
        assert outcome.sqlite_agreed

    def test_final_program_lives_on_the_target_schema(self, chain_outcome):
        workload, outcome = chain_outcome
        program = outcome.final_program
        assert program is not None
        assert set(program.schema.table_names) == set(
            workload.target_schema.table_names
        )

    def test_summary_names_the_workload(self, chain_outcome):
        workload, outcome = chain_outcome
        summary = outcome.summary()
        assert workload.name in summary
        assert "ok" in summary


class TestSqliteDifferential:
    def test_program_agrees_with_itself(self):
        program = generate_workload(0, CHAIN_CONFIG).source_program
        compared, agreed = sqlite_differential(program, program)
        assert compared > 0
        assert agreed

    def test_source_vs_oracle(self):
        workload = generate_workload(1, CHAIN_CONFIG)
        compared, agreed = sqlite_differential(
            workload.source_program, workload.oracle_program
        )
        assert compared > 0
        assert agreed


class TestCorpusCli:
    def test_generate_prints_workloads(self, capsys):
        assert main(["generate", "--seed", "3", "--count", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("corpus_s") == 2
        assert "step 1:" in out

    def test_fuzz_clean_run_writes_seed_list(self, tmp_path, capsys):
        seed_list = tmp_path / "seeds.json"
        code = main(
            [
                "fuzz", "--seed", "0", "--count", "3",
                "--max-sequences", "10", "--random-sequences", "4",
                "--seed-list", str(seed_list),
            ]
        )
        assert code == 0
        assert "all backends agree" in capsys.readouterr().out
        payload = json.loads(seed_list.read_text())
        assert payload["ok"] is True
        assert len(payload["workload_seeds"]) == 3
        assert payload["backends"] == ["interpreter", "compiled", "columnar"]

    def test_fuzz_respects_backend_selection(self, capsys):
        code = main(
            [
                "fuzz", "--seed", "1", "--count", "2",
                "--backends", "interpreter", "compiled",
                "--max-sequences", "8", "--random-sequences", "2",
            ]
        )
        assert code == 0
        assert "interpreter, compiled" in capsys.readouterr().out

    def test_ingest_bundled_dump(self, capsys):
        dump = (
            Path(__file__).resolve().parent.parent
            / "examples" / "data" / "ecommerce_schema.sql"
        )
        assert main(["ingest", str(dump)]) == 0
        out = capsys.readouterr().out
        assert "5 tables" in out
        assert "orders.customer_id -> customers.customer_id" in out

    def test_ingest_bad_file_fails_loudly(self, tmp_path, capsys):
        bad = tmp_path / "bad.sql"
        bad.write_text("CREATE TABLE t (x FLOAT);")
        assert main(["ingest", str(bad)]) == 1
        assert "ingest failed" in capsys.readouterr().err
