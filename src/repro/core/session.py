"""The streaming synthesis session: Algorithm 1 as a stream of typed events.

This module is the single implementation of the paper's ``Synthesize(P, S,
S')`` loop.  It is split into two layers:

* :class:`SessionCore` builds the per-run pipeline (tester, verifier,
  completer, sketch generator, shared incremental-testing state) and runs
  *one* value-correspondence attempt at a time.  Both the sequential driver
  below and the parallel front-end's worker processes
  (:mod:`repro.core.parallel`) execute attempts through this same core, so
  the two paths cannot diverge in behaviour — they differ only in who feeds
  correspondences to the core.

* :class:`SynthesisSession` is the driver over **every execution mode**: a
  re-entrant generator over typed progress events (:class:`VcSelected`,
  :class:`SketchGenerated`, :class:`SketchRejected`,
  :class:`CandidateRejected`, :class:`Solved`, :class:`BudgetTimeout`,
  :class:`BudgetExhausted`, :class:`Cancelled`) with cooperative
  cancellation and one wall-clock deadline threaded all the way into sketch
  completion and bounded testing — a single long sketch can no longer
  overrun ``config.time_limit``.  With ``config.parallel_workers > 1`` the
  session drives the wave-parallel front-end
  (:func:`repro.core.parallel.drive_parallel_session`) through the unified
  execution layer instead of the inline loop below: workers publish their
  per-attempt events through scheduler channels and the session merges them
  into one deterministically ordered stream — same event taxonomy, same
  pinned trajectories, streaming in every mode.

Event delivery has two granularities:

* the ``events()`` generator yields every event in order, but events emitted
  *inside* one attempt (candidate rejections) are delivered when that
  attempt's completion call returns — consuming the generator never blocks
  mid-attempt;
* an ``on_event`` callback passed to the session is invoked synchronously
  the moment each event is emitted, including mid-completion — this is the
  hook for real-time progress reporting and for cancelling from within the
  stream (calling :meth:`SynthesisSession.cancel` inside the callback stops
  the completion loop at its next iteration).

``Synthesizer.synthesize`` / ``migrate`` simply drain a session, so their
results are the session-driven results — same trajectory, same
:class:`~repro.core.result.AttemptRecord` list.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, ClassVar, Iterator, Optional

from repro.baselines.bmc import BmcCompleter
from repro.completion.enumerative import EnumerativeCompleter
from repro.completion.solver import SketchCompleter
from repro.core.config import SynthesisConfig
from repro.core.result import AttemptRecord, SynthesisResult
from repro.correspondence.enumerator import ValueCorrespondenceEnumerator, VcEnumerationError
from repro.correspondence.value_corr import ValueCorrespondence
from repro.datamodel.schema import Schema
from repro.engine.compiler import ProgramCompiler
from repro.equivalence.invocation import InvocationSequence
from repro.equivalence.tester import BoundedTester
from repro.equivalence.verifier import BoundedVerifier
from repro.lang.ast import Program
from repro.sketchgen.generator import SketchGenerationError, SketchGenerator
from repro.testing_cache import CounterexamplePool, SourceOutputCache, collect_cache_stats

COMPLETER_CLASSES = {
    "mfi": SketchCompleter,
    "enumerative": EnumerativeCompleter,
    "bmc": BmcCompleter,
}


# ----------------------------------------------------------------- events
@dataclass(frozen=True)
class SessionEvent:
    """Base class of the typed progress events."""

    kind: ClassVar[str] = "event"

    def describe(self) -> str:
        return self.kind


@dataclass(frozen=True)
class VcSelected(SessionEvent):
    """The enumerator produced the next candidate value correspondence."""

    kind: ClassVar[str] = "vc_selected"
    index: int
    weight: int

    def describe(self) -> str:
        return f"vc_selected w={self.weight}"


@dataclass(frozen=True)
class SketchGenerated(SessionEvent):
    """A program sketch was generated for the selected correspondence."""

    kind: ClassVar[str] = "sketch_generated"
    index: int
    holes: int
    search_space: int

    def describe(self) -> str:
        return f"sketch_generated holes={self.holes} space={self.search_space}"


@dataclass(frozen=True)
class SketchRejected(SessionEvent):
    """Sketch generation failed for the selected correspondence."""

    kind: ClassVar[str] = "sketch_rejected"
    index: int
    reason: str


@dataclass(frozen=True)
class CandidateRejected(SessionEvent):
    """A completion candidate failed testing or verification.

    ``counterexample`` is the failing invocation sequence (a minimum failing
    input, a pooled counterexample, or a verifier counterexample); ``None``
    only for candidates rejected without a concrete sequence.
    """

    kind: ClassVar[str] = "candidate_rejected"
    index: int
    iteration: int
    counterexample: Optional[InvocationSequence]


@dataclass(frozen=True)
class Solved(SessionEvent):
    """A completion passed testing (and verification, when enabled)."""

    kind: ClassVar[str] = "solved"
    index: int
    iterations: int

    def describe(self) -> str:
        return f"solved iters={self.iterations}"


@dataclass(frozen=True)
class BudgetTimeout(SessionEvent):
    """The wall-clock budget (``config.time_limit``) ran out."""

    kind: ClassVar[str] = "budget_timeout"
    elapsed: float


@dataclass(frozen=True)
class BudgetExhausted(SessionEvent):
    """The correspondence budget ran out without a solution."""

    kind: ClassVar[str] = "budget_exhausted"
    reason: str


@dataclass(frozen=True)
class Cancelled(SessionEvent):
    """The session was cooperatively cancelled."""

    kind: ClassVar[str] = "cancelled"


@dataclass(frozen=True)
class ExecutionDegraded(SessionEvent):
    """Execution stepped down the degradation ladder and kept going.

    Emitted once per rung — ``fleet -> pool``, ``pool -> sequential``,
    ``fleet -> inline`` — when the requested backend is unavailable.  Not
    terminal: the session continues on the weaker backend and still ends
    with its normal terminal event, with identical results.
    """

    kind: ClassVar[str] = "execution_degraded"
    from_mode: str
    to_mode: str
    reason: str

    def describe(self) -> str:
        return f"execution_degraded {self.from_mode}->{self.to_mode}"


#: Terminal events: every finished session stream ends with exactly one of
#: these (``Solved`` on success).
TERMINAL_EVENTS = (Solved, BudgetTimeout, BudgetExhausted, Cancelled)


class EventSummarizer:
    """Incrementally compacts an event stream for :attr:`AttemptRecord.events`.

    Runs of identical descriptions collapse into ``"description xN"`` so a
    20 000-candidate enumerative attempt summarizes to a handful of strings
    — crucially *without* retaining the event objects themselves (an attempt
    with no event consumer attached holds O(distinct descriptions) memory,
    not O(iterations)).
    """

    def __init__(self) -> None:
        self._texts: list[str] = []
        self._counts: list[int] = []

    def add(self, event: SessionEvent) -> None:
        text = event.describe()
        if self._texts and self._texts[-1] == text:
            self._counts[-1] += 1
        else:
            self._texts.append(text)
            self._counts.append(1)

    def summary(self) -> tuple[str, ...]:
        return tuple(
            text if count == 1 else f"{text} x{count}"
            for text, count in zip(self._texts, self._counts)
        )


# ------------------------------------------------------------ pipeline build
def build_tester(
    source_program: Program,
    config: SynthesisConfig,
    *,
    source_cache: SourceOutputCache | None = None,
    pool: CounterexamplePool | None = None,
    compiler=None,
) -> BoundedTester:
    """The run's bounded tester, wired to the shared incremental-testing state.

    *compiler* optionally shares a :class:`~repro.engine.compiler.ProgramCompiler`
    (and thus its compiled-function cache) across testers — parallel workers
    and the migration service pass a process-global one so candidates sharing
    function ASTs across tasks compile once per process.
    """
    return BoundedTester(
        source_program,
        seeds=config.tester_seeds,
        max_updates=config.tester_max_updates,
        relevance_filter=config.relevance_filter,
        source_cache=source_cache,
        pool=pool,
        pool_screening_budget=config.pool_screening_budget,
        execution_backend=config.execution_backend,
        compiler=compiler,
    )


def build_verifier(
    config: SynthesisConfig, *, compiler=None, source_cache: SourceOutputCache | None = None
) -> Optional[BoundedVerifier]:
    if not config.final_verification:
        return None
    return BoundedVerifier(
        max_updates=config.verifier_max_updates,
        random_sequences=config.verifier_random_sequences,
        relevance_filter=config.relevance_filter,
        execution_backend=config.execution_backend,
        compiler=compiler,
        source_cache=source_cache,
    )


def build_completer(source_program: Program, config: SynthesisConfig, tester, verifier):
    if config.completion_strategy not in COMPLETER_CLASSES:
        raise ValueError(f"unknown completion strategy {config.completion_strategy!r}")
    # The verifier participates in the completion loop (Algorithm 2): a
    # candidate that passes bounded testing but fails the deeper
    # verification pass is blocked like any other failing candidate.
    return COMPLETER_CLASSES[config.completion_strategy](
        source_program,
        tester=tester,
        verifier=verifier,
        consistency_constraints=config.consistency_constraints,
        max_iterations=config.max_iterations_per_sketch,
        time_limit=config.sketch_time_limit,
    )


# -------------------------------------------------------------- session core
@dataclass
class AttemptOutcome:
    """What one value-correspondence attempt produced."""

    record: AttemptRecord
    program: Optional[Program] = None
    iterations: int = 0
    verify_time: float = 0.0
    #: The attempt was stopped by the deadline or by cancellation (the
    #: record's ``failure_reason`` says which).
    interrupted: bool = False


class SessionCore:
    """The per-run pipeline plus the single-attempt unit of Algorithm 1.

    One core owns the tester (with its counterexample pool and source-output
    cache), the optional verifier, the completer, and the sketch generator.
    ``attempt`` runs the sketch-generation → completion → testing unit for
    one candidate correspondence and reports the outcome as an
    :class:`AttemptOutcome` plus a stream of typed events.

    The shared state is injectable so different drivers can scope it
    differently: the sequential session builds fresh per-run state, parallel
    workers pass process-global caches, and the migration service passes
    cross-job artifacts (a shared compiler, per-source counterexample pools).
    """

    def __init__(
        self,
        source_program: Program,
        target_schema: Schema,
        config: SynthesisConfig,
        *,
        pool: CounterexamplePool | None = None,
        source_cache: SourceOutputCache | None = None,
        compiler: ProgramCompiler | None = None,
    ):
        self.source_program = source_program
        self.target_schema = target_schema
        self.config = config
        if pool is None and config.counterexample_pool:
            pool = CounterexamplePool(config.pool_max_size)
        self.pool = pool
        if source_cache is None:
            source_cache = SourceOutputCache(config.source_cache_max_entries)
        self.source_cache = source_cache
        # One compiler per run unless a shared one is injected: tester and
        # verifier share the compiled-function cache, so a candidate verified
        # right after testing compiles once.
        if compiler is None and config.execution_backend in ("compiled", "columnar"):
            compiler = ProgramCompiler()
        self.compiler = compiler
        # Shared compilers accumulate counters across runs; snapshot the
        # baseline so cache_stats() reports this core's own hits/misses.
        self._compiler_baseline = None if compiler is None else compiler.stats.snapshot()
        self.tester = build_tester(
            source_program, config, source_cache=source_cache, pool=pool, compiler=compiler
        )
        self.verifier = build_verifier(config, compiler=compiler, source_cache=source_cache)
        self.completer = build_completer(source_program, config, self.tester, self.verifier)
        self.generator = SketchGenerator(source_program, target_schema, config.sketch)

    # ------------------------------------------------------------------ unit
    def attempt(
        self,
        correspondence: ValueCorrespondence,
        weight: int,
        index: int,
        *,
        deadline: Optional[float] = None,
        cancel: Optional[threading.Event] = None,
        emit: Optional[Callable[[SessionEvent], None]] = None,
    ) -> AttemptOutcome:
        """Run one value-correspondence attempt.

        *deadline* is an absolute ``time.perf_counter()`` instant shared by
        the whole run; *cancel* is the session's cancellation event.  Both
        are checked inside the completion loop and (every sequence) inside
        bounded testing, so the attempt stops promptly mid-sketch.
        """
        summarizer = EventSummarizer()

        def record(event: SessionEvent) -> None:
            summarizer.add(event)
            if emit is not None:
                emit(event)

        record(VcSelected(index=index, weight=weight))
        try:
            sketch = self.generator.generate(correspondence)
        except SketchGenerationError as error:
            record(SketchRejected(index=index, reason=str(error)))
            return AttemptOutcome(
                record=AttemptRecord(
                    vc_weight=weight,
                    failure_reason=str(error),
                    events=summarizer.summary(),
                ),
            )
        record(
            SketchGenerated(
                index=index, holes=sketch.num_holes(), search_space=sketch.search_space_size()
            )
        )

        def on_reject(iteration: int, counterexample: Optional[InvocationSequence]) -> None:
            record(
                CandidateRejected(
                    index=index, iteration=iteration, counterexample=counterexample
                )
            )

        completion = self.completer.complete(
            sketch, deadline=deadline, cancel=cancel, on_reject=on_reject
        )

        if completion.succeeded:
            record(Solved(index=index, iterations=completion.statistics.iterations))
            failure_reason = ""
        elif completion.interrupted:
            failure_reason = (
                "cancelled" if cancel is not None and cancel.is_set() else "time limit reached"
            )
        else:
            failure_reason = "no equivalent completion"

        return AttemptOutcome(
            record=AttemptRecord(
                vc_weight=weight,
                sketch_holes=sketch.num_holes(),
                sketch_size=sketch.search_space_size(),
                iterations=completion.statistics.iterations,
                succeeded=completion.succeeded,
                failure_reason=failure_reason,
                events=summarizer.summary(),
            ),
            program=completion.program,
            iterations=completion.statistics.iterations,
            verify_time=completion.statistics.verify_time,
            interrupted=completion.interrupted,
        )

    def cache_stats(self):
        compiler_delta = None
        if self.compiler is not None:
            current = self.compiler.stats
            baseline = self._compiler_baseline
            compiler_delta = type(current)(
                function_hits=current.function_hits - baseline.function_hits,
                function_misses=current.function_misses - baseline.function_misses,
                program_hits=current.program_hits - baseline.program_hits,
            )
        return collect_cache_stats(
            self.tester.stats,
            self.pool,
            self.source_cache,
            verifier_stats=None if self.verifier is None else self.verifier.stats,
            compiler_delta=compiler_delta,
        )


# ---------------------------------------------------------------- the driver
class SynthesisSession:
    """One synthesis run as a re-entrant stream of typed progress events.

    Usage::

        session = SynthesisSession(source_program, target_schema, config)
        for event in session.events():
            ...             # consume as far as you like; pausing never
            ...             # blocks the run mid-attempt
        result = session.run()   # drain the rest and fetch the result

    Note that ``config.time_limit`` is a *wall-clock* budget measured from
    the first step: time the consumer spends paused between events counts
    against it (and lands in ``synthesis_time``).  Long-pausing consumers —
    a human-in-the-loop UI, say — should run without a time limit or use
    ``cancel()`` for their own budgets.

    ``result`` is available (and live — counters update as the run
    progresses) from the first step onward.  ``cancel()`` may be called from
    another thread or from an ``on_event`` callback; the run winds down at
    the next completion-loop iteration or tested sequence and the stream
    ends with a :class:`Cancelled` event.

    The session honours **every execution mode**.  Sequential
    configurations run the inline loop below.  With
    ``config.parallel_workers > 1`` the session delegates to the
    wave-parallel driver (:mod:`repro.core.parallel`), which executes
    attempts on worker processes through the unified execution layer and
    merges their per-attempt event streams into this session's stream in
    deterministic enumeration order: the lowest-unfinished-index attempt
    streams live, later attempts buffer until every earlier one has ended,
    so event order is a function of the trajectory, not of worker timing.
    Two parallel-mode deltas to the sequential contract: ``on_event`` fires
    from the event-router thread (not the consuming thread), and in a
    winning wave the attempts *after* the winner that were already in
    flight still contribute their (recorded) events after the winner's
    :class:`Solved` — with ``parallel_wave_size=1`` neither delta is
    observable and the stream is byte-equal to the sequential one.
    ``migrate()`` / ``Synthesizer.synthesize`` drain a session in *all*
    configurations; there is no separate parallel entry point anymore.
    """

    def __init__(
        self,
        source_program: Program,
        target_schema: Schema,
        config: SynthesisConfig | None = None,
        *,
        core: SessionCore | None = None,
        on_event: Optional[Callable[[SessionEvent], None]] = None,
        cancel_signal=None,
    ):
        self.source_program = source_program
        self.target_schema = target_schema
        self.config = config or SynthesisConfig()
        self._core = core
        self._on_event = on_event
        # *cancel_signal* injects an external cancellation signal — anything
        # with the ``threading.Event`` set()/is_set() surface.  The execution
        # layer passes a cross-process flag here so ``JobHandle.cancel()``
        # reaches a session running inside a pooled worker (see
        # repro.exec.channel.FlagSignal); ``cancel()`` and the cooperative
        # polling inside completion/testing go through the same object either
        # way.
        self._cancel = cancel_signal if cancel_signal is not None else threading.Event()
        #: Callbacks cancel() invokes besides setting the flag — the parallel
        #: driver registers one per wave so a cancel reaches the cross-process
        #: cancel signal of every in-flight worker task.
        self._cancel_hooks: list[Callable[[], None]] = []
        self._result = SynthesisResult(source_program=source_program, program=None)
        self._stream: Optional[Iterator[SessionEvent]] = None
        self._finished = False
        #: Set by run() when nobody observes events (no started stream, no
        #: callback): the driver then skips event buffering, so a blocking
        #: drain pays no per-candidate allocation beyond the summaries.
        self._quiet = False

    # --------------------------------------------------------------- control
    def cancel(self) -> None:
        """Request cooperative cancellation; safe from any thread."""
        self._cancel.set()
        for hook in list(self._cancel_hooks):
            hook()

    @property
    def cancelled(self) -> bool:
        return self._cancel.is_set()

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def result(self) -> SynthesisResult:
        """The (live) result object; final once the stream is exhausted."""
        return self._result

    # ---------------------------------------------------------------- stream
    def events(self) -> Iterator[SessionEvent]:
        """The session's event stream (one shared iterator, lazily started)."""
        if self._stream is None:
            self._stream = self._drive()
        return self._stream

    def __iter__(self) -> Iterator[SessionEvent]:
        return self.events()

    def run(self) -> SynthesisResult:
        """Drain the event stream and return the final result."""
        if self._stream is None:
            # No generator consumer exists, so buffering events for the
            # drain below would only feed its discarding loop; an on_event
            # callback still fires from emit() independently of the buffer.
            self._quiet = True
        for _ in self.events():
            pass
        return self._result

    @property
    def _observed(self) -> bool:
        """Does anything consume events (a started stream or a callback)?

        When false, drivers skip event construction and transport entirely —
        a blocking ``run()`` pays no per-candidate streaming overhead.
        """
        return self._on_event is not None or not self._quiet

    # ---------------------------------------------------------------- driver
    def _drive(self) -> Iterator[SessionEvent]:
        # One session, every execution mode: parallel configurations (local
        # pool or remote fleet) drive the wave front-end through the
        # execution layer; everything else (including service jobs that
        # inject a prebuilt core) runs the inline sequential loop.
        if (
            self.config.parallel_workers > 1 or self.config.execution_fleet
        ) and self._core is None:
            return self._drive_parallel()
        return self._drive_sequential()

    def _drive_parallel(self) -> Iterator[SessionEvent]:
        from repro.core.parallel import drive_parallel_session

        buffer: list[SessionEvent] = []

        def emit(event: SessionEvent) -> None:
            if not self._quiet:
                buffer.append(event)
            if self._on_event is not None:
                self._on_event(event)

        # The wave driver owns all result bookkeeping (including times and
        # merged cache stats); the session only manages event buffering and
        # the finished flag.  It yields whenever a wave has settled, i.e.
        # whenever the buffer is safe to flush (nothing concurrently emits).
        for _ in drive_parallel_session(self, emit):
            yield from self._flush(buffer)
        self._finished = True
        yield from self._flush(buffer)

    def _drive_sequential(self) -> Iterator[SessionEvent]:
        config = self.config
        result = self._result
        started = time.perf_counter()
        deadline = None if config.time_limit is None else started + config.time_limit

        core = self._core or SessionCore(self.source_program, self.target_schema, config)

        buffer: list[SessionEvent] = []

        def emit(event: SessionEvent) -> None:
            if not self._quiet:
                buffer.append(event)
            if self._on_event is not None:
                self._on_event(event)

        def finalize() -> None:
            result.synthesis_time = max(
                0.0, time.perf_counter() - started - result.verification_time
            )
            result.cache = core.cache_stats()
            self._finished = True

        try:
            enumerator = ValueCorrespondenceEnumerator(
                self.source_program,
                self.target_schema,
                alpha=config.alpha,
                engine=config.vc_engine,
                max_fanout=config.max_mapping_fanout,
            )
        except VcEnumerationError:
            emit(BudgetExhausted(reason="no value correspondences"))
            finalize()
            yield from self._flush(buffer)
            return

        terminal: Optional[SessionEvent] = None
        while True:
            if self._cancel.is_set():
                result.cancelled = True
                terminal = Cancelled()
                break
            if deadline is not None and time.perf_counter() > deadline:
                result.timed_out = True
                terminal = BudgetTimeout(elapsed=time.perf_counter() - started)
                break
            if result.value_correspondences_tried >= config.max_value_correspondences:
                terminal = BudgetExhausted(reason="max_value_correspondences reached")
                break

            candidate_vc = enumerator.next_value_corr()
            if candidate_vc is None:
                terminal = BudgetExhausted(reason="value correspondences exhausted")
                break
            result.value_correspondences_tried += 1

            outcome = core.attempt(
                candidate_vc.correspondence,
                candidate_vc.weight,
                result.value_correspondences_tried,
                deadline=deadline,
                cancel=self._cancel,
                emit=emit,
            )
            result.attempts.append(outcome.record)
            result.iterations += outcome.iterations
            result.verification_time += outcome.verify_time

            if outcome.program is not None:
                result.program = outcome.program
                result.correspondence = candidate_vc.correspondence
                break
            if outcome.interrupted:
                if self._cancel.is_set():
                    result.cancelled = True
                    terminal = Cancelled()
                else:
                    result.timed_out = True
                    terminal = BudgetTimeout(elapsed=time.perf_counter() - started)
                break
            yield from self._flush(buffer)

        if terminal is not None:
            emit(terminal)
        finalize()
        yield from self._flush(buffer)

    @staticmethod
    def _flush(buffer: list[SessionEvent]) -> Iterator[SessionEvent]:
        # Snapshot-and-clear: nothing emits into the buffer while the
        # generator is suspended at a yield, so draining a copy is safe and
        # keeps the flush linear (pop(0) per event would be quadratic).
        pending = buffer[:]
        buffer.clear()
        yield from pending
