"""The Migrator synthesizer: configuration, results, Algorithm 1, and the
streaming session core shared by the sequential and parallel drivers."""

from repro.core.config import SynthesisConfig
from repro.core.result import AttemptRecord, SynthesisResult
from repro.core.session import (
    BudgetExhausted,
    BudgetTimeout,
    Cancelled,
    CandidateRejected,
    SessionCore,
    SessionEvent,
    SketchGenerated,
    SketchRejected,
    Solved,
    SynthesisSession,
    VcSelected,
)
from repro.core.synthesizer import Synthesizer, migrate

__all__ = [
    "AttemptRecord",
    "BudgetExhausted",
    "BudgetTimeout",
    "Cancelled",
    "CandidateRejected",
    "SessionCore",
    "SessionEvent",
    "SketchGenerated",
    "SketchRejected",
    "Solved",
    "SynthesisConfig",
    "SynthesisResult",
    "SynthesisSession",
    "Synthesizer",
    "VcSelected",
    "migrate",
]
