"""The Migrator synthesizer: configuration, results, and Algorithm 1."""

from repro.core.config import SynthesisConfig
from repro.core.parallel import synthesize_parallel
from repro.core.result import AttemptRecord, SynthesisResult
from repro.core.synthesizer import Synthesizer, migrate

__all__ = [
    "AttemptRecord",
    "SynthesisConfig",
    "SynthesisResult",
    "Synthesizer",
    "migrate",
    "synthesize_parallel",
]
