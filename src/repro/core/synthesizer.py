"""The top-level synthesis algorithm (Algorithm 1 of the paper).

``Synthesizer.synthesize`` runs the paper's ``Synthesize(P, S, S')``
procedure.  Since the streaming-session redesign the actual loop lives in
:mod:`repro.core.session`: a :class:`~repro.core.session.SynthesisSession`
drives the shared :class:`~repro.core.session.SessionCore` (VC enumeration →
sketch generation → completion → testing/verification) and emits typed
progress events; ``synthesize`` simply drains such a session, so the
blocking call and the event-streaming API return byte-identical results —
same trajectory, same :class:`~repro.core.result.AttemptRecord` list.

That holds in **every** configuration: with ``config.parallel_workers > 1``
the session itself drives the wave-parallel front-end
(:mod:`repro.core.parallel`) through the unified execution layer, so there
is no separate parallel entry point — ``migrate()`` is a thin drain of a
session whether the run is sequential, parallel, streamed, or blocking.

The pipeline builders (``build_tester`` / ``build_verifier`` /
``build_completer``) are re-exported from the session module for backwards
compatibility.
"""

from __future__ import annotations

from repro.core.config import SynthesisConfig
from repro.core.result import SynthesisResult
from repro.core.session import (  # noqa: F401  (re-exported for compatibility)
    COMPLETER_CLASSES,
    SynthesisSession,
    build_completer,
    build_tester,
    build_verifier,
)
from repro.datamodel.schema import Schema
from repro.lang.ast import Program


class Synthesizer:
    """Synthesizes a target-schema version of a database program."""

    def __init__(self, config: SynthesisConfig | None = None):
        self.config = config or SynthesisConfig()

    # ---------------------------------------------------------------- pipeline
    def synthesize(self, source_program: Program, target_schema: Schema) -> SynthesisResult:
        """The ``Synthesize(P, S, S')`` procedure: drain a session."""
        return SynthesisSession(source_program, target_schema, self.config).run()

    def session(self, source_program: Program, target_schema: Schema) -> SynthesisSession:
        """A streaming session for the same run ``synthesize`` would perform."""
        return SynthesisSession(source_program, target_schema, self.config)


def migrate(
    source_program: Program,
    target_schema: Schema,
    config: SynthesisConfig | None = None,
) -> SynthesisResult:
    """Convenience one-call API: synthesize the migrated program."""
    return Synthesizer(config).synthesize(source_program, target_schema)
