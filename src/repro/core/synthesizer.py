"""The top-level synthesis algorithm (Algorithm 1 of the paper).

``Synthesizer.synthesize`` lazily enumerates value correspondences between
the source and target schemas, generates a program sketch for each candidate
correspondence, and attempts to complete the sketch into a program that is
equivalent to the source program.  The first completion that passes testing
(and, optionally, the deeper verification pass) is returned.

On top of Algorithm 1 the synthesizer owns the run's incremental-testing
state (:mod:`repro.testing_cache`): one counterexample pool and one shared
source-output cache serve every completion attempt of the run, so a failing
input discovered on an early sketch screens out candidates of every later
sketch.  With ``config.parallel_workers > 1`` the run is delegated to the
parallel front-end (:mod:`repro.core.parallel`), which explores several
value correspondences concurrently and merges worker-discovered
counterexamples back into the pool between waves.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.baselines.bmc import BmcCompleter
from repro.completion.enumerative import EnumerativeCompleter
from repro.completion.solver import SketchCompleter
from repro.core.config import SynthesisConfig
from repro.core.result import AttemptRecord, SynthesisResult
from repro.correspondence.enumerator import ValueCorrespondenceEnumerator, VcEnumerationError
from repro.datamodel.schema import Schema
from repro.engine.compiler import ProgramCompiler
from repro.equivalence.tester import BoundedTester
from repro.equivalence.verifier import BoundedVerifier
from repro.lang.ast import Program
from repro.sketchgen.generator import SketchGenerationError, SketchGenerator
from repro.testing_cache import CounterexamplePool, SourceOutputCache, collect_cache_stats

COMPLETER_CLASSES = {
    "mfi": SketchCompleter,
    "enumerative": EnumerativeCompleter,
    "bmc": BmcCompleter,
}


def build_tester(
    source_program: Program,
    config: SynthesisConfig,
    *,
    source_cache: SourceOutputCache | None = None,
    pool: CounterexamplePool | None = None,
    compiler=None,
) -> BoundedTester:
    """The run's bounded tester, wired to the shared incremental-testing state.

    *compiler* optionally shares a :class:`~repro.engine.compiler.ProgramCompiler`
    (and thus its compiled-function cache) across testers — parallel workers
    pass a process-global one so candidates sharing function ASTs across
    tasks compile once per process.
    """
    return BoundedTester(
        source_program,
        seeds=config.tester_seeds,
        max_updates=config.tester_max_updates,
        relevance_filter=config.relevance_filter,
        source_cache=source_cache,
        pool=pool,
        pool_screening_budget=config.pool_screening_budget,
        execution_backend=config.execution_backend,
        compiler=compiler,
    )


def build_verifier(config: SynthesisConfig, *, compiler=None) -> Optional[BoundedVerifier]:
    if not config.final_verification:
        return None
    return BoundedVerifier(
        max_updates=config.verifier_max_updates,
        random_sequences=config.verifier_random_sequences,
        relevance_filter=config.relevance_filter,
        execution_backend=config.execution_backend,
        compiler=compiler,
    )


def build_completer(source_program: Program, config: SynthesisConfig, tester, verifier):
    if config.completion_strategy not in COMPLETER_CLASSES:
        raise ValueError(f"unknown completion strategy {config.completion_strategy!r}")
    # The verifier participates in the completion loop (Algorithm 2): a
    # candidate that passes bounded testing but fails the deeper
    # verification pass is blocked like any other failing candidate.
    return COMPLETER_CLASSES[config.completion_strategy](
        source_program,
        tester=tester,
        verifier=verifier,
        consistency_constraints=config.consistency_constraints,
        max_iterations=config.max_iterations_per_sketch,
        time_limit=config.sketch_time_limit,
    )


class Synthesizer:
    """Synthesizes a target-schema version of a database program."""

    def __init__(self, config: SynthesisConfig | None = None):
        self.config = config or SynthesisConfig()

    # ---------------------------------------------------------------- pipeline
    def synthesize(self, source_program: Program, target_schema: Schema) -> SynthesisResult:
        """The ``Synthesize(P, S, S')`` procedure."""
        config = self.config
        if config.parallel_workers > 1:
            from repro.core.parallel import synthesize_parallel

            return synthesize_parallel(source_program, target_schema, config)

        result = SynthesisResult(source_program=source_program, program=None)
        started = time.perf_counter()

        pool = CounterexamplePool(config.pool_max_size) if config.counterexample_pool else None
        source_cache = SourceOutputCache(config.source_cache_max_entries)
        # One compiler per run: tester and verifier share the compiled-function
        # cache, so a candidate verified right after testing compiles once.
        compiler = ProgramCompiler() if config.execution_backend == "compiled" else None
        tester = build_tester(
            source_program, config, source_cache=source_cache, pool=pool, compiler=compiler
        )
        verifier = build_verifier(config, compiler=compiler)
        completer = build_completer(source_program, config, tester, verifier)
        generator = SketchGenerator(source_program, target_schema, config.sketch)

        try:
            enumerator = ValueCorrespondenceEnumerator(
                source_program,
                target_schema,
                alpha=config.alpha,
                engine=config.vc_engine,
                max_fanout=config.max_mapping_fanout,
            )
        except VcEnumerationError:
            result.synthesis_time = time.perf_counter() - started
            return result

        while True:
            if config.time_limit is not None and time.perf_counter() - started > config.time_limit:
                result.timed_out = True
                break
            if result.value_correspondences_tried >= config.max_value_correspondences:
                break

            candidate_vc = enumerator.next_value_corr()
            if candidate_vc is None:
                break
            result.value_correspondences_tried += 1

            try:
                sketch = generator.generate(candidate_vc.correspondence)
            except SketchGenerationError as error:
                result.attempts.append(
                    AttemptRecord(candidate_vc.weight, 0, 0, 0, False, str(error))
                )
                continue

            completion = completer.complete(sketch)
            result.iterations += completion.statistics.iterations
            result.verification_time += completion.statistics.verify_time
            result.attempts.append(
                AttemptRecord(
                    candidate_vc.weight,
                    sketch.num_holes(),
                    sketch.search_space_size(),
                    completion.statistics.iterations,
                    completion.succeeded,
                    "" if completion.succeeded else "no equivalent completion",
                )
            )

            if completion.succeeded:
                assert completion.program is not None
                result.program = completion.program
                result.correspondence = candidate_vc.correspondence
                break

        result.synthesis_time = max(
            0.0, time.perf_counter() - started - result.verification_time
        )
        result.cache = collect_cache_stats(tester.stats, pool, source_cache)
        return result


def migrate(
    source_program: Program,
    target_schema: Schema,
    config: SynthesisConfig | None = None,
) -> SynthesisResult:
    """Convenience one-call API: synthesize the migrated program."""
    return Synthesizer(config).synthesize(source_program, target_schema)
