"""Parallel exploration of value correspondences (the scale front-end).

Algorithm 1 explores value correspondences strictly in order of likelihood;
on the larger benchmarks the first few correspondences are close in weight
and each costs an independent sketch completion, which makes them ideal
parallel work units.  This module dispatches the top-k candidate
correspondences to worker processes in *waves*:

* every worker receives a snapshot of the cross-sketch counterexample pool,
  so failing inputs discovered on earlier waves screen candidates
  everywhere;
* when a wave finishes, every counterexample discovered by any worker —
  including the failed attempts — is merged back into the shared pool before
  the next wave is dispatched;
* the result is deterministic: within a wave the success with the smallest
  enumeration index (i.e. the most likely correspondence) wins, regardless
  of which worker finished first.

Each worker executes its attempt through the same
:class:`~repro.core.session.SessionCore` unit that the sequential
:class:`~repro.core.session.SynthesisSession` drives — the parallel path is
a different *scheduler* over the identical per-attempt behaviour, not a
separate code path.  Since the unified execution layer, that scheduler is
the shared :class:`~repro.exec.WorkScheduler`: waves are submitted with
``priority=index`` (so dispatch order equals enumeration order) and the
run's wall-clock budget as each task's deadline, and workers honour the
cross-process cooperative cancel signal the scheduler raises past the
deadline.  Workers rebuild the core from the pickled configuration;
programs, schemas and invocation sequences are plain picklable dataclasses
and tuples.  If the platform cannot start worker processes at all, the
front-end degrades to the sequential synthesizer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.config import SynthesisConfig
from repro.core.result import AttemptRecord, SynthesisResult
from repro.core.session import SessionCore
from repro.correspondence.enumerator import ValueCorrespondenceEnumerator, VcEnumerationError
from repro.correspondence.value_corr import ValueCorrespondence
from repro.datamodel.schema import Schema
from repro.equivalence.invocation import InvocationSequence
from repro.exec import ExecutorUnavailable, TaskState, WorkScheduler
from repro.exec.compat import FuturesTimeoutError as FuturesTimeout  # noqa: F401  (compat re-export)
from repro.lang.ast import Program
from repro.testing_cache import (
    CounterexamplePool,
    SourceOutputCache,
    TestingCacheStats,
)


@dataclass
class _WorkerTask:
    """One value-correspondence attempt shipped to a worker process."""

    index: int
    source_program: Program
    target_schema: Schema
    correspondence: ValueCorrespondence
    vc_weight: int
    config: SynthesisConfig
    pool_snapshot: list[InvocationSequence]
    #: Absolute wall-clock deadline (``time.time()`` base, comparable across
    #: processes).  A relative budget would restart from the worker's own
    #: start time, letting tasks queued behind busy workers overshoot the
    #: synthesis time limit by a full extra budget.
    wall_deadline: Optional[float]


@dataclass
class _WorkerOutcome:
    """What one worker sends back for the merge."""

    index: int
    attempt: AttemptRecord
    program: Optional[Program] = None
    correspondence: Optional[ValueCorrespondence] = None
    iterations: int = 0
    verify_time: float = 0.0
    counterexamples: list[InvocationSequence] = field(default_factory=list)
    cache: TestingCacheStats = field(default_factory=TestingCacheStats)


#: Per-worker-process source-output cache, shared across the tasks a worker
#: executes so the source program is not re-run on the same sequences for
#: every value correspondence (keys include the program fingerprint, so
#: reuse across tasks is sound).
_worker_source_cache: Optional[SourceOutputCache] = None

#: Per-worker-process program compiler (compiled execution backend): the
#: per-function compiled-closure cache survives across tasks, so candidates
#: of later waves that share function ASTs with earlier ones skip
#: recompilation.  Caching is keyed by (schema signature, function value), so
#: reuse across tasks works even though each pickled task carries fresh
#: program and schema objects.
_worker_compiler = None


def _worker_cache(max_entries: int) -> SourceOutputCache:
    global _worker_source_cache
    if _worker_source_cache is None:
        _worker_source_cache = SourceOutputCache(max_entries)
    elif max_entries > _worker_source_cache.max_entries:
        # Capacity only grows (put() reads max_entries live), mirroring the
        # in-process service: replacing the cache on a smaller request would
        # throw away the cross-task reuse this process global exists for.
        _worker_source_cache.max_entries = max_entries
    return _worker_source_cache


def _worker_program_compiler(config: SynthesisConfig):
    global _worker_compiler
    if config.execution_backend != "compiled":
        return None
    if _worker_compiler is None:
        from repro.engine.compiler import ProgramCompiler

        _worker_compiler = ProgramCompiler()
    return _worker_compiler


def _explore_correspondence(task: _WorkerTask, ctx) -> _WorkerOutcome:
    """Worker entry point: run one session-core attempt for one correspondence.

    *ctx* is the :class:`~repro.exec.WorkContext` the scheduler provides:
    its cancel signal is threaded into the attempt (so a deadline nudge or a
    caller-side cancel stops the completion loop mid-sketch), and its
    ``emit`` is unused — wave results are merged post-hoc, event streaming
    is the service's concern.
    """
    config = task.config
    pool = CounterexamplePool(config.pool_max_size) if config.counterexample_pool else None
    if pool is not None:
        pool.merge(task.pool_snapshot)
        # Stats must reflect this worker's own discoveries, not the snapshot.
        pool.stats.added = 0
        pool.stats.duplicates = 0
    source_cache = _worker_cache(config.source_cache_max_entries)
    compiler = _worker_program_compiler(config)

    deadline: Optional[float] = None
    if task.wall_deadline is not None:
        remaining = task.wall_deadline - time.time()
        if remaining <= 0:
            return _WorkerOutcome(
                task.index,
                AttemptRecord(vc_weight=task.vc_weight, failure_reason="time limit reached"),
            )
        # Convert the cross-process wall-clock deadline into this process's
        # perf_counter base; the core threads it through completion and
        # testing, so even one long enumeration self-limits.
        deadline = time.perf_counter() + remaining

    core = SessionCore(
        task.source_program,
        task.target_schema,
        config,
        pool=pool,
        source_cache=source_cache,
        compiler=compiler,
    )
    outcome = core.attempt(
        task.correspondence,
        task.vc_weight,
        task.index,
        deadline=deadline,
        cancel=ctx.cancel_event,
    )

    fresh: list[InvocationSequence] = []
    if pool is not None:
        # Ship back only sequences this worker discovered (the snapshot is
        # already in the parent's pool).
        seen = set(task.pool_snapshot)
        fresh = [sequence for sequence in pool.snapshot() if sequence not in seen]
    return _WorkerOutcome(
        task.index,
        outcome.record,
        program=outcome.program,
        correspondence=task.correspondence if outcome.program is not None else None,
        iterations=outcome.iterations,
        verify_time=outcome.verify_time,
        counterexamples=fresh,
        cache=core.cache_stats(),
    )


def synthesize_parallel(
    source_program: Program, target_schema: Schema, config: SynthesisConfig
) -> SynthesisResult:
    """Algorithm 1 with wave-parallel value-correspondence exploration."""
    result = SynthesisResult(source_program=source_program, program=None)
    started = time.perf_counter()
    workers = max(1, config.parallel_workers)
    wave_size = config.parallel_wave_size or workers

    pool = CounterexamplePool(config.pool_max_size) if config.counterexample_pool else None
    merged_cache = TestingCacheStats()

    try:
        enumerator = ValueCorrespondenceEnumerator(
            source_program,
            target_schema,
            alpha=config.alpha,
            engine=config.vc_engine,
            max_fanout=config.max_mapping_fanout,
        )
    except VcEnumerationError:
        result.synthesis_time = time.perf_counter() - started
        return result

    def remaining_budget() -> Optional[float]:
        if config.time_limit is None:
            return None
        return config.time_limit - (time.perf_counter() - started)

    def degrade_to_sequential() -> SynthesisResult:
        # Rare escape hatch (worker processes unavailable or crashed): restart
        # sequentially, but only with whatever budget this run has left — the
        # caller asked for one time limit, not one per strategy.
        from repro.core.synthesizer import Synthesizer

        remaining = remaining_budget()
        if remaining is not None and remaining <= 0:
            result.timed_out = True
            result.synthesis_time = time.perf_counter() - started
            return result
        return Synthesizer(
            replace(config, parallel_workers=0, time_limit=remaining)
        ).synthesize(source_program, target_schema)

    with WorkScheduler(max_workers=workers) as scheduler:
        exhausted = False
        while not exhausted:
            budget = remaining_budget()
            if budget is not None and budget <= 0:
                result.timed_out = True
                break
            wall_deadline = None if budget is None else time.time() + budget

            wave: list[_WorkerTask] = []
            while len(wave) < wave_size:
                if result.value_correspondences_tried >= config.max_value_correspondences:
                    exhausted = True
                    break
                candidate_vc = enumerator.next_value_corr()
                if candidate_vc is None:
                    exhausted = True
                    break
                result.value_correspondences_tried += 1
                wave.append(
                    _WorkerTask(
                        index=result.value_correspondences_tried,
                        source_program=source_program,
                        target_schema=target_schema,
                        correspondence=candidate_vc.correspondence,
                        vc_weight=candidate_vc.weight,
                        config=config,
                        pool_snapshot=pool.snapshot() if pool is not None else [],
                        wall_deadline=wall_deadline,
                    )
                )
            if not wave:
                break

            # One wave = one scheduler drain.  priority=index makes dispatch
            # order equal enumeration order, so wave determinism (smallest
            # successful index wins below) does not depend on worker timing.
            # Worker processes spawn lazily at dispatch, so a platform that
            # cannot start processes surfaces as ExecutorUnavailable here.
            handles = [
                scheduler.submit(
                    _explore_correspondence,
                    task,
                    priority=task.index,
                    deadline=wall_deadline,
                    name=f"vc-{task.index}",
                )
                for task in wave
            ]
            try:
                scheduler.drain(wait_deadline=wall_deadline)
            except ExecutorUnavailable:
                return degrade_to_sequential()

            winner: Optional[_WorkerOutcome] = None
            timed_out_mid_wave = False
            for handle in handles:  # submission order == likelihood order
                if handle.state is TaskState.DONE:
                    outcome: _WorkerOutcome = handle.result
                elif handle.state is TaskState.FAILED:
                    raise handle.exception  # worker bug: do not mask it
                else:  # EXPIRED / CANCELLED: the run's budget cut the wave
                    timed_out_mid_wave = True
                    continue
                result.attempts.append(outcome.attempt)
                result.iterations += outcome.iterations
                result.verification_time += outcome.verify_time
                merged_cache.merge(outcome.cache)
                if pool is not None:
                    pool.merge(outcome.counterexamples)
                if winner is None and outcome.program is not None:
                    winner = outcome

            if winner is not None:
                result.program = winner.program
                result.correspondence = winner.correspondence
                break
            if timed_out_mid_wave:
                result.timed_out = True
                break

    if (
        result.program is None
        and config.time_limit is not None
        and time.perf_counter() - started > config.time_limit
    ):
        # Mirror the sequential synthesizer: a run cut short by the budget —
        # including mid-wave, where workers were handed a clipped time budget
        # — reports a timeout, not a plain failure.
        result.timed_out = True
    result.synthesis_time = max(
        0.0, time.perf_counter() - started - result.verification_time
    )
    if pool is not None:
        merged_cache.pool_size = len(pool)
        # Unique counterexamples across the whole run (worker-local counts in
        # merged_cache may double-count a sequence found by two workers).
        merged_cache.pool_added = pool.stats.added
    result.cache = merged_cache
    result.parallel_workers_used = workers
    return result
