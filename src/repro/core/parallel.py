"""Wave-parallel exploration of value correspondences (the scale driver).

Algorithm 1 explores value correspondences strictly in order of likelihood;
on the larger benchmarks the first few correspondences are close in weight
and each costs an independent sketch completion, which makes them ideal
parallel work units.  This module is the **parallel driver** behind
:class:`~repro.core.session.SynthesisSession`: with
``config.parallel_workers > 1`` the session delegates its run to
:func:`drive_parallel_session`, which dispatches the top-k candidate
correspondences to worker processes in *waves* through the shared
:class:`~repro.exec.WorkScheduler`:

* every worker receives a snapshot of the cross-sketch counterexample pool,
  so failing inputs discovered on earlier waves screen candidates
  everywhere;
* when a wave finishes, every counterexample discovered by any worker —
  including the failed attempts — is merged back into the shared pool before
  the next wave is dispatched;
* the result is deterministic: within a wave the success with the smallest
  enumeration index (i.e. the most likely correspondence) wins, regardless
  of which worker finished first.

Since API v2 the parallel driver **streams**: each worker publishes its
per-attempt typed events through the :class:`~repro.exec.WorkContext`
channel the scheduler hands it, and the parent merges the per-task streams
into one deterministically ordered stream with an
:class:`~repro.exec.OrderedEventMerger` — events appear in enumeration-index
order (the order the sequential driver would produce), the
lowest-unfinished-index attempt streams *live*, and higher-index attempts
buffer until every earlier attempt has ended.  Event order is therefore a
pure function of the trajectory, not of worker timing; with
``parallel_wave_size=1`` and pooling off the merged stream is byte-equal to
the sequential session's (pinned by tests/test_session.py).

Each worker executes its attempt through the same
:class:`~repro.core.session.SessionCore` unit that the sequential driver
uses — the parallel path is a different *scheduler* over the identical
per-attempt behaviour, not a separate code path.  Waves are submitted with
``priority=index`` (so dispatch order equals enumeration order) and the
run's wall-clock budget as each task's deadline, and workers honour the
cross-process cooperative cancel signal the scheduler raises past the
deadline (or that :meth:`SynthesisSession.cancel` raises mid-wave).
Workers rebuild the core from the pickled configuration; programs, schemas
and invocation sequences are plain picklable dataclasses and tuples.  If
the platform cannot start worker processes at all, the driver degrades to a
sequential session over the remaining budget (forwarding its events into
the same stream).
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Callable, Iterator, Optional

from repro.core.config import SynthesisConfig
from repro.core.result import AttemptRecord, SynthesisResult
from repro.core.session import (
    BudgetExhausted,
    BudgetTimeout,
    Cancelled,
    ExecutionDegraded,
    SessionCore,
    SessionEvent,
)
from repro.correspondence.enumerator import ValueCorrespondenceEnumerator, VcEnumerationError
from repro.correspondence.value_corr import ValueCorrespondence
from repro.datamodel.schema import Schema
from repro.equivalence.invocation import InvocationSequence
from repro.exec import (
    ExecutorUnavailable,
    OrderedEventMerger,
    TaskState,
    WorkScheduler,
)
from repro.exec import faults
from repro.exec.compat import FuturesTimeoutError as FuturesTimeout  # noqa: F401  (compat re-export)
from repro.lang.ast import Program
from repro.testing_cache import (
    CounterexamplePool,
    SourceOutputCache,
    TestingCacheStats,
)


@dataclass(frozen=True)
class AttemptStreamEnd:
    """Worker-emitted marker: one attempt's event stream is complete.

    Internal to the parallel driver — it travels through the same channel as
    the typed session events (so ordering with respect to them is exact) but
    is consumed by the parent-side merge and never reaches subscribers.
    ``channel_critical`` exempts it from backpressure load-shedding: a shed
    end marker would stall the live ordered merge for the rest of the wave.
    """

    #: Never load-shed by the queue transport (see repro.exec.channel).
    channel_critical = True

    index: int


@dataclass
class _WorkerTask:
    """One value-correspondence attempt shipped to a worker process."""

    index: int
    source_program: Program
    target_schema: Schema
    correspondence: ValueCorrespondence
    vc_weight: int
    config: SynthesisConfig
    pool_snapshot: list[InvocationSequence]
    #: Absolute wall-clock deadline (``time.time()`` base, comparable across
    #: processes).  A relative budget would restart from the worker's own
    #: start time, letting tasks queued behind busy workers overshoot the
    #: synthesis time limit by a full extra budget.
    wall_deadline: Optional[float]


@dataclass
class _WorkerOutcome:
    """What one worker sends back for the merge."""

    index: int
    attempt: AttemptRecord
    program: Optional[Program] = None
    correspondence: Optional[ValueCorrespondence] = None
    iterations: int = 0
    verify_time: float = 0.0
    counterexamples: list[InvocationSequence] = field(default_factory=list)
    cache: TestingCacheStats = field(default_factory=TestingCacheStats)


#: Per-worker-process source-output cache, shared across the tasks a worker
#: executes so the source program is not re-run on the same sequences for
#: every value correspondence (keys include the program fingerprint, so
#: reuse across tasks is sound).
_worker_source_cache: Optional[SourceOutputCache] = None

#: Per-worker-process program compiler (compiled execution backend): the
#: per-function compiled-closure cache survives across tasks, so candidates
#: of later waves that share function ASTs with earlier ones skip
#: recompilation.  Caching is keyed by (schema signature, function value), so
#: reuse across tasks works even though each pickled task carries fresh
#: program and schema objects.
_worker_compiler = None


def _worker_cache(max_entries: int) -> SourceOutputCache:
    global _worker_source_cache
    if _worker_source_cache is None:
        _worker_source_cache = SourceOutputCache(max_entries)
    elif max_entries > _worker_source_cache.max_entries:
        # Capacity only grows (put() reads max_entries live), mirroring the
        # in-process service: replacing the cache on a smaller request would
        # throw away the cross-task reuse this process global exists for.
        _worker_source_cache.max_entries = max_entries
    return _worker_source_cache


def _worker_program_compiler(config: SynthesisConfig):
    global _worker_compiler
    if config.execution_backend not in ("compiled", "columnar"):
        return None
    if _worker_compiler is None:
        from repro.engine.compiler import ProgramCompiler

        _worker_compiler = ProgramCompiler()
    return _worker_compiler


def _explore_correspondence(task: _WorkerTask, ctx) -> _WorkerOutcome:
    """Worker entry point: run one session-core attempt for one correspondence.

    *ctx* is the :class:`~repro.exec.WorkContext` the scheduler provides:
    its cancel signal is threaded into the attempt (so a deadline nudge or a
    caller-side cancel stops the completion loop mid-sketch), and its
    ``emit`` publishes the attempt's typed events to the parent-side merge
    when the session is observed (``ctx.streaming``), terminated by one
    :class:`AttemptStreamEnd` marker.
    """
    config = task.config
    pool = CounterexamplePool(config.pool_max_size) if config.counterexample_pool else None
    if pool is not None:
        pool.merge(task.pool_snapshot)
        # Stats must reflect this worker's own discoveries, not the snapshot.
        pool.stats.added = 0
        pool.stats.duplicates = 0
    source_cache = _worker_cache(config.source_cache_max_entries)
    compiler = _worker_program_compiler(config)

    deadline: Optional[float] = None
    if task.wall_deadline is not None:
        remaining = task.wall_deadline - time.time()
        if remaining <= 0:
            if ctx.streaming:
                ctx.emit(AttemptStreamEnd(task.index))
            return _WorkerOutcome(
                task.index,
                AttemptRecord(vc_weight=task.vc_weight, failure_reason="time limit reached"),
            )
        # Convert the cross-process wall-clock deadline into this process's
        # perf_counter base; the core threads it through completion and
        # testing, so even one long enumeration self-limits.
        deadline = time.perf_counter() + remaining

    core = SessionCore(
        task.source_program,
        task.target_schema,
        config,
        pool=pool,
        source_cache=source_cache,
        compiler=compiler,
    )
    try:
        outcome = core.attempt(
            task.correspondence,
            task.vc_weight,
            task.index,
            deadline=deadline,
            cancel=ctx.cancel_event,
            emit=ctx.emit if ctx.streaming else None,
        )
    finally:
        if ctx.streaming:
            ctx.emit(AttemptStreamEnd(task.index))

    fresh: list[InvocationSequence] = []
    if pool is not None:
        # Ship back only sequences this worker discovered (the snapshot is
        # already in the parent's pool).
        seen = set(task.pool_snapshot)
        fresh = [sequence for sequence in pool.snapshot() if sequence not in seen]
    return _WorkerOutcome(
        task.index,
        outcome.record,
        program=outcome.program,
        correspondence=task.correspondence if outcome.program is not None else None,
        iterations=outcome.iterations,
        verify_time=outcome.verify_time,
        counterexamples=fresh,
        cache=core.cache_stats(),
    )


# --------------------------------------------------------------- the driver
def drive_parallel_session(
    session, emit: Callable[[SessionEvent], None]
) -> Iterator[None]:
    """Drive one :class:`SynthesisSession` run with wave-parallel exploration.

    Generator protocol (consumed by ``SynthesisSession._drive_parallel``):
    mutates ``session.result`` exactly like the sequential driver does,
    pushes merged typed events through *emit* (live, in deterministic
    enumeration order — see the module docstring), and yields once whenever
    the session's buffered events are ready to flush to generator consumers
    (after each wave settles, and after the terminal event).

    On :class:`~repro.exec.ExecutorUnavailable` the driver degrades to a
    fresh sequential session over the remaining budget, forwarding its
    events into the same stream and adopting its result wholesale (matching
    the caller's single time budget, not one per strategy).
    """
    config: SynthesisConfig = session.config
    result: SynthesisResult = session.result
    started = time.perf_counter()
    if config.execution_fleet:
        # Remote fleet: parallel_workers only caps concurrent leases (0 = the
        # fleet's live capacity decides); the scheduler owns the fleet it
        # builds from the address list and closes it with itself.
        workers = max(0, config.parallel_workers)
        wave_size = config.parallel_wave_size or max(2, workers)
    else:
        workers = max(2, config.parallel_workers)
        wave_size = config.parallel_wave_size or workers
    observed: bool = session._observed

    result.parallel_workers_used = workers
    pool = CounterexamplePool(config.pool_max_size) if config.counterexample_pool else None
    merged_cache = TestingCacheStats()

    def remaining_budget() -> Optional[float]:
        if config.time_limit is None:
            return None
        return config.time_limit - (time.perf_counter() - started)

    def finalize_times() -> None:
        result.synthesis_time = max(
            0.0, time.perf_counter() - started - result.verification_time
        )

    try:
        enumerator = ValueCorrespondenceEnumerator(
            session.source_program,
            session.target_schema,
            alpha=config.alpha,
            engine=config.vc_engine,
            max_fanout=config.max_mapping_fanout,
        )
    except VcEnumerationError:
        emit(BudgetExhausted(reason="no value correspondences"))
        finalize_times()
        result.cache = merged_cache
        yield
        return

    merger = OrderedEventMerger(emit) if observed else None

    def subscriber_for(index: int):
        """Route one task's channel traffic into the ordered merge."""
        if merger is None:
            return None

        def deliver(event, _index=index):
            if isinstance(event, AttemptStreamEnd):
                merger.end(_index)
            else:
                merger.deliver(_index, event)

        return deliver

    def retry_hook_for(index: int):
        if merger is None:
            return None
        return lambda _task, _index=index: merger.restart(_index)

    terminal: Optional[SessionEvent] = None
    degrade = False
    degrade_from = "pool"
    degrade_reason = "worker processes unavailable"
    resilience = config.resilience
    with WorkScheduler(
        max_workers=workers,
        fleet=tuple(config.execution_fleet) if config.execution_fleet else None,
        retry=resilience.retry,
        timeout=resilience.timeout,
        # The scheduler walks the fleet -> pool rung itself; the final
        # pool -> sequential rung stays here (the sequential fallback
        # re-plans the run rather than replaying pooled tasks).
        degrade=resilience.degrade_ladder,
        degrade_workers=resilience.degrade_workers,
        on_degrade=lambda from_mode, to_mode, reason: emit(
            ExecutionDegraded(from_mode=from_mode, to_mode=to_mode, reason=reason)
        ),
    ) as scheduler:
        inflight: list = []

        def cancel_inflight() -> None:
            # session.cancel() raises the cross-process cancel signal of
            # every task currently running (and skips the still-pending
            # ones); the wave-top check below then ends the run.
            for handle in list(inflight):
                handle.cancel()

        session._cancel_hooks.append(cancel_inflight)
        try:
            exhausted_reason: Optional[str] = None
            while True:
                if session.cancelled:
                    result.cancelled = True
                    terminal = Cancelled()
                    break
                budget = remaining_budget()
                if budget is not None and budget <= 0:
                    result.timed_out = True
                    terminal = BudgetTimeout(elapsed=time.perf_counter() - started)
                    break
                wall_deadline = None if budget is None else time.time() + budget

                wave: list[_WorkerTask] = []
                while len(wave) < wave_size and exhausted_reason is None:
                    if result.value_correspondences_tried >= config.max_value_correspondences:
                        exhausted_reason = "max_value_correspondences reached"
                        break
                    candidate_vc = enumerator.next_value_corr()
                    if candidate_vc is None:
                        exhausted_reason = "value correspondences exhausted"
                        break
                    result.value_correspondences_tried += 1
                    wave.append(
                        _WorkerTask(
                            index=result.value_correspondences_tried,
                            source_program=session.source_program,
                            target_schema=session.target_schema,
                            correspondence=candidate_vc.correspondence,
                            vc_weight=candidate_vc.weight,
                            config=config,
                            pool_snapshot=pool.snapshot() if pool is not None else [],
                            wall_deadline=wall_deadline,
                        )
                    )
                if not wave:
                    break

                # One wave = one scheduler drain.  priority=index makes
                # dispatch order equal enumeration order, so wave determinism
                # (smallest successful index wins below) does not depend on
                # worker timing.  The merger is primed in the same order, so
                # the event stream is index-ordered too.  Worker processes
                # spawn lazily at dispatch, so a platform that cannot start
                # processes surfaces as ExecutorUnavailable here.
                if merger is not None:
                    for task in wave:
                        merger.expect(task.index)
                handles = [
                    scheduler.submit(
                        _explore_correspondence,
                        task,
                        priority=task.index,
                        deadline=wall_deadline,
                        on_event=subscriber_for(task.index),
                        on_retry=retry_hook_for(task.index),
                        name=f"vc-{task.index}",
                    )
                    for task in wave
                ]
                inflight[:] = handles
                if session.cancelled:
                    # cancel() raced the wave build/submit window: its hook
                    # saw an empty inflight list, so raise the flags now —
                    # otherwise the whole wave would run to completion.
                    cancel_inflight()
                try:
                    scheduler.drain(wait_deadline=wall_deadline)
                finally:
                    inflight[:] = []
                if merger is not None:
                    # Deliver whatever expired/failed producers left behind
                    # (tasks that ended cleanly have already flushed live).
                    merger.flush_pending()

                winner: Optional[_WorkerOutcome] = None
                interrupted_mid_wave = False
                for task, handle in zip(wave, handles):  # submission order == likelihood order
                    if handle.state is TaskState.DONE:
                        outcome: _WorkerOutcome = handle.result
                    elif handle.state is TaskState.FAILED:
                        if isinstance(handle.exception, BrokenProcessPool):
                            # Crash retries exhausted: this environment
                            # cannot keep worker processes alive.  Degrade
                            # like 1.x did instead of surfacing a raw pool
                            # error out of migrate().
                            raise ExecutorUnavailable(handle.error)
                        raise handle.exception  # worker bug: do not mask it
                    elif handle.state is TaskState.QUARANTINED:
                        # Poison attempt: it kept killing workers, so it is
                        # recorded as a failed attempt and the run moves on —
                        # quarantine bounds the damage to one correspondence.
                        result.attempts.append(
                            AttemptRecord(
                                vc_weight=task.vc_weight,
                                failure_reason=f"quarantined: {handle.error}",
                            )
                        )
                        continue
                    else:  # EXPIRED / CANCELLED: the budget or a cancel cut the wave
                        interrupted_mid_wave = True
                        continue
                    result.attempts.append(outcome.attempt)
                    result.iterations += outcome.iterations
                    result.verification_time += outcome.verify_time
                    merged_cache.merge(outcome.cache)
                    if pool is not None:
                        pool.merge(outcome.counterexamples)
                    if winner is None and outcome.program is not None:
                        winner = outcome

                if winner is not None:
                    result.program = winner.program
                    result.correspondence = winner.correspondence
                    break
                if interrupted_mid_wave:
                    if session.cancelled:
                        result.cancelled = True
                        terminal = Cancelled()
                    else:
                        result.timed_out = True
                        terminal = BudgetTimeout(elapsed=time.perf_counter() - started)
                    break
                if exhausted_reason is not None:
                    break
                yield  # wave settled: let the session flush buffered events

            if terminal is None and result.program is None:
                budget = remaining_budget()
                if session.cancelled:
                    result.cancelled = True
                    terminal = Cancelled()
                elif budget is not None and budget <= 0:
                    # Mirror the sequential driver's check order: a run cut
                    # short by the budget reports a timeout, not exhaustion.
                    result.timed_out = True
                    terminal = BudgetTimeout(elapsed=time.perf_counter() - started)
                elif exhausted_reason is not None:
                    terminal = BudgetExhausted(reason=exhausted_reason)
        except ExecutorUnavailable as error:
            degrade = True
            degrade_from = "fleet" if scheduler.fleet is not None else "pool"
            degrade_reason = str(error) or type(error).__name__
        finally:
            session._cancel_hooks.remove(cancel_inflight)
            if scheduler.fleet is not None:
                # Report the fleet width that actually served the run, not
                # the lease cap (0 = uncapped would read as "no parallelism").
                result.parallel_workers_used = scheduler.fleet.worker_count

    # The with-block folded channel stats (and fleet losses) into the
    # scheduler's lifetime counters: surface them on the result so
    # backpressure shedding and crash retries are visible, not silent.
    result.scheduler = dataclasses.asdict(scheduler.stats)
    result.degradations = scheduler.stats.degradations
    injector = faults.active()
    if injector is not None:
        result.faults_injected = injector.faults_injected

    if degrade:
        # The last rung of the ladder: tell the stream the run is stepping
        # down to sequential, then keep going — the audit trail is the event
        # (and, for service batches, the job store's degrade record), not a
        # different answer.
        emit(
            ExecutionDegraded(
                from_mode=degrade_from, to_mode="sequential", reason=degrade_reason
            )
        )
        result.degradations += 1
        _degrade_into_sequential(session, emit, remaining_budget(), started)
        if injector is not None:
            # The sequential fallback ran under the same plan: re-read the
            # counter so the result reflects the whole run's injections.
            result.faults_injected = injector.faults_injected
        yield
        return

    if terminal is not None:
        emit(terminal)
    finalize_times()
    if pool is not None:
        merged_cache.pool_size = len(pool)
        # Unique counterexamples across the whole run (worker-local counts in
        # merged_cache may double-count a sequence found by two workers).
        merged_cache.pool_added = pool.stats.added
    result.cache = merged_cache
    yield


def _degrade_into_sequential(
    session, emit: Callable[[SessionEvent], None], remaining: Optional[float], started: float
) -> None:
    """Worker processes unavailable: rerun sequentially on the leftover budget.

    The inner session's events forward into the parent stream and its result
    is adopted wholesale — the caller asked for one time limit, not one per
    strategy, and the degraded run *is* the run.  If the pool died *mid*-run
    (rather than failing to start), events of the abandoned waves were
    already emitted, so the stream restarts from enumeration index 1 at the
    degrade point: a documented anomaly of this already-pathological path —
    the post-restart events are the ones the adopted result's
    ``AttemptRecord`` list corroborates.
    """
    from repro.core.session import SynthesisSession

    result: SynthesisResult = session.result
    if remaining is not None and remaining <= 0:
        result.timed_out = True
        emit(BudgetTimeout(elapsed=time.perf_counter() - started))
        result.synthesis_time = max(
            0.0, time.perf_counter() - started - result.verification_time
        )
        result.parallel_workers_used = 0
        return

    inner = SynthesisSession(
        session.source_program,
        session.target_schema,
        # execution_fleet must clear too: an unreachable fleet would route
        # the fallback session straight back into the parallel driver.
        replace(
            session.config,
            parallel_workers=0,
            execution_fleet=None,
            time_limit=remaining,
        ),
        # Forward events only when someone observes the parent session —
        # otherwise the fallback keeps the quiet no-per-event-cost profile
        # a blocking migrate() had in 1.x.
        on_event=emit if session._observed else None,
    )
    session._cancel_hooks.append(inner.cancel)
    try:
        if session.cancelled:
            inner.cancel()
        inner.run()
    finally:
        session._cancel_hooks.remove(inner.cancel)

    fallback = inner.result
    result.program = fallback.program
    result.correspondence = fallback.correspondence
    result.value_correspondences_tried = fallback.value_correspondences_tried
    result.iterations = fallback.iterations
    result.synthesis_time = fallback.synthesis_time
    result.verification_time = fallback.verification_time
    result.attempts = list(fallback.attempts)
    result.timed_out = fallback.timed_out
    result.cancelled = fallback.cancelled
    result.cache = fallback.cache
    result.parallel_workers_used = 0
