"""Configuration of the end-to-end synthesizer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.correspondence.similarity import DEFAULT_ALPHA
from repro.equivalence.invocation import SeedSet
from repro.exec.policy import ResilienceConfig
from repro.sketchgen.generator import SketchGeneratorConfig
from repro.sketchgen.steiner import SteinerLimits


@dataclass
class SynthesisConfig:
    """All tunable knobs of the Migrator pipeline.

    The defaults reproduce the behaviour described in the paper at a scale
    that runs comfortably on a laptop; every bound is documented next to the
    field it controls.
    """

    # ---- value correspondence enumeration (Section 4.2)
    #: α constant of the similarity metric and one-to-one soft clause weight.
    alpha: int = DEFAULT_ALPHA
    #: "auto" picks the full MaxSAT encoding for small schemas and the
    #: factored best-first enumeration for large ones.
    vc_engine: str = "auto"
    #: Maximum number of target attributes one source attribute may map to.
    max_mapping_fanout: int = 2
    #: Give up after considering this many value correspondences.
    max_value_correspondences: int = 64

    # ---- sketch generation (Section 4.3)
    sketch: SketchGeneratorConfig = field(default_factory=SketchGeneratorConfig)

    # ---- sketch completion (Section 4.4)
    #: "mfi" (the paper's algorithm), "enumerative" (Table 3 baseline, no MFI
    #: pruning) or "bmc" (Table 2 baseline, Sketch-style monolithic encoding).
    completion_strategy: str = "mfi"
    #: Add consistency constraints pruning ill-formed completions.
    consistency_constraints: bool = True
    #: Bound on completions explored per sketch (None = unlimited).
    max_iterations_per_sketch: Optional[int] = 20000
    #: Wall-clock limit per sketch completion, in seconds (None = unlimited).
    #: Independent of ``time_limit``, which bounds the whole run and is
    #: threaded into every completion as an absolute deadline.
    sketch_time_limit: Optional[float] = None

    # ---- execution engine
    #: How candidate/source programs are executed during testing and
    #: verification: "compiled" translates each program once into Python
    #: closures (hash joins, slotted rows, compile-time column offsets —
    #: see repro.engine.compiler); "columnar" stores tables as parallel
    #: column lists with cached key indexes and batches the screening loop
    #: through trie kernels that share execution across sequences and
    #: candidates (see repro.engine.columnar); "interpreter" keeps the
    #: tree-walk reference semantics.  All three are output- and
    #: error-equivalent (pinned by tests/test_compiled.py and
    #: tests/test_columnar.py); the interpreter remains the semantics
    #: reference.
    execution_backend: str = "compiled"

    # ---- bounded testing / verification (Section 5)
    #: Number of update calls preceding the query in exhaustively tested sequences.
    tester_max_updates: int = 2
    #: Constant seed values per type used by the tester.
    tester_seeds: SeedSet = field(default_factory=SeedSet.default)
    #: Restrict tested sequences to updates touching the query's tables.
    relevance_filter: bool = True
    #: Run the deeper verification pass on accepted candidates.
    final_verification: bool = True
    #: Update-prefix bound of the final verification pass.
    verifier_max_updates: int = 3
    #: Number of randomized sequences of the final verification pass.
    verifier_random_sequences: int = 100
    #: Overall wall-clock limit for one synthesis run, in seconds.  The
    #: deadline is enforced between value correspondences *and* inside sketch
    #: completion (down to individual tested sequences), so a single long
    #: sketch cannot overrun the budget.
    time_limit: Optional[float] = None

    # ---- incremental testing (repro.testing_cache)
    #: Screen each candidate against previously discovered counterexamples before
    #: running the full bounded enumeration (A/B flag for bench_cache.py).
    counterexample_pool: bool = True
    #: Maximum counterexamples retained in the pool (lowest-hit evicted).
    pool_max_size: int = 256
    #: Maximum pool sequences executed per screened candidate (None = all).
    pool_screening_budget: Optional[int] = 64
    #: Entry cap of the shared source-output LRU cache.
    source_cache_max_entries: int = 100_000

    # ---- parallel exploration
    #: Worker processes exploring value correspondences concurrently
    #: (0 or 1 = sequential).  Counterexamples found by one worker are merged
    #: into the shared pool between waves.
    parallel_workers: int = 0
    #: Value correspondences dispatched per parallel wave (defaults to the
    #: worker count when ``None``).
    parallel_wave_size: Optional[int] = None
    #: Remote worker addresses (``"host:port"`` of listening ``repro.worker``
    #: processes).  When set, parallel exploration dispatches waves to the
    #: fleet over the socket transport instead of a local process pool;
    #: ``parallel_workers`` then only caps concurrent leases (0 = fleet
    #: capacity).  Counterexample pools sync by value between waves.
    execution_fleet: Optional[tuple[str, ...]] = None

    # ---- resilience (repro.exec.policy)
    #: Retry/timeout policies and the graceful-degradation ladder shared by
    #: every execution backend: jittered-backoff crash retries, poison-task
    #: quarantine, and fleet -> pool -> sequential degradation (each rung
    #: emitted as an ``ExecutionDegraded`` session event).
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)

    @staticmethod
    def fast() -> "SynthesisConfig":
        """A configuration tuned for the benchmark harness (shallower verification)."""
        return SynthesisConfig(
            final_verification=False,
            verifier_random_sequences=0,
            sketch=SketchGeneratorConfig(steiner_limits=SteinerLimits(max_extra_tables=2)),
        )

    @staticmethod
    def thorough() -> "SynthesisConfig":
        """A configuration with deeper testing bounds for small programs."""
        return SynthesisConfig(
            tester_max_updates=3,
            verifier_max_updates=3,
            verifier_random_sequences=300,
        )
