"""Result objects returned by the synthesizer.

Both record types serialize to plain dictionaries (:meth:`AttemptRecord.to_dict`,
:meth:`SynthesisResult.to_dict` / :meth:`SynthesisResult.to_json`): the
:class:`~repro.service.MigrationService` job responses and the eval harness
reporting share one machine-readable shape instead of re-deriving it.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Optional

from repro.correspondence.value_corr import ValueCorrespondence
from repro.lang.ast import Program
from repro.testing_cache import TestingCacheStats


@dataclass(kw_only=True)
class AttemptRecord:
    """One (value correspondence, sketch, completion) attempt.

    Keyword-only by design: the record grew fields over time and positional
    construction silently shifted meanings; every producer now names what it
    sets.  ``events`` carries the compact per-attempt event summary produced
    by the session core (see :class:`repro.core.session.EventSummarizer`), so
    an attempt's trajectory survives pickling across parallel workers and
    service processes without shipping the full event objects.
    """

    vc_weight: int
    sketch_holes: int = 0
    sketch_size: int = 0
    iterations: int = 0
    succeeded: bool = False
    failure_reason: str = ""
    #: Compact, ordered summary of the session events of this attempt, e.g.
    #: ``("vc_selected w=3", "sketch_generated holes=2 space=16",
    #: "candidate_rejected x4", "solved iters=5")``.
    events: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {
            "vc_weight": self.vc_weight,
            "sketch_holes": self.sketch_holes,
            "sketch_size": self.sketch_size,
            "iterations": self.iterations,
            "succeeded": self.succeeded,
            "failure_reason": self.failure_reason,
            "events": list(self.events),
        }


@dataclass
class SynthesisResult:
    """The outcome of one end-to-end synthesis run (one Table 1 row)."""

    source_program: Program
    program: Optional[Program]
    correspondence: Optional[ValueCorrespondence] = None
    value_correspondences_tried: int = 0
    iterations: int = 0
    synthesis_time: float = 0.0
    verification_time: float = 0.0
    attempts: list[AttemptRecord] = field(default_factory=list)
    timed_out: bool = False
    #: The run was stopped by cooperative cancellation (see
    #: :meth:`repro.core.session.SynthesisSession.cancel`).
    cancelled: bool = False
    #: Incremental-testing counters (counterexample pool + source cache).
    cache: TestingCacheStats = field(default_factory=TestingCacheStats)
    #: Worker processes used by the parallel front-end (0 = sequential run).
    parallel_workers_used: int = 0
    #: Execution-layer counters of the run's scheduler (the
    #: :class:`~repro.exec.SchedulerStats` as a plain dict: task outcomes,
    #: crash retries, pool rebuilds, workers lost, event high-water/drops).
    #: ``None`` for sequential runs, which never construct a scheduler.
    scheduler: Optional[dict] = None
    #: Degradation-ladder steps this run took (fleet -> pool -> sequential);
    #: 0 when execution ran on the backend that was asked for.
    degradations: int = 0
    #: Faults fired by an active :class:`repro.exec.faults.FaultPlan` in this
    #: process during the run; ``None`` when no plan was active.
    faults_injected: Optional[int] = None

    @property
    def succeeded(self) -> bool:
        return self.program is not None

    @property
    def total_time(self) -> float:
        return self.synthesis_time + self.verification_time

    @property
    def status(self) -> str:
        if self.succeeded:
            return "OK"
        if self.cancelled:
            return "CANCELLED"
        if self.timed_out:
            return "TIMEOUT"
        return "FAILED"

    def summary(self) -> str:
        cache = ""
        if self.cache.candidates_screened:
            cache = (
                f" pool_hits={self.cache.pool_hits}"
                f"/{self.cache.candidates_screened} screened"
            )
        if self.cache.compiled_function_hits:
            cache += f" compiled_hits={self.cache.compiled_function_hits}"
        return (
            f"[{self.status}] {self.source_program.name}: "
            f"funcs={self.source_program.num_functions()} "
            f"VCs={self.value_correspondences_tried} iters={self.iterations} "
            f"synth={self.synthesis_time:.1f}s total={self.total_time:.1f}s{cache}"
        )

    # ---------------------------------------------------------- serialization
    def to_dict(self, *, include_program: bool = True) -> dict:
        """A JSON-ready dictionary view of the run.

        Programs and correspondences are rendered to their canonical text
        forms (``format_program`` / ``describe``); set
        ``include_program=False`` for compact service responses that only
        need the outcome and counters.
        """
        from repro.lang.pretty import format_program

        return {
            "source_program": self.source_program.name,
            "status": self.status,
            "succeeded": self.succeeded,
            "timed_out": self.timed_out,
            "cancelled": self.cancelled,
            "value_correspondences_tried": self.value_correspondences_tried,
            "iterations": self.iterations,
            "synthesis_time": self.synthesis_time,
            "verification_time": self.verification_time,
            "total_time": self.total_time,
            "parallel_workers_used": self.parallel_workers_used,
            "program": (
                format_program(self.program)
                if include_program and self.program is not None
                else None
            ),
            "correspondence": (
                self.correspondence.describe() if self.correspondence is not None else None
            ),
            "attempts": [attempt.to_dict() for attempt in self.attempts],
            "cache": dataclasses.asdict(self.cache),
            "scheduler": self.scheduler,
            "resilience": self._resilience_dict(),
        }

    def _resilience_dict(self) -> dict:
        """Resilience counters for bench JSON output, one compact sub-dict."""
        scheduler = self.scheduler or {}
        out = {
            "retries": scheduler.get("task_retries", 0),
            "quarantined_tasks": scheduler.get("tasks_quarantined", 0),
            "degradations": self.degradations,
        }
        if self.faults_injected is not None:
            out["faults_injected"] = self.faults_injected
        return out

    def to_json(self, *, include_program: bool = True, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(include_program=include_program), indent=indent)
