"""Result objects returned by the synthesizer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.correspondence.value_corr import ValueCorrespondence
from repro.lang.ast import Program
from repro.testing_cache import TestingCacheStats


@dataclass
class AttemptRecord:
    """One (value correspondence, sketch, completion) attempt."""

    vc_weight: int
    sketch_holes: int
    sketch_size: int
    iterations: int
    succeeded: bool
    failure_reason: str = ""


@dataclass
class SynthesisResult:
    """The outcome of one end-to-end synthesis run (one Table 1 row)."""

    source_program: Program
    program: Optional[Program]
    correspondence: Optional[ValueCorrespondence] = None
    value_correspondences_tried: int = 0
    iterations: int = 0
    synthesis_time: float = 0.0
    verification_time: float = 0.0
    attempts: list[AttemptRecord] = field(default_factory=list)
    timed_out: bool = False
    #: Incremental-testing counters (counterexample pool + source cache).
    cache: TestingCacheStats = field(default_factory=TestingCacheStats)
    #: Worker processes used by the parallel front-end (0 = sequential run).
    parallel_workers_used: int = 0

    @property
    def succeeded(self) -> bool:
        return self.program is not None

    @property
    def total_time(self) -> float:
        return self.synthesis_time + self.verification_time

    def summary(self) -> str:
        status = "OK" if self.succeeded else ("TIMEOUT" if self.timed_out else "FAILED")
        cache = ""
        if self.cache.candidates_screened:
            cache = (
                f" pool_hits={self.cache.pool_hits}"
                f"/{self.cache.candidates_screened} screened"
            )
        return (
            f"[{status}] {self.source_program.name}: "
            f"funcs={self.source_program.num_functions()} "
            f"VCs={self.value_correspondences_tried} iters={self.iterations} "
            f"synth={self.synthesis_time:.1f}s total={self.total_time:.1f}s{cache}"
        )
