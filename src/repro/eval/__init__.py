"""Evaluation harness regenerating Tables 1-3 of the paper."""

from repro.eval.corpus import CorpusRow, format_corpus, parse_corpus_spec, run_corpus
from repro.eval.reporting import (
    render_markdown_table,
    render_scheduler_report,
    render_service_report,
    render_table,
    speedup,
)
from repro.eval.table1 import Table1Row, format_table1, run_benchmark, run_table1
from repro.eval.table2 import Table2Row, format_table2, run_table2
from repro.eval.table3 import Table3Row, format_table3, run_table3

__all__ = [
    "CorpusRow",
    "Table1Row",
    "Table2Row",
    "Table3Row",
    "format_corpus",
    "format_table1",
    "format_table2",
    "format_table3",
    "render_markdown_table",
    "render_scheduler_report",
    "render_service_report",
    "parse_corpus_spec",
    "render_table",
    "run_benchmark",
    "run_corpus",
    "run_table1",
    "run_table2",
    "run_table3",
    "speedup",
]
