"""Table 2 — comparison with the Sketch-style CEGIS/BMC baseline.

For each benchmark, the baseline synthesizer (``completion_strategy="bmc"``)
is run with a per-benchmark timeout and its synthesis time is compared with
Migrator's (Table 1) synthesis time.  As in the paper, the baseline is
expected to be orders of magnitude slower and to time out on the real-world
benchmarks, so the default timeout is minutes, not hours.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.core.config import SynthesisConfig
from repro.core.synthesizer import Synthesizer
from repro.eval.reporting import render_table, speedup
from repro.eval.table1 import Table1Row, benchmark_selection, run_benchmark
from repro.workloads.registry import Benchmark

#: Benchmarks included in the default (laptop-scale) Table 2 run.  The
#: real-world benchmarks are included too, but they are expected to hit the
#: timeout almost immediately — exactly the behaviour reported in the paper.
DEFAULT_TIMEOUT = 120.0


@dataclass
class Table2Row:
    benchmark: Benchmark
    baseline_time: float
    baseline_succeeded: bool
    baseline_timed_out: bool
    migrator_time: float

    def as_cells(self) -> list:
        baseline = (
            f">{self.baseline_time:.1f}" if self.baseline_timed_out else f"{self.baseline_time:.1f}"
        )
        return [
            self.benchmark.name,
            baseline,
            "timeout" if self.baseline_timed_out else ("ok" if self.baseline_succeeded else "fail"),
            f"{self.migrator_time:.1f}",
            speedup(self.baseline_time, self.migrator_time, self.baseline_timed_out),
        ]


HEADERS = ["Benchmark", "Sketch-BMC(s)", "Status", "Migrator(s)", "Speedup"]


def baseline_config(timeout: float = DEFAULT_TIMEOUT) -> SynthesisConfig:
    config = SynthesisConfig()
    config.completion_strategy = "bmc"
    config.time_limit = timeout
    config.sketch_time_limit = timeout
    config.final_verification = False
    return config


def run_table2(
    names: Optional[Sequence[str]] = None,
    timeout: float = DEFAULT_TIMEOUT,
    table1_rows: Optional[Sequence[Table1Row]] = None,
    verbose: bool = True,
) -> list[Table2Row]:
    benchmarks = benchmark_selection(names)
    migrator_times = {}
    if table1_rows:
        migrator_times = {row.benchmark.name: row.synth_time for row in table1_rows}

    rows: list[Table2Row] = []
    for benchmark in benchmarks:
        if benchmark.name not in migrator_times:
            migrator_row = run_benchmark(benchmark)
            migrator_times[benchmark.name] = migrator_row.synth_time

        config = baseline_config(timeout)
        synthesizer = Synthesizer(config)
        started = time.perf_counter()
        result = synthesizer.synthesize(benchmark.source_program, benchmark.target_schema)
        elapsed = time.perf_counter() - started
        timed_out = not result.succeeded and elapsed >= timeout * 0.95
        row = Table2Row(
            benchmark=benchmark,
            baseline_time=elapsed,
            baseline_succeeded=result.succeeded,
            baseline_timed_out=timed_out,
            migrator_time=migrator_times[benchmark.name],
        )
        rows.append(row)
        if verbose:
            status = "timeout" if timed_out else ("ok" if result.succeeded else "fail")
            print(f"  {benchmark.name:16s} baseline={elapsed:.1f}s [{status}] "
                  f"migrator={row.migrator_time:.1f}s", flush=True)
    return rows


def format_table2(rows: Iterable[Table2Row]) -> str:
    return render_table(
        HEADERS,
        [row.as_cells() for row in rows],
        title="Table 2: comparison with the Sketch-style CEGIS/BMC baseline",
    )
