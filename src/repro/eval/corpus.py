"""Scale-curve evaluation over the generated corpus.

The paper's tables measure the 20 hand-collected benchmarks; this mode
measures how synthesis cost scales with schema *shape* instead.  For each
point on a width/depth ladder it generates seeded corpus workloads
(:mod:`repro.corpus.generator`, one refactoring step so each run is a
single synthesis problem), migrates the source program onto the refactored
schema, and reports per-point means of synthesis time, refinement-loop
iterations, and value correspondences enumerated.

Everything derives from the master seed, so a curve regenerates exactly::

    python -m repro.eval corpus --corpus 0:5
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.config import SynthesisConfig
from repro.core.result import SynthesisResult
from repro.core.synthesizer import migrate
from repro.corpus.generator import CorpusConfig, generate_corpus
from repro.eval.reporting import render_table

#: The width/depth ladder: (tables, columns per table, CRUD functions).
#: One refactoring step per workload keeps each row a single synthesis
#: problem, so the curve isolates schema shape from chain length.
SCALE_POINTS: tuple[tuple[int, int, int], ...] = (
    (2, 2, 8),
    (2, 4, 10),
    (3, 3, 12),
    (3, 5, 12),
    (4, 4, 14),
)

CORPUS_HEADERS = [
    "Tables",
    "Columns",
    "Funcs",
    "Workloads",
    "Solved",
    "Synth(s)",
    "Iters",
    "VCs",
]


@dataclass
class CorpusRow:
    """Aggregated synthesis cost at one (width, depth) scale point."""

    tables: int
    columns: int
    functions: int
    results: list[SynthesisResult] = field(default_factory=list)

    @property
    def solved(self) -> int:
        return sum(1 for result in self.results if result.succeeded)

    def _mean(self, values: list[float]) -> float | None:
        return sum(values) / len(values) if values else None

    @property
    def mean_synthesis_time(self) -> float | None:
        return self._mean([r.synthesis_time for r in self.results if r.succeeded])

    @property
    def mean_iterations(self) -> float | None:
        return self._mean([float(r.iterations) for r in self.results if r.succeeded])

    @property
    def mean_correspondences(self) -> float | None:
        return self._mean(
            [float(r.value_correspondences_tried) for r in self.results if r.succeeded]
        )

    def cells(self) -> list:
        synth = self.mean_synthesis_time
        return [
            self.tables,
            self.columns,
            self.functions,
            len(self.results),
            self.solved,
            None if synth is None else f"{synth:.2f}",
            self.mean_iterations,
            self.mean_correspondences,
        ]


def run_corpus(
    seed: int,
    count: int,
    *,
    config: SynthesisConfig | None = None,
    points: tuple[tuple[int, int, int], ...] = SCALE_POINTS,
    verbose: bool = True,
) -> list[CorpusRow]:
    """Run *count* seeded workloads at every scale point; returns the rows."""
    config = config or SynthesisConfig.fast()
    master = random.Random(seed)
    rows: list[CorpusRow] = []
    for tables, columns, functions in points:
        corpus_config = CorpusConfig().scaled(
            tables=tables, columns=columns, steps=1, functions=functions
        )
        row = CorpusRow(tables, columns, functions)
        point_seed = master.randrange(2**32)
        for workload in generate_corpus(point_seed, count, corpus_config):
            result = migrate(
                workload.source_program, workload.target_schema, config
            )
            row.results.append(result)
            if verbose:
                status = "ok" if result.succeeded else "FAIL"
                print(
                    f"  [{tables}x{columns}] {workload.name}: {status} "
                    f"{result.synthesis_time:.2f}s "
                    f"iters={result.iterations} "
                    f"vcs={result.value_correspondences_tried} "
                    f"({workload.describe_steps()[0]})",
                    flush=True,
                )
        rows.append(row)
    return rows


def format_corpus(rows: list[CorpusRow]) -> str:
    """Render the scale curve in the harness's fixed-width style."""
    return render_table(
        CORPUS_HEADERS,
        [row.cells() for row in rows],
        title="Generated corpus: synthesis cost vs schema shape",
    )


def parse_corpus_spec(spec: str) -> tuple[int, int]:
    """Parse the CLI's ``seed:count`` argument."""
    seed_text, _, count_text = spec.partition(":")
    try:
        seed = int(seed_text)
        count = int(count_text) if count_text else 3
    except ValueError as error:
        raise ValueError(
            f"--corpus expects SEED or SEED:COUNT, got {spec!r}"
        ) from error
    if count <= 0:
        raise ValueError(f"--corpus count must be positive, got {count}")
    return seed, count
