"""Plain-text table rendering for the evaluation harness.

The harness prints the same rows the paper's tables report, in a fixed-width
layout, and can additionally emit machine-readable dictionaries for the
benchmark suite and EXPERIMENTS.md generation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str = "") -> str:
    """Render a fixed-width text table."""
    materialized = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(format_row(list(headers)))
    lines.append(format_row(["-" * w for w in widths]))
    for row in materialized:
        lines.append(format_row(row))
    return "\n".join(lines)


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    if value is None:
        return "-"
    return str(value)


def render_markdown_table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Render a GitHub-flavoured markdown table (used for EXPERIMENTS.md)."""
    lines = ["| " + " | ".join(headers) + " |", "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(_format_cell(cell) for cell in row) + " |")
    return "\n".join(lines)


def speedup(baseline_time: float | None, our_time: float, timed_out: bool) -> str:
    """Format a speed-up cell in the style of Tables 2 and 3."""
    if baseline_time is None or our_time <= 0:
        return "-"
    prefix = ">" if timed_out else ""
    return f"{prefix}{baseline_time / max(our_time, 1e-9):.1f}x"


CACHE_HEADERS = [
    "Benchmark",
    "Strategy",
    "PoolHits",
    "Screened",
    "HitRate",
    "FullTests(pool)",
    "FullTests(off)",
    "SeqSaved(est)",
    "Screen(s)",
    "SrcCacheHits",
    "BatchSeqs",
    "BatchHW",
]


def cache_summary_row(name: str, strategy: str, with_pool, without_pool) -> list:
    """One row of the incremental-testing report (see bench_cache.py).

    *with_pool* / *without_pool* are the ``TestingCacheStats`` of an A/B pair
    of synthesis runs over the same benchmark.
    """
    return [
        name,
        strategy,
        with_pool.pool_hits,
        with_pool.candidates_screened,
        f"{with_pool.hit_rate:.0%}",
        with_pool.candidates_fully_tested,
        without_pool.candidates_fully_tested,
        with_pool.sequences_saved_estimate,
        # Pre-formatted: screening is typically well under the 0.1s that the
        # generic one-decimal float cell could resolve.
        f"{with_pool.screening_time:.3f}",
        with_pool.source_cache_hits,
        # Batched-screening counters: zero under the scalar backends, so the
        # same table shows whether a run actually used the columnar kernels.
        with_pool.sequences_screened_batched,
        with_pool.screening_batch_high_water,
    ]


def render_cache_report(rows: Iterable[Sequence[Any]]) -> str:
    """Render the pool/cache A/B comparison table."""
    return render_table(
        CACHE_HEADERS, rows, title="Incremental testing: counterexample pool A/B"
    )


ENGINE_HEADERS = [
    "Benchmark",
    "Sequences",
    "Interp(seq/s)",
    "Compiled(seq/s)",
    "Speedup",
    "Columnar(seq/s)",
    "ColSpeedup",
    "Compile(ms)",
]


def engine_summary_row(
    name: str,
    sequences: int,
    interp_per_sec: float,
    compiled_per_sec: float,
    compile_ms: float,
    columnar_per_sec: float | None = None,
) -> list:
    """One row of the execution-backend A/B report (see bench_engine.py).

    *columnar_per_sec* is the columnar backend's scalar (non-batched)
    throughput on the same sequences; ``None`` renders as ``-`` so runs
    that only compare interpreter vs compiled keep their shape.
    """
    return [
        name,
        sequences,
        f"{interp_per_sec:,.0f}",
        f"{compiled_per_sec:,.0f}",
        f"{compiled_per_sec / max(interp_per_sec, 1e-9):.2f}x",
        "-" if columnar_per_sec is None else f"{columnar_per_sec:,.0f}",
        "-"
        if columnar_per_sec is None
        else f"{columnar_per_sec / max(interp_per_sec, 1e-9):.2f}x",
        f"{compile_ms:.2f}",
    ]


def render_engine_report(rows: Iterable[Sequence[Any]]) -> str:
    """Render the per-backend throughput table."""
    return render_table(
        ENGINE_HEADERS, rows, title="Execution engine: interpreter vs compiled vs columnar"
    )


SERVICE_HEADERS = [
    "Job",
    "Status",
    "VCs",
    "Iters",
    "Synth(s)",
    "Total(s)",
    "PoolHits",
    "SrcCacheHits",
    "CompiledHits",
]


def service_summary_row(response: dict) -> list:
    """One row of the migration-service report.

    *response* is a ``JobHandle.to_dict()`` payload — the same JSON-ready
    shape (built on ``SynthesisResult.to_dict``) that service deployments
    return, so the eval harness and the service share one serialization.
    """
    result = response.get("result") or {}
    cache = result.get("cache") or {}
    return [
        response.get("job", "?"),
        result.get("status", response.get("status", "?")),
        result.get("value_correspondences_tried"),
        result.get("iterations"),
        result.get("synthesis_time"),
        result.get("total_time"),
        cache.get("pool_hits"),
        cache.get("source_cache_hits"),
        # Compiled-closure reuse (cross-job sharing shows up as hits well
        # above a cold run's); absent on pre-1.1 payloads.
        cache.get("compiled_function_hits"),
    ]


def render_service_report(responses: Iterable[dict], title: str = "Migration service batch") -> str:
    """Render a batch of service job responses as a fixed-width table."""
    return render_table(SERVICE_HEADERS, [service_summary_row(r) for r in responses], title=title)


SCHEDULER_HEADERS = [
    "Submitted",
    "Done",
    "Failed",
    "Cancelled",
    "Expired",
    "Retries",
    "Quarantined",
    "Degraded",
    "PoolRebuilds",
    "WorkersLost",
    "EventsHWM",
    "EventsDropped",
]


def _stat(stats, name: str, default=0):
    """Counter lookup over both stats shapes.

    Accepts a live :class:`~repro.exec.SchedulerStats` *and* the plain-dict
    form ``SynthesisResult.to_dict`` ships (``result["scheduler"]``), so the
    same report renders from a running scheduler or a serialized result.
    """
    if isinstance(stats, dict):
        return stats.get(name, default)
    return getattr(stats, name, default)


def scheduler_summary_row(stats) -> list:
    """One row summarizing a :class:`~repro.exec.SchedulerStats` (or its dict).

    Covers the task-lifecycle counters, the crash-recovery counters (retries,
    poison-task quarantines, degradation-ladder steps, pool rebuilds, remote
    workers lost) and the channel-load counters
    (queue-transport backpressure: pending-event high-water mark and events
    shed by producers) folded in when channels close.
    """
    return [
        _stat(stats, "tasks_submitted"),
        _stat(stats, "tasks_done"),
        _stat(stats, "tasks_failed"),
        _stat(stats, "tasks_cancelled"),
        _stat(stats, "tasks_expired"),
        _stat(stats, "task_retries"),
        _stat(stats, "tasks_quarantined"),
        _stat(stats, "degradations"),
        _stat(stats, "pool_rebuilds"),
        _stat(stats, "workers_lost"),
        _stat(stats, "events_high_water"),
        _stat(stats, "events_dropped"),
    ]


def render_scheduler_report(stats, title: str = "Work scheduler") -> str:
    """Render one scheduler's lifetime counters as a fixed-width table."""
    return render_table(SCHEDULER_HEADERS, [scheduler_summary_row(stats)], title=title)
