"""Table 3 — comparison with symbolic enumerative search (no MFI pruning).

The baseline shares the SAT encoding and the testing machinery with Migrator
but blocks only one complete model per failing candidate.  The paper reports
that this baseline needs orders of magnitude more iterations on the harder
benchmarks and times out on two of them; the same shape is expected here, so
each baseline run has an iteration cap and a timeout.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.core.config import SynthesisConfig
from repro.core.synthesizer import Synthesizer
from repro.eval.reporting import render_table, speedup
from repro.eval.table1 import Table1Row, benchmark_selection, run_benchmark
from repro.workloads.registry import Benchmark

DEFAULT_TIMEOUT = 120.0


@dataclass
class Table3Row:
    benchmark: Benchmark
    baseline_iterations: int
    baseline_time: float
    baseline_succeeded: bool
    baseline_timed_out: bool
    migrator_iterations: int
    migrator_time: float

    def as_cells(self) -> list:
        prefix = ">" if self.baseline_timed_out else ""
        return [
            self.benchmark.name,
            f"{prefix}{self.baseline_iterations}",
            f"{prefix}{self.baseline_time:.1f}",
            "timeout" if self.baseline_timed_out else ("ok" if self.baseline_succeeded else "fail"),
            self.migrator_iterations,
            f"{self.migrator_time:.1f}",
            speedup(self.baseline_time, self.migrator_time, self.baseline_timed_out),
        ]


HEADERS = [
    "Benchmark",
    "Enum iters",
    "Enum time(s)",
    "Status",
    "Migrator iters",
    "Migrator(s)",
    "Speedup",
]


def baseline_config(timeout: float = DEFAULT_TIMEOUT) -> SynthesisConfig:
    config = SynthesisConfig()
    config.completion_strategy = "enumerative"
    config.time_limit = timeout
    config.sketch_time_limit = timeout
    config.final_verification = False
    return config


def run_table3(
    names: Optional[Sequence[str]] = None,
    timeout: float = DEFAULT_TIMEOUT,
    table1_rows: Optional[Sequence[Table1Row]] = None,
    verbose: bool = True,
) -> list[Table3Row]:
    benchmarks = benchmark_selection(names)
    migrator_stats = {}
    if table1_rows:
        migrator_stats = {
            row.benchmark.name: (row.iterations, row.synth_time) for row in table1_rows
        }

    rows: list[Table3Row] = []
    for benchmark in benchmarks:
        if benchmark.name not in migrator_stats:
            migrator_row = run_benchmark(benchmark)
            migrator_stats[benchmark.name] = (migrator_row.iterations, migrator_row.synth_time)

        config = baseline_config(timeout)
        synthesizer = Synthesizer(config)
        started = time.perf_counter()
        result = synthesizer.synthesize(benchmark.source_program, benchmark.target_schema)
        elapsed = time.perf_counter() - started
        timed_out = not result.succeeded and elapsed >= timeout * 0.95
        iterations, migrator_time = migrator_stats[benchmark.name]
        row = Table3Row(
            benchmark=benchmark,
            baseline_iterations=result.iterations,
            baseline_time=elapsed,
            baseline_succeeded=result.succeeded,
            baseline_timed_out=timed_out,
            migrator_iterations=iterations,
            migrator_time=migrator_time,
        )
        rows.append(row)
        if verbose:
            status = "timeout" if timed_out else ("ok" if result.succeeded else "fail")
            print(f"  {benchmark.name:16s} enum iters={result.iterations} time={elapsed:.1f}s "
                  f"[{status}] migrator iters={iterations}", flush=True)
    return rows


def format_table3(rows: Iterable[Table3Row]) -> str:
    return render_table(
        HEADERS,
        [row.as_cells() for row in rows],
        title="Table 3: comparison with symbolic enumerative search (no MFIs)",
    )
