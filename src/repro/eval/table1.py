"""Table 1 — main results: Migrator on all 20 benchmarks.

For each benchmark the harness reports the same columns as the paper:
benchmark name, description, number of functions, source/target schema sizes,
number of value correspondences considered, number of sketch completions
explored, synthesis time (excluding verification) and total time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.core.config import SynthesisConfig
from repro.core.synthesizer import Synthesizer
from repro.eval.reporting import render_table
from repro.workloads.registry import Benchmark, load_all

#: Presentation order: the paper lists textbook benchmarks first.
TABLE1_ORDER = [
    "Oracle-1",
    "Oracle-2",
    "Ambler-1",
    "Ambler-2",
    "Ambler-3",
    "Ambler-4",
    "Ambler-5",
    "Ambler-6",
    "Ambler-7",
    "Ambler-8",
    "cdx",
    "coachup",
    "2030Club",
    "rails-ecomm",
    "royk",
    "MathHotSpot",
    "gallery",
    "DeeJBase",
    "visible-closet",
    "probable-engine",
]


@dataclass
class Table1Row:
    benchmark: Benchmark
    succeeded: bool
    value_correspondences: int
    iterations: int
    synth_time: float
    total_time: float
    timed_out: bool = False

    def as_cells(self) -> list:
        stats = self.benchmark.stats()
        status = "ok" if self.succeeded else ("timeout" if self.timed_out else "FAIL")
        return [
            self.benchmark.name,
            self.benchmark.description,
            stats["functions"],
            f"{stats['source_tables']}/{stats['source_attrs']}",
            f"{stats['target_tables']}/{stats['target_attrs']}",
            self.value_correspondences,
            self.iterations,
            self.synth_time,
            self.total_time,
            status,
        ]


HEADERS = [
    "Benchmark",
    "Description",
    "Funcs",
    "Source T/A",
    "Target T/A",
    "ValueCorr",
    "Iters",
    "Synth(s)",
    "Total(s)",
    "Status",
]


def default_config(time_limit: Optional[float] = 600.0) -> SynthesisConfig:
    """The configuration used for Table 1 runs."""
    config = SynthesisConfig()
    config.time_limit = time_limit
    config.verifier_random_sequences = 50
    return config


def run_benchmark(benchmark: Benchmark, config: Optional[SynthesisConfig] = None) -> Table1Row:
    """Synthesize one benchmark and produce its Table 1 row."""
    config = config or default_config()
    synthesizer = Synthesizer(config)
    started = time.perf_counter()
    result = synthesizer.synthesize(benchmark.source_program, benchmark.target_schema)
    elapsed = time.perf_counter() - started
    return Table1Row(
        benchmark=benchmark,
        succeeded=result.succeeded,
        value_correspondences=result.value_correspondences_tried,
        iterations=result.iterations,
        synth_time=result.synthesis_time,
        total_time=elapsed,
        timed_out=result.timed_out,
    )


def benchmark_selection(names: Optional[Sequence[str]] = None) -> list[Benchmark]:
    registry = load_all()
    order = list(names) if names else TABLE1_ORDER
    return [registry.get(name) for name in order]


def run_table1(
    names: Optional[Sequence[str]] = None,
    config: Optional[SynthesisConfig] = None,
    verbose: bool = True,
) -> list[Table1Row]:
    """Run Migrator on the selected benchmarks and return the Table 1 rows."""
    rows: list[Table1Row] = []
    for benchmark in benchmark_selection(names):
        row = run_benchmark(benchmark, config)
        rows.append(row)
        if verbose:
            print(f"  {benchmark.name:16s} -> {'ok' if row.succeeded else 'FAIL'} "
                  f"VCs={row.value_correspondences} iters={row.iterations} "
                  f"synth={row.synth_time:.1f}s total={row.total_time:.1f}s", flush=True)
    return rows


def format_table1(rows: Iterable[Table1Row]) -> str:
    rows = list(rows)
    body = [row.as_cells() for row in rows]
    if rows:
        body.append(_average_row(rows))
    return render_table(HEADERS, body, title="Table 1: main synthesis results")


def _average_row(rows: Sequence[Table1Row]) -> list:
    count = len(rows)
    return [
        "Average",
        "-",
        round(sum(r.benchmark.num_functions for r in rows) / count, 1),
        "-",
        "-",
        round(sum(r.value_correspondences for r in rows) / count, 1),
        round(sum(r.iterations for r in rows) / count, 1),
        sum(r.synth_time for r in rows) / count,
        sum(r.total_time for r in rows) / count,
        f"{sum(1 for r in rows if r.succeeded)}/{count} ok",
    ]
