"""Table 1 — main results: Migrator on all 20 benchmarks.

For each benchmark the harness reports the same columns as the paper:
benchmark name, description, number of functions, source/target schema sizes,
number of value correspondences considered, number of sketch completions
explored, synthesis time (excluding verification) and total time.

With ``scheduler_workers > 1`` (CLI flag ``--scheduler-workers``) the
per-workload runs are submitted as tasks to the same shared
:class:`~repro.exec.WorkScheduler` that drives parallel sessions and the
migration service — benchmarks and service traffic share one executor
abstraction, and the whole table finishes in roughly the wall-clock of its
slowest workload.  Rows come back in the same deterministic presentation
order regardless of completion timing; per-run numbers are identical to the
sequential harness's because each workload still runs an unmodified
single-process synthesis inside its worker.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.core.config import SynthesisConfig
from repro.core.synthesizer import Synthesizer
from repro.eval.reporting import render_table
from repro.workloads.registry import Benchmark, load_all

#: Presentation order: the paper lists textbook benchmarks first.
TABLE1_ORDER = [
    "Oracle-1",
    "Oracle-2",
    "Ambler-1",
    "Ambler-2",
    "Ambler-3",
    "Ambler-4",
    "Ambler-5",
    "Ambler-6",
    "Ambler-7",
    "Ambler-8",
    "cdx",
    "coachup",
    "2030Club",
    "rails-ecomm",
    "royk",
    "MathHotSpot",
    "gallery",
    "DeeJBase",
    "visible-closet",
    "probable-engine",
]


@dataclass
class Table1Row:
    benchmark: Benchmark
    succeeded: bool
    value_correspondences: int
    iterations: int
    synth_time: float
    total_time: float
    timed_out: bool = False

    def as_cells(self) -> list:
        stats = self.benchmark.stats()
        status = "ok" if self.succeeded else ("timeout" if self.timed_out else "FAIL")
        return [
            self.benchmark.name,
            self.benchmark.description,
            stats["functions"],
            f"{stats['source_tables']}/{stats['source_attrs']}",
            f"{stats['target_tables']}/{stats['target_attrs']}",
            self.value_correspondences,
            self.iterations,
            self.synth_time,
            self.total_time,
            status,
        ]


HEADERS = [
    "Benchmark",
    "Description",
    "Funcs",
    "Source T/A",
    "Target T/A",
    "ValueCorr",
    "Iters",
    "Synth(s)",
    "Total(s)",
    "Status",
]


def default_config(time_limit: Optional[float] = 600.0) -> SynthesisConfig:
    """The configuration used for Table 1 runs."""
    config = SynthesisConfig()
    config.time_limit = time_limit
    config.verifier_random_sequences = 50
    return config


def run_benchmark(benchmark: Benchmark, config: Optional[SynthesisConfig] = None) -> Table1Row:
    """Synthesize one benchmark and produce its Table 1 row."""
    config = config or default_config()
    synthesizer = Synthesizer(config)
    started = time.perf_counter()
    result = synthesizer.synthesize(benchmark.source_program, benchmark.target_schema)
    elapsed = time.perf_counter() - started
    return Table1Row(
        benchmark=benchmark,
        succeeded=result.succeeded,
        value_correspondences=result.value_correspondences_tried,
        iterations=result.iterations,
        synth_time=result.synthesis_time,
        total_time=elapsed,
        timed_out=result.timed_out,
    )


def benchmark_selection(names: Optional[Sequence[str]] = None) -> list[Benchmark]:
    registry = load_all()
    order = list(names) if names else TABLE1_ORDER
    return [registry.get(name) for name in order]


def _run_benchmark_task(payload, _ctx) -> Table1Row:
    """Scheduler work function: one Table 1 row inside a worker process.

    The benchmark is reloaded by name from the registry in the worker (the
    registry is deterministic), so the task payload stays a small
    ``(name, config)`` pickle instead of shipping program/schema objects.
    Per-run ``parallel_workers`` is forced to 0: the harness parallelizes
    *across* workloads, and nesting a process pool inside a scheduler
    worker is unsupported (and would oversubscribe the host) — the same
    rule the migration service applies to its jobs.
    """
    name, config = payload
    if config is not None and config.parallel_workers > 1:
        from dataclasses import replace

        config = replace(config, parallel_workers=0)
    return run_benchmark(load_all().get(name), config)


def _progress_line(row: Table1Row) -> str:
    return (
        f"  {row.benchmark.name:16s} -> {'ok' if row.succeeded else 'FAIL'} "
        f"VCs={row.value_correspondences} iters={row.iterations} "
        f"synth={row.synth_time:.1f}s total={row.total_time:.1f}s"
    )


def run_table1(
    names: Optional[Sequence[str]] = None,
    config: Optional[SynthesisConfig] = None,
    verbose: bool = True,
    scheduler_workers: int = 0,
) -> list[Table1Row]:
    """Run Migrator on the selected benchmarks and return the Table 1 rows.

    *scheduler_workers* > 1 fans the per-workload runs out over the shared
    :class:`~repro.exec.WorkScheduler` (one benchmark per worker-process
    task); rows return in presentation order either way.  If worker
    processes cannot be started the harness falls back to the sequential
    loop.
    """
    benchmarks = benchmark_selection(names)
    if scheduler_workers > 1:
        rows = _run_table1_scheduled(benchmarks, config, verbose, scheduler_workers)
        if rows is not None:
            return rows
        if verbose:
            print("  (worker processes unavailable; falling back to sequential runs)",
                  flush=True)
    rows = []
    for benchmark in benchmarks:
        row = run_benchmark(benchmark, config)
        rows.append(row)
        if verbose:
            print(_progress_line(row), flush=True)
    return rows


def _run_table1_scheduled(
    benchmarks: Sequence[Benchmark],
    config: Optional[SynthesisConfig],
    verbose: bool,
    workers: int,
) -> Optional[list[Table1Row]]:
    """Fan the table out over the shared scheduler; ``None`` = unavailable."""
    from repro.exec import ExecutorUnavailable, TaskState, WorkScheduler

    def started_line(name: str):
        if not verbose:
            return None
        return lambda _name=name: print(f"  {_name:16s} -> started", flush=True)

    with WorkScheduler(max_workers=workers) as scheduler:
        handles = [
            # priority=index keeps dispatch in presentation order, exactly
            # like parallel-session waves keep enumeration order.  The
            # on_start line is the live progress signal (per-row numbers
            # print in presentation order once the drain completes).
            scheduler.submit(
                _run_benchmark_task,
                (benchmark.name, config),
                priority=index,
                on_start=started_line(benchmark.name),
                name=benchmark.name,
            )
            for index, benchmark in enumerate(benchmarks)
        ]
        try:
            scheduler.drain()
        except ExecutorUnavailable:
            return None
        rows: list[Table1Row] = []
        for handle in handles:
            if handle.state is not TaskState.DONE:
                raise RuntimeError(
                    f"table1 run {handle.name!r} {handle.state.value}: {handle.error}"
                ) from handle.exception
            rows.append(handle.result)
            if verbose:
                print(_progress_line(handle.result), flush=True)
    return rows


def format_table1(rows: Iterable[Table1Row]) -> str:
    rows = list(rows)
    body = [row.as_cells() for row in rows]
    if rows:
        body.append(_average_row(rows))
    return render_table(HEADERS, body, title="Table 1: main synthesis results")


def _average_row(rows: Sequence[Table1Row]) -> list:
    count = len(rows)
    return [
        "Average",
        "-",
        round(sum(r.benchmark.num_functions for r in rows) / count, 1),
        "-",
        "-",
        round(sum(r.value_correspondences for r in rows) / count, 1),
        round(sum(r.iterations for r in rows) / count, 1),
        sum(r.synth_time for r in rows) / count,
        sum(r.total_time for r in rows) / count,
        f"{sum(1 for r in rows if r.succeeded)}/{count} ok",
    ]
