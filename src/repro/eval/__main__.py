"""Command-line entry point for the evaluation harness.

Usage::

    python -m repro.eval table1                 # Migrator on all 20 benchmarks
    python -m repro.eval table2 --timeout 60    # Sketch-style BMC baseline
    python -m repro.eval table3                 # enumerative baseline (no MFIs)
    python -m repro.eval all                    # everything, in order
    python -m repro.eval table1 --benchmarks Oracle-1 Ambler-4
    python -m repro.eval corpus --corpus 0:5    # generated-corpus scale curve

The printed tables mirror Tables 1–3 of the paper; ``corpus`` instead
sweeps generated schemas along a width/depth ladder (seeded via
``--corpus SEED:COUNT``).  EXPERIMENTS.md records a paper-vs-measured
comparison of a full run.
"""

from __future__ import annotations

import argparse
import sys

from repro.eval.corpus import format_corpus, parse_corpus_spec, run_corpus
from repro.eval.table1 import format_table1, run_table1
from repro.eval.table2 import format_table2, run_table2
from repro.eval.table3 import format_table3, run_table3


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.eval", description=__doc__)
    parser.add_argument(
        "table",
        choices=["table1", "table2", "table3", "all", "corpus"],
        help="which experiment to regenerate",
    )
    parser.add_argument(
        "--corpus",
        metavar="SEED:COUNT",
        default="0:3",
        help="master seed and per-point workload count for the corpus "
        "scale curve (default 0:3; only used with the 'corpus' mode)",
    )
    parser.add_argument(
        "--benchmarks",
        nargs="*",
        default=None,
        help="restrict to the named benchmarks (default: all 20)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="per-benchmark timeout (seconds) for the baseline tables",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-benchmark progress output"
    )
    parser.add_argument(
        "--scheduler-workers",
        type=int,
        default=0,
        help="fan the Table 1 workload runs out over the shared "
        "repro.exec.WorkScheduler with this many worker processes "
        "(0 = sequential; the baseline tables always run sequentially "
        "because their per-benchmark timeouts are the experiment)",
    )
    args = parser.parse_args(argv)
    verbose = not args.quiet

    if args.table == "corpus":
        try:
            seed, count = parse_corpus_spec(args.corpus)
        except ValueError as error:
            parser.error(str(error))
        print(
            f"Running corpus scale curve (seed {seed}, {count} workloads/point)...",
            flush=True,
        )
        rows = run_corpus(seed, count, verbose=verbose)
        print()
        print(format_corpus(rows))
        print()
        return 0

    table1_rows = None
    if args.table in ("table1", "all"):
        print("Running Table 1 (Migrator, all benchmarks)...", flush=True)
        table1_rows = run_table1(
            args.benchmarks, verbose=verbose, scheduler_workers=args.scheduler_workers
        )
        print()
        print(format_table1(table1_rows))
        print()
    if args.table in ("table2", "all"):
        print("Running Table 2 (Sketch-style BMC baseline)...", flush=True)
        rows = run_table2(args.benchmarks, timeout=args.timeout, table1_rows=table1_rows,
                          verbose=verbose)
        print()
        print(format_table2(rows))
        print()
    if args.table in ("table3", "all"):
        print("Running Table 3 (enumerative baseline)...", flush=True)
        rows = run_table3(args.benchmarks, timeout=args.timeout, table1_rows=table1_rows,
                          verbose=verbose)
        print()
        print(format_table3(rows))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
