"""Command-line entry point for the evaluation harness.

Usage::

    python -m repro.eval table1                 # Migrator on all 20 benchmarks
    python -m repro.eval table2 --timeout 60    # Sketch-style BMC baseline
    python -m repro.eval table3                 # enumerative baseline (no MFIs)
    python -m repro.eval all                    # everything, in order
    python -m repro.eval table1 --benchmarks Oracle-1 Ambler-4

The printed tables mirror Tables 1–3 of the paper; EXPERIMENTS.md records a
paper-vs-measured comparison of a full run.
"""

from __future__ import annotations

import argparse
import sys

from repro.eval.table1 import format_table1, run_table1
from repro.eval.table2 import format_table2, run_table2
from repro.eval.table3 import format_table3, run_table3


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.eval", description=__doc__)
    parser.add_argument(
        "table",
        choices=["table1", "table2", "table3", "all"],
        help="which experiment to regenerate",
    )
    parser.add_argument(
        "--benchmarks",
        nargs="*",
        default=None,
        help="restrict to the named benchmarks (default: all 20)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="per-benchmark timeout (seconds) for the baseline tables",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-benchmark progress output"
    )
    parser.add_argument(
        "--scheduler-workers",
        type=int,
        default=0,
        help="fan the Table 1 workload runs out over the shared "
        "repro.exec.WorkScheduler with this many worker processes "
        "(0 = sequential; the baseline tables always run sequentially "
        "because their per-benchmark timeouts are the experiment)",
    )
    args = parser.parse_args(argv)
    verbose = not args.quiet

    table1_rows = None
    if args.table in ("table1", "all"):
        print("Running Table 1 (Migrator, all benchmarks)...", flush=True)
        table1_rows = run_table1(
            args.benchmarks, verbose=verbose, scheduler_workers=args.scheduler_workers
        )
        print()
        print(format_table1(table1_rows))
        print()
    if args.table in ("table2", "all"):
        print("Running Table 2 (Sketch-style BMC baseline)...", flush=True)
        rows = run_table2(args.benchmarks, timeout=args.timeout, table1_rows=table1_rows,
                          verbose=verbose)
        print()
        print(format_table2(rows))
        print()
    if args.table in ("table3", "all"):
        print("Running Table 3 (enumerative baseline)...", flush=True)
        rows = run_table3(args.benchmarks, timeout=args.timeout, table1_rows=table1_rows,
                          verbose=verbose)
        print()
        print(format_table3(rows))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
