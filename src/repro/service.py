"""Multi-job migration service: batches of synthesis jobs over shared state.

The :class:`MigrationService` facade accepts batches of
:class:`MigrationJob`\\ s and schedules them through the unified execution
layer (:mod:`repro.exec`), sharing process-global artifacts across jobs:

* **Compiled-program caches** — one
  :class:`~repro.engine.compiler.ProgramCompiler` per process serves every
  job; its cache is keyed by (schema signature, function AST), so jobs over
  the same schema family skip recompilation entirely (this is where the
  multi-job throughput win over N independent ``migrate()`` calls comes
  from, alongside job-level parallelism).  Each job's
  ``SynthesisResult.cache.compiled_function_hits`` counts the closures it
  reused, so cross-job sharing is observable per job.
* **Counterexample pools** — pooled failing inputs are shared between jobs
  with the *same source program* (pools are keyed by the program
  fingerprint: an invocation sequence is only meaningful against the
  function suite that produced it).  Re-migrating one program toward several
  candidate target schemas screens later jobs with the earlier jobs'
  counterexamples.
* **Source-output caches** — the bounded LRU over source-program outputs is
  shared across all jobs of a process (entries are keyed by program
  fingerprint, so cross-job reuse is sound).

Scheduling: jobs dispatch in ``(priority, deadline, submission order)``
order — lower :attr:`MigrationJob.priority` first, earlier deadlines
breaking ties.  :attr:`MigrationJob.deadline` (seconds from ``run()``) is a
per-job completion deadline: it clips the job's ``time_limit`` so a running
job times out at the deadline, and a job still queued when its deadline
passes settles as :attr:`JobStatus.EXPIRED` without running.

Execution modes — the *same* scheduler, channels and semantics, different
transports:

* ``max_workers <= 1`` — jobs run **in-process**, one
  :class:`~repro.core.session.SynthesisSession` at a time, events delivered
  through the direct (synchronous callback) transport.
* ``max_workers > 1`` — jobs run on **worker processes**.  Typed session
  events stream *live* through the queue transport (``on_event`` fires
  mid-job, from the router thread), and ``JobHandle.cancel()`` reaches a
  running worker through the cross-process cancel flag — the session winds
  down cooperatively at its next completion iteration or tested sequence,
  exactly like the in-process mode.  Shared artifacts live in per-process
  globals.
* ``workers=["host:port", ...]`` — jobs run on **remote workers** (a
  :class:`~repro.exec.remote.RemoteFleet` of ``repro.worker`` processes,
  possibly on other machines) over the socket transport, with the same
  streaming, cancellation and retry semantics; counterexample pools sync by
  value (snapshots out, discoveries back) since there is no shared memory,
  and the job store doubles as the fleet's lease journal.

Inside the service, per-job ``parallel_workers`` is forced to 0: the service
parallelizes *across* jobs, and nesting process pools inside worker
processes is not supported.

Persistence: construct the service with ``job_store=<path>`` and every job's
lifecycle (submission with a rebuildable spec, dispatch, terminal snapshot)
is appended to a JSONL file (:mod:`repro.jobstore`).  After an interruption
— process killed mid-batch, machine rebooted — ``MigrationService.resume(path)``
reconstructs a service from the store: settled jobs come back as *restored*
handles (their recorded responses intact, nothing rerun) and only the
unfinished jobs are resubmitted; calling ``run()`` then finishes the batch,
appending to the same store.
"""

from __future__ import annotations

import copy
import enum
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Optional, Sequence, Union

from repro.core.config import SynthesisConfig
from repro.core.parallel import _worker_cache, _worker_program_compiler
from repro.core.result import SynthesisResult
from repro.core.session import (
    ExecutionDegraded,
    SessionCore,
    SessionEvent,
    SynthesisSession,
)
from repro.datamodel.schema import Schema
from repro.engine.compiler import ProgramCompiler
from repro.exec import ExecutorUnavailable, TaskState, WorkScheduler
from repro.exec.remote import RemoteFleet
from repro.jobstore import (
    JobStore,
    JobStoreFormatError,
    decode_job,
    job_pin,
    open_job_store,
)
from repro.lang.ast import Program
from repro.lang.pretty import format_program
from repro.testing_cache import CounterexamplePool, SourceOutputCache


@dataclass
class MigrationJob:
    """One schema-migration request: migrate *source_program* to *target_schema*.

    *priority* orders dispatch within a batch (lower runs first; ties run in
    submission order).  *deadline* is a wall-clock completion budget in
    seconds, measured from ``MigrationService.run()``: the job must settle by
    then — it clips the job's ``time_limit`` when the job starts, and expires
    the job outright if it is still queued when the deadline passes.
    """

    name: str
    source_program: Program
    target_schema: Schema
    config: Optional[SynthesisConfig] = None
    priority: int = 0
    deadline: Optional[float] = None
    #: The submitting tenant, for multi-tenant fronts ("" = direct/untenanted).
    #: Stored specs from format v2 predate this field — always read it with
    #: ``getattr(job, "tenant", "")``.
    tenant: str = ""
    #: The registry workload this job was built from, when the submitter
    #: knows it (the server records it so resume can re-pin the job against
    #: the *current* registry).  Read with ``getattr(job, "workload", None)``.
    workload: Optional[str] = None


class JobStatus(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"          # the job ran to completion (the result says whether
    #                        synthesis itself succeeded, timed out, or failed)
    FAILED = "failed"      # the job raised an error before producing a result
    CANCELLED = "cancelled"
    EXPIRED = "expired"    # the job's deadline passed while it was still queued
    QUARANTINED = "quarantined"  # poison job: repeatedly killed its workers
    INCOMPATIBLE = "incompatible"  # resume refused the stored spec: format
    #                                version, registry drift, or pin mismatch


class JobHandle:
    """Progress/result handle for one submitted job."""

    def __init__(self, job: MigrationJob):
        self.job = job
        self.status = JobStatus.PENDING
        self.result: Optional[SynthesisResult] = None
        self.error: str = ""
        self._cancel = threading.Event()
        self._session: Optional[SynthesisSession] = None
        self._task = None  # the scheduler TaskHandle, while running
        self._wall_deadline: Optional[float] = None
        #: The stored response payload of a handle rebuilt from a job store
        #: (``to_dict`` serves it verbatim; ``result`` stays ``None``).
        self._restored: Optional[dict] = None
        #: The job store already holds this handle's terminal snapshot.
        self._settled_recorded = False

    @classmethod
    def from_record(cls, record: dict) -> "JobHandle":
        """Rebuild a settled handle from its job-store terminal snapshot.

        The handle reports the recorded status/error and serves the recorded
        response from :meth:`to_dict`; the deserialized ``result`` object is
        not reconstructed (``to_dict()["result"]`` carries the payload).
        """
        job = MigrationJob(
            name=record.get("job", "?"), source_program=None, target_schema=None
        )
        handle = cls(job)
        try:
            handle.status = JobStatus(record.get("status", "done"))
        except ValueError:
            handle.status = JobStatus.DONE
        handle.error = record.get("error", "")
        handle._restored = {
            key: value for key, value in record.items() if key not in ("type", "spec")
        }
        handle._settled_recorded = True
        return handle

    @property
    def restored(self) -> bool:
        """Was this handle rebuilt from a job store rather than run here?"""
        return self._restored is not None

    def cancel(self) -> None:
        """Request cancellation.

        Pending jobs are skipped.  A running job — in-process *or* inside a
        pooled worker — winds down cooperatively at its next completion-loop
        iteration or tested sequence: the request crosses the process
        boundary through the execution layer's shared cancel flag and the
        job settles with a partial, ``cancelled`` result.
        """
        self._cancel.set()
        if self._session is not None:
            self._session.cancel()
        if self._task is not None:
            self._task.cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancel.is_set()

    @property
    def done(self) -> bool:
        return self.status in (
            JobStatus.DONE,
            JobStatus.FAILED,
            JobStatus.CANCELLED,
            JobStatus.EXPIRED,
            JobStatus.QUARANTINED,
            JobStatus.INCOMPATIBLE,
        )

    def _mark_running(self) -> None:
        if self.status is JobStatus.PENDING:
            self.status = JobStatus.RUNNING

    def to_dict(self, *, include_program: bool = True) -> dict:
        """The service's JSON-ready response shape for this job."""
        if self._restored is not None:
            # Deep copy: live handles build a fresh payload per call, so a
            # caller mutating one response must not bleed into later calls.
            return copy.deepcopy(self._restored)
        return {
            "job": self.job.name,
            "status": self.status.value,
            "error": self.error,
            "result": (
                self.result.to_dict(include_program=include_program)
                if self.result is not None
                else None
            ),
        }


@dataclass
class _JobTask:
    """One job shipped to a service worker (pool process or remote peer)."""

    name: str
    source_program: Program
    target_schema: Schema
    config: SynthesisConfig
    #: Absolute completion deadline (``time.time()`` base), or ``None``.
    wall_deadline: Optional[float] = None
    #: The parent's accumulated counterexamples for this job's source program
    #: (cache sync: workers merge the snapshot instead of assuming shared
    #: process memory — which remote peers by definition lack).
    pool_snapshot: list = field(default_factory=list)


@dataclass
class _JobOutcome:
    """A worker's reply: the result plus the cache deltas to merge back.

    ``counterexamples`` are only the sequences *this* job discovered (the
    shipped snapshot is already in the parent's pool), so the parent-side
    merge stays O(new discoveries) per job regardless of pool size.
    """

    result: SynthesisResult
    counterexamples: list = field(default_factory=list)
    #: Source-program fingerprint keying the parent pool to merge into.
    source_key: str = ""


#: Per-worker-process cross-job counterexample pools, keyed by source-program
#: fingerprint (sequences only transfer between jobs migrating the same
#: source program).
_process_pools: dict[str, CounterexamplePool] = {}


def _shared_pool_for(
    pools: dict[str, CounterexamplePool], source_key: str, config: SynthesisConfig
) -> Optional[CounterexamplePool]:
    """Fetch/create the cross-job pool for one source program.

    Serves both the in-process service pools and the per-worker-process
    globals (same lookup rules, different dict).  The pool's *entries*
    persist across jobs — that is the sharing — but its reporting counters
    are reset per job, so each ``SynthesisResult.cache`` reflects that job's
    own screening (mirroring the snapshot-stats reset parallel workers do).
    """
    if not config.counterexample_pool:
        return None
    pool = pools.get(source_key)
    if pool is None:
        pool = CounterexamplePool(config.pool_max_size)
        pools[source_key] = pool
    elif pool.max_size != config.pool_max_size:
        # A job with a different cap gets a re-capped pool carrying the
        # entries earlier jobs discovered (merge evicts down to the new cap)
        # — never an empty one; the sharing is the point of the service.
        resized = CounterexamplePool(config.pool_max_size)
        resized.merge(pool.snapshot())
        pool = resized
        pools[source_key] = pool
        pool.stats = type(pool.stats)()
    else:
        pool.stats = type(pool.stats)()
    return pool


def _clip_to_deadline(
    config: SynthesisConfig, wall_deadline: Optional[float]
) -> SynthesisConfig:
    """Fold an absolute completion deadline into the job's ``time_limit``."""
    if wall_deadline is None:
        return config
    remaining = max(0.0, wall_deadline - time.time())
    if config.time_limit is None or remaining < config.time_limit:
        config = replace(config, time_limit=remaining)
    return config


def _run_job_in_worker(task: _JobTask, ctx) -> _JobOutcome:
    """Service worker entry point: run one job over the process-shared artifacts.

    *ctx* is the scheduler-provided :class:`~repro.exec.WorkContext`: typed
    session events stream out through ``ctx.emit`` (live, when the parent
    subscribed) and the cross-process cancel flag comes in as the session's
    cancel signal.  The same entry point serves pool processes and remote
    workers — cache sync is explicit either way: the parent's accumulated
    counterexamples arrive in ``task.pool_snapshot`` and merge into this
    process's pool for the source program; sequences discovered here travel
    back in the :class:`_JobOutcome` (the compiled-closure cache stays
    process-local — closures cannot cross a process boundary — but its
    hit/miss deltas surface on ``result.cache`` to prove reuse remotely).
    """
    config = _clip_to_deadline(task.config, task.wall_deadline)
    source_key = format_program(task.source_program)
    pool = _shared_pool_for(_process_pools, source_key, config)
    if pool is not None and task.pool_snapshot:
        pool.merge(task.pool_snapshot)
        # Stats must reflect this job's own screening, not the snapshot.
        pool.stats.added = 0
        pool.stats.duplicates = 0
    core = SessionCore(
        task.source_program,
        task.target_schema,
        config,
        pool=pool,
        source_cache=_worker_cache(config.source_cache_max_entries),
        compiler=_worker_program_compiler(config),
    )
    session = SynthesisSession(
        task.source_program,
        task.target_schema,
        config,
        core=core,
        on_event=ctx.emit if ctx.streaming else None,
        cancel_signal=ctx.cancel_event,
    )
    result = session.run()
    fresh: list = []
    if pool is not None:
        # Ship back only sequences this job discovered (the snapshot is
        # already in the parent's pool).
        seen = set(task.pool_snapshot)
        fresh = [sequence for sequence in pool.snapshot() if sequence not in seen]
    return _JobOutcome(result=result, counterexamples=fresh, source_key=source_key)


class MigrationService:
    """Facade running batches of migration jobs with shared artifacts.

    Usage::

        service = MigrationService(max_workers=4)
        handles = service.submit_batch(jobs)
        service.run()                    # blocks until every job settles
        responses = [h.to_dict() for h in handles]

    or, as a one-call convenience, ``service.migrate_batch(jobs)``.

    ``on_event`` receives ``(job_name, event)`` for every typed session
    event, in both execution modes: synchronously on the running thread
    in-process, live from the event-router thread when jobs run on worker
    processes.  Delivery is exactly-once in crash-free runs; if a worker
    process crashes mid-job and the scheduler retries it, the retried job
    re-streams from the start, so consumers see that job's prefix again
    (at-least-once under crashes — same contract as the parallel session).

    *job_store* (a path or a :class:`~repro.jobstore.JobStore`) enables the
    persistent batch log — see the module docstring and
    :meth:`MigrationService.resume`.  *max_pending_events* bounds the pooled
    modes' shared event queue (backpressure; see :mod:`repro.exec.channel`).

    *workers* turns the service into the front of a **remote fleet**: a list
    of ``"host:port"`` addresses of listening ``repro.worker`` processes (or
    a pre-built :class:`~repro.exec.remote.RemoteFleet`, e.g. one listening
    for ``--connect`` registrations).  Jobs then dispatch over the socket
    transport with the exact semantics of the pooled mode — live events,
    cross-process cancel, crash retry (here: lease re-grant when a worker
    vanishes) — and the job store doubles as the fleet's lease journal.
    """

    def __init__(
        self,
        *,
        max_workers: int = 0,
        default_config: Optional[SynthesisConfig] = None,
        on_event: Optional[Callable[[str, SessionEvent], None]] = None,
        job_store: JobStore | str | None = None,
        max_pending_events: Optional[int] = None,
        workers: Union[Sequence[str], RemoteFleet, None] = None,
        age_after: Optional[float] = None,
        age_step: int = 1,
    ):
        self.max_workers = max_workers
        self.default_config = default_config or SynthesisConfig()
        self._on_event = on_event
        if job_store is not None:
            # Paths/URLs select a backend (JSONL default, ``sqlite:`` or a
            # db extension for the indexed store); store objects — either
            # backend, or anything store-shaped — pass through.
            job_store = open_job_store(job_store)
        self._store = job_store
        self.max_pending_events = max_pending_events
        #: Anti-starvation aging forwarded to every scheduler this service
        #: builds (see :class:`~repro.exec.scheduler.WorkScheduler`): a
        #: pending job's priority improves by ``age_step`` per ``age_after``
        #: seconds waited, so weighted fair-share fronts cannot starve
        #: low-weight tenants.
        self.age_after = age_after
        self.age_step = age_step
        if workers is not None and not isinstance(workers, RemoteFleet):
            workers = RemoteFleet(workers=tuple(workers))
            self._owns_fleet = True
        else:
            self._owns_fleet = False
        self._fleet: Optional[RemoteFleet] = workers
        if self._fleet is not None and self._fleet.lease_log is None:
            # The batch log is the lease journal: one file tells the whole
            # story of who ran what, and a crashed coordinator's open leases
            # are visible right next to the jobs they belong to.
            self._fleet.lease_log = self._store
        self._handles: list[JobHandle] = []
        # In-process shared artifacts (the worker-process equivalents live in
        # module globals of this module / repro.core.parallel).
        self._compiler = ProgramCompiler()
        self._pools: dict[str, CounterexamplePool] = {}
        self._source_cache = SourceOutputCache(self.default_config.source_cache_max_entries)

    # ------------------------------------------------------------- submission
    def submit(self, job: MigrationJob) -> JobHandle:
        handle = JobHandle(job)
        self._handles.append(handle)
        if self._store is not None:
            self._store.record_submitted(handle, job)
        return handle

    def submit_batch(self, jobs: Iterable[MigrationJob]) -> list[JobHandle]:
        return [self.submit(job) for job in jobs]

    def submit_deferred(self, job: MigrationJob) -> None:
        """Record *job* in the store without tracking or running it here.

        The record-only half of the deferred-submission pattern: the job
        exists only as a ``submitted`` store record until a later
        :meth:`adopt_unfinished` (on this service or another over the same
        store) or :meth:`resume` (after a restart) picks it up.  Requires a
        job store.
        """
        if self._store is None:
            raise ValueError("submit_deferred requires a job_store")
        self._store.record_submitted(JobHandle(job), job)

    @classmethod
    def resume(
        cls,
        path: "JobStore | str",
        *,
        max_workers: int = 0,
        default_config: Optional[SynthesisConfig] = None,
        on_event: Optional[Callable[[str, SessionEvent], None]] = None,
        max_pending_events: Optional[int] = None,
        age_after: Optional[float] = None,
        age_step: int = 1,
    ) -> "MigrationService":
        """Reconstruct an interrupted batch from its job store.

        Jobs whose latest record is terminal come back as restored handles —
        their recorded responses are served verbatim and they are **not**
        rerun.  Unfinished jobs (still pending, or interrupted mid-run) are
        rebuilt from their stored specs, **re-pinned** (below) and
        resubmitted *without* a duplicate submission record; call
        :meth:`run` on the returned service to finish the batch (new
        lifecycle records append to the same store).

        Re-pinning: a stored spec is an old pickle, and the code or workload
        registry may have moved since it was written.  Each spec is decoded
        through the format-version gate, then verified against the identity
        pin recorded at submission — and, for registry-built jobs (spec
        carries a ``workload`` name), against the *current* registry: the
        workload must still exist and its source program must still
        fingerprint to the recorded pin, in which case the job is re-pointed
        at the current registry objects.  Jobs that fail any gate settle
        immediately as :attr:`JobStatus.INCOMPATIBLE` — a loud terminal
        status in the store — instead of running a spec that no longer means
        what it meant.
        """
        service = cls(
            max_workers=max_workers,
            default_config=default_config,
            on_event=on_event,
            job_store=path,
            max_pending_events=max_pending_events,
            age_after=age_after,
            age_step=age_step,
        )
        for stored in service._store.load_jobs().values():
            if stored.settled:
                service._handles.append(JobHandle.from_record(stored.last))
            elif stored.resumable:
                # Bypass submit(): the store already has this job's
                # submission record (append-only history, no duplicates).
                service._handles.append(service._repin(stored))
            # Unfinished jobs without a spec (foreign/damaged records) are
            # unrecoverable; they stay out of the resumed batch.
        service._record_settled()  # INCOMPATIBLE verdicts land immediately
        return service

    def _repin(self, stored) -> JobHandle:
        """Decode and re-verify one stored spec; INCOMPATIBLE on any drift."""

        def incompatible(reason: str) -> JobHandle:
            handle = JobHandle(
                MigrationJob(name=stored.name, source_program=None, target_schema=None)
            )
            handle.status = JobStatus.INCOMPATIBLE
            handle.error = reason
            return handle

        try:
            job = decode_job(stored.spec)
        except JobStoreFormatError as error:
            return incompatible(str(error))
        # Old-format pickles (v2) predate the tenant/workload fields; give
        # the attributes real slots so downstream getattr-free code works.
        job.__dict__.setdefault("tenant", stored.tenant)
        job.__dict__.setdefault("workload", None)
        stored_pin = (stored.last or {}).get("pin") or (
            {"source": stored.fingerprint} if stored.fingerprint else None
        )
        workload_name = getattr(job, "workload", None)
        if workload_name:
            # Registry-built job: re-pin against the *current* registry.
            from repro.workloads import get_benchmark

            try:
                benchmark = get_benchmark(workload_name)
            except KeyError:
                return incompatible(
                    f"workload {workload_name!r} is gone from the registry"
                )
            current_pin = job_pin(
                MigrationJob(
                    name=stored.name,
                    source_program=benchmark.source_program,
                    target_schema=job.target_schema,
                )
            )
            if stored_pin is not None and stored_pin.get("source") != current_pin["source"]:
                return incompatible(
                    f"workload {workload_name!r} no longer matches the stored pin "
                    f"(stored {stored_pin.get('source')}, registry {current_pin['source']})"
                )
            job.source_program = benchmark.source_program
        elif stored_pin is not None:
            recomputed = job_pin(job)
            if recomputed is None or recomputed.get("source") != stored_pin.get("source"):
                return incompatible(
                    "stored spec no longer matches its submission pin "
                    f"(stored {stored_pin.get('source')}, decoded "
                    f"{recomputed.get('source') if recomputed else None})"
                )
        return JobHandle(job)

    def adopt_unfinished(self) -> list[JobHandle]:
        """Rescan the job store and submit stored unfinished jobs not yet here.

        The live-service complement of :meth:`resume`: a front that accepts
        record-only ("deferred") submissions — written to the store by
        another service instance or another process — calls this to pull
        them into the running batch.  Only *deferred* standings are adopted
        (latest record still ``pending``): a ``running`` record means some
        live service owns that job right now, and adopting it would
        double-execute — claiming interrupted-mid-run jobs is
        :meth:`resume`'s post-crash prerogative.  Job names decide identity;
        adopted jobs go through :meth:`submit`, so the store's append-only
        history simply gains a fresh submission record (latest record wins
        on load).
        """
        if self._store is None:
            return []
        known = {handle.job.name for handle in self._handles}
        adopted: list[JobHandle] = []
        for stored in self._store.load_jobs().values():
            if stored.name not in known and stored.deferred:
                adopted.append(self.submit(decode_job(stored.spec)))
        return adopted

    @property
    def handles(self) -> list[JobHandle]:
        return list(self._handles)

    def cancel_all(self) -> None:
        for handle in self._handles:
            if not handle.done:
                handle.cancel()

    # -------------------------------------------------------------- execution
    def run(self) -> list[JobHandle]:
        """Run every pending job to a settled state; returns all handles."""
        pending = [handle for handle in self._handles if handle.status is JobStatus.PENDING]
        if not pending:
            return self.handles
        started = time.time()
        for handle in pending:
            deadline = handle.job.deadline
            handle._wall_deadline = None if deadline is None else started + deadline
        try:
            if self._fleet is not None or self.max_workers > 1:
                pending = self._run_pooled(pending)
            if pending:
                self._run_inline(pending)
        finally:
            self._record_settled()
        return self.handles

    def close(self) -> None:
        """Release the remote fleet, if this service constructed one.

        A fleet passed in as an object is borrowed and stays open (its owner
        may be sharing it across services); only address-list fleets are
        closed here.  Safe to call repeatedly; ``with MigrationService(...)``
        does it on exit.
        """
        if self._fleet is not None and self._owns_fleet:
            self._fleet.close()

    def __enter__(self) -> "MigrationService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------ persistence
    def _job_started(self, handle: JobHandle) -> None:
        was_pending = handle.status is JobStatus.PENDING
        handle._mark_running()
        if was_pending and self._store is not None:
            self._store.record_running(handle)

    def _record_settled(self) -> None:
        """Append terminal snapshots for every newly settled handle."""
        if self._store is None:
            return
        for handle in self._handles:
            if handle.done and not handle._settled_recorded:
                # Flag only after the append succeeds: a failed write (disk
                # full) stays unrecorded and is retried by the next run().
                self._store.record_settled(handle)
                handle._settled_recorded = True

    def migrate_batch(self, jobs: Iterable[MigrationJob]) -> list[SynthesisResult]:
        """Submit, run, and return the results of *jobs* (in submission order).

        Raises ``RuntimeError`` for jobs that failed before producing a
        result; prefer ``submit_batch`` + ``run`` + handles when partial
        failure must be tolerated.
        """
        handles = self.submit_batch(jobs)
        self.run()
        results = []
        for handle in handles:
            if handle.result is None:
                raise RuntimeError(
                    f"job {handle.job.name!r} {handle.status.value}: {handle.error or 'no result'}"
                )
            results.append(handle.result)
        return results

    # --------------------------------------------------------------- plumbing
    def _job_config(self, job: MigrationJob) -> SynthesisConfig:
        config = job.config or self.default_config
        if config.parallel_workers > 1:
            # The service parallelizes across jobs; nested per-job process
            # pools are not supported (and would oversubscribe the host).
            config = replace(config, parallel_workers=0)
        return config

    def _subscriber(self, job_name: str):
        """The tagged per-job event subscriber, or ``None`` when unobserved."""
        if self._on_event is None:
            return None
        service_callback = self._on_event

        def deliver(event: SessionEvent, _name=job_name) -> None:
            service_callback(_name, event)

        return deliver

    def _apply_task(self, handle: JobHandle) -> bool:
        """Map a settled scheduler task back onto its job handle.

        Returns ``False`` when the task never settled (executor-failure
        unwind left it PENDING) so the caller can re-run it inline.
        """
        task = handle._task
        if task is None:
            return True
        if task.state in (TaskState.PENDING, TaskState.RUNNING):
            # Never settled: the executor-failure unwind left it queued (or
            # mid-flight on a broken pool, which produced no result either
            # way) — hand it to the inline fallback.
            handle._task = None
            handle.status = JobStatus.PENDING
            return False
        handle._task = None
        if task.state is TaskState.DONE:
            outcome = task.result
            if isinstance(outcome, _JobOutcome):
                # Pooled/remote workers reply with cache deltas attached:
                # fold the fresh counterexamples into the parent-side pool so
                # later jobs over the same source program — and later
                # snapshots shipped to workers — screen with them.
                result: SynthesisResult = outcome.result
                if outcome.counterexamples and outcome.source_key:
                    parent_pool = self._pools.get(outcome.source_key)
                    if parent_pool is None:
                        parent_pool = CounterexamplePool(
                            self._job_config(handle.job).pool_max_size
                        )
                        self._pools[outcome.source_key] = parent_pool
                    parent_pool.merge(outcome.counterexamples)
            else:
                result = outcome
            if (
                result.cancelled
                and not handle.cancelled
                and handle._wall_deadline is not None
                and time.time() >= handle._wall_deadline
            ):
                # The scheduler's deadline nudge (not the user) raised the
                # cancel signal: report the truthful outcome — the job ran
                # out of its deadline budget.
                result.cancelled = False
                result.timed_out = True
            handle.result = result
            handle.status = JobStatus.CANCELLED if result.cancelled else JobStatus.DONE
        elif task.state is TaskState.FAILED:
            handle.status = JobStatus.FAILED
            handle.error = task.error
        elif task.state is TaskState.CANCELLED:
            handle.status = JobStatus.CANCELLED
        elif task.state is TaskState.QUARANTINED:
            # The scheduler stopped re-leasing a job that kept killing its
            # workers; surface the quarantine (and its cause) on the handle.
            handle.status = JobStatus.QUARANTINED
            handle.error = task.error or "job quarantined after killing workers"
        else:  # EXPIRED
            handle.status = JobStatus.EXPIRED
            handle.error = "job deadline expired"
        return True

    # ----------------------------------------------------------- in-process
    def _execute_job(self, handle: JobHandle, ctx) -> SynthesisResult:
        """Run one job in-process over the service-shared artifacts."""
        job = handle.job
        config = _clip_to_deadline(self._job_config(job), handle._wall_deadline)
        self._job_started(handle)
        # Honor the job's cache-size knob without discarding shared
        # entries: capacity only grows (put() reads max_entries live, so
        # growing in place is safe).  A smaller request is already
        # satisfied by the larger shared cache; shrinking it would throw
        # away the cross-job reuse the service exists for.
        if config.source_cache_max_entries > self._source_cache.max_entries:
            self._source_cache.max_entries = config.source_cache_max_entries
        core = SessionCore(
            job.source_program,
            job.target_schema,
            config,
            pool=_shared_pool_for(self._pools, format_program(job.source_program), config),
            source_cache=self._source_cache,
            compiler=self._compiler
            if config.execution_backend in ("compiled", "columnar")
            else None,
        )
        session = SynthesisSession(
            job.source_program,
            job.target_schema,
            config,
            core=core,
            on_event=ctx.emit if ctx.streaming else None,
            cancel_signal=ctx.cancel_event,
        )
        handle._session = session
        try:
            if handle.cancelled:  # cancelled between scheduling and dispatch
                session.cancel()
            return session.run()
        finally:
            handle._session = None

    def _run_inline(self, pending: list[JobHandle]) -> None:
        with WorkScheduler(
            max_workers=0, age_after=self.age_after, age_step=self.age_step
        ) as scheduler:
            submitted: list[JobHandle] = []
            for handle in pending:
                if handle.cancelled:
                    handle.status = JobStatus.CANCELLED
                    continue
                job = handle.job

                def run_job(_payload, ctx, _handle=handle) -> SynthesisResult:
                    return self._execute_job(_handle, ctx)

                handle._task = scheduler.submit(
                    run_job,
                    priority=job.priority,
                    deadline=handle._wall_deadline,
                    on_event=self._subscriber(job.name),
                    name=job.name,
                )
                submitted.append(handle)
            scheduler.drain()
            for handle in submitted:
                self._apply_task(handle)

    # -------------------------------------------------------------- pooled
    def _run_pooled(self, pending: list[JobHandle]) -> list[JobHandle]:
        """Run jobs on workers (pool or fleet); returns handles for inline fallback."""
        runnable: list[JobHandle] = []
        for handle in pending:
            if handle.cancelled:
                handle.status = JobStatus.CANCELLED
            else:
                runnable.append(handle)
        if not runnable:
            return []
        resilience = self.default_config.resilience

        def note_degrade(from_mode: str, to_mode: str, reason: str) -> None:
            # One rung down the degradation ladder: journal it next to the
            # job records (auditable trail), then tell every still-unsettled
            # job's subscriber so streaming clients see the switch live.
            unsettled = [
                handle.job.name
                for handle in runnable
                if handle.status in (JobStatus.PENDING, JobStatus.RUNNING)
            ]
            if self._store is not None:
                try:
                    self._store.record_degraded(
                        from_mode, to_mode, reason, jobs=unsettled
                    )
                except OSError:  # pragma: no cover - journal is best-effort
                    pass
            event = ExecutionDegraded(
                from_mode=from_mode, to_mode=to_mode, reason=reason
            )
            for name in unsettled:
                deliver = self._subscriber(name)
                if deliver is not None:
                    deliver(event)

        scheduler_options = {
            "retry": resilience.retry,
            "timeout": resilience.timeout,
            "age_after": self.age_after,
            "age_step": self.age_step,
        }
        if self.max_pending_events is not None:
            scheduler_options["max_pending_events"] = self.max_pending_events
        if self._fleet is not None:
            # Fleet width is the workers' live capacity (max_workers, when
            # set, clamps it); the fleet object is borrowed by the scheduler
            # so it survives for the next run() over the same batch store.
            scheduler_options["fleet"] = self._fleet
            scheduler_options["max_workers"] = max(0, self.max_workers)
            # First ladder rung (fleet -> local pool) lives in the scheduler;
            # the pool -> inline rung below is service-owned, because only
            # the service may run jobs in-process without leaking worker
            # globals into the parent.  Keep the pool at >= 2 for that reason.
            scheduler_options["degrade"] = resilience.degrade_ladder
            scheduler_options["degrade_workers"] = max(2, resilience.degrade_workers)
            scheduler_options["on_degrade"] = note_degrade
        else:
            # Never clamp below 2: a 1-job batch must still run on a worker
            # process (the scheduler's inline mode would execute the pooled
            # entry point in the parent, leaking worker-process globals there).
            scheduler_options["max_workers"] = max(2, min(self.max_workers, len(runnable)))
        with WorkScheduler(**scheduler_options) as scheduler:
            for handle in runnable:
                job = handle.job
                config = self._job_config(job)
                source_key = format_program(job.source_program)
                parent_pool = (
                    self._pools.get(source_key) if config.counterexample_pool else None
                )
                handle._task = scheduler.submit(
                    _run_job_in_worker,
                    _JobTask(
                        name=job.name,
                        source_program=job.source_program,
                        target_schema=job.target_schema,
                        config=config,
                        wall_deadline=handle._wall_deadline,
                        pool_snapshot=(
                            parent_pool.snapshot() if parent_pool is not None else []
                        ),
                    ),
                    priority=job.priority,
                    deadline=handle._wall_deadline,
                    on_event=self._subscriber(job.name),
                    on_start=lambda _handle=handle: self._job_started(_handle),
                    name=job.name,
                )
                if handle.cancelled:
                    # cancel() raced the submit loop: with _task unset it
                    # could only record the request — propagate it now.
                    handle._task.cancel()
            try:
                scheduler.drain()
            except ExecutorUnavailable as error:
                # Last ladder rung: every worker backend is gone — finish the
                # unsettled jobs in-process (sequentially) after recording
                # the step so the batch trail explains why.
                unfinished = [
                    handle for handle in runnable if not self._apply_task(handle)
                ]
                if unfinished:
                    note_degrade(
                        "fleet" if scheduler.fleet is not None else "pool",
                        "inline",
                        str(error) or type(error).__name__,
                    )
                return unfinished
            for handle in runnable:
                self._apply_task(handle)
        return []


def migrate_batch(
    jobs: Iterable[MigrationJob],
    *,
    max_workers: int = 0,
    default_config: Optional[SynthesisConfig] = None,
) -> list[SynthesisResult]:
    """One-call batch migration over a throwaway :class:`MigrationService`."""
    service = MigrationService(max_workers=max_workers, default_config=default_config)
    return service.migrate_batch(jobs)
