"""Multi-job migration service: batches of synthesis jobs over shared state.

The :class:`MigrationService` facade accepts batches of
:class:`MigrationJob`\\ s and schedules them over the existing worker-pool
machinery, sharing process-global artifacts across jobs:

* **Compiled-program caches** — one
  :class:`~repro.engine.compiler.ProgramCompiler` per process serves every
  job; its cache is keyed by (schema signature, function AST), so jobs over
  the same schema family skip recompilation entirely (this is where the
  multi-job throughput win over N independent ``migrate()`` calls comes
  from, alongside job-level parallelism).
* **Counterexample pools** — pooled failing inputs are shared between jobs
  with the *same source program* (pools are keyed by the program
  fingerprint: an invocation sequence is only meaningful against the
  function suite that produced it).  Re-migrating one program toward several
  candidate target schemas screens later jobs with the earlier jobs'
  counterexamples.
* **Source-output caches** — the bounded LRU over source-program outputs is
  shared across all jobs of a process (entries are keyed by program
  fingerprint, so cross-job reuse is sound).

Two execution modes:

* ``max_workers <= 1`` — jobs run **in-process**, one
  :class:`~repro.core.session.SynthesisSession` at a time.  Full event
  streaming (``on_event`` fires for every session event, tagged with the
  job) and cooperative mid-job cancellation via ``JobHandle.cancel()``.
* ``max_workers > 1`` — jobs are dispatched to **worker processes** (same
  fork-based executor as the parallel front-end).  Shared artifacts live in
  per-process globals; running jobs cannot be cancelled mid-flight (pending
  ones can), and events arrive post-hoc as the ``events`` summaries on each
  result's :class:`~repro.core.result.AttemptRecord`\\ s.

Inside the service, per-job ``parallel_workers`` is forced to 0: the service
parallelizes *across* jobs, and nesting process pools inside worker
processes is not supported.
"""

from __future__ import annotations

import enum
import threading
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures import CancelledError as futures_CancelledError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Callable, Iterable, Optional

from repro.core.config import SynthesisConfig
from repro.core.parallel import _make_executor, _worker_cache, _worker_program_compiler
from repro.core.result import SynthesisResult
from repro.core.session import SessionCore, SessionEvent, SynthesisSession
from repro.datamodel.schema import Schema
from repro.engine.compiler import ProgramCompiler
from repro.lang.ast import Program
from repro.lang.pretty import format_program
from repro.testing_cache import CounterexamplePool, SourceOutputCache


@dataclass
class MigrationJob:
    """One schema-migration request: migrate *source_program* to *target_schema*."""

    name: str
    source_program: Program
    target_schema: Schema
    config: Optional[SynthesisConfig] = None


class JobStatus(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"          # the job ran to completion (the result says whether
    #                        synthesis itself succeeded, timed out, or failed)
    FAILED = "failed"      # the job raised an error before producing a result
    CANCELLED = "cancelled"


class JobHandle:
    """Progress/result handle for one submitted job."""

    def __init__(self, job: MigrationJob):
        self.job = job
        self.status = JobStatus.PENDING
        self.result: Optional[SynthesisResult] = None
        self.error: str = ""
        self._cancel = threading.Event()
        self._session: Optional[SynthesisSession] = None
        self._future = None  # the executor future, in pooled mode

    def cancel(self) -> None:
        """Request cancellation.

        Pending jobs are skipped; a job currently running in-process winds
        down cooperatively at its next completion-loop iteration or tested
        sequence.  In pooled mode a job still queued behind busy workers is
        cancelled before it starts; one already running in a worker process
        is not interrupted (the request is recorded but cannot cross the
        process boundary).
        """
        self._cancel.set()
        if self._session is not None:
            self._session.cancel()
        if self._future is not None:
            self._future.cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancel.is_set()

    @property
    def done(self) -> bool:
        return self.status in (JobStatus.DONE, JobStatus.FAILED, JobStatus.CANCELLED)

    def to_dict(self, *, include_program: bool = True) -> dict:
        """The service's JSON-ready response shape for this job."""
        return {
            "job": self.job.name,
            "status": self.status.value,
            "error": self.error,
            "result": (
                self.result.to_dict(include_program=include_program)
                if self.result is not None
                else None
            ),
        }


@dataclass
class _JobTask:
    """One job shipped to a service worker process."""

    name: str
    source_program: Program
    target_schema: Schema
    config: SynthesisConfig


#: Per-worker-process cross-job counterexample pools, keyed by source-program
#: fingerprint (sequences only transfer between jobs migrating the same
#: source program).
_process_pools: dict[str, CounterexamplePool] = {}


def _shared_pool_for(
    pools: dict[str, CounterexamplePool], source_key: str, config: SynthesisConfig
) -> Optional[CounterexamplePool]:
    """Fetch/create the cross-job pool for one source program.

    Serves both the in-process service pools and the per-worker-process
    globals (same lookup rules, different dict).  The pool's *entries*
    persist across jobs — that is the sharing — but its reporting counters
    are reset per job, so each ``SynthesisResult.cache`` reflects that job's
    own screening (mirroring the snapshot-stats reset parallel workers do).
    """
    if not config.counterexample_pool:
        return None
    pool = pools.get(source_key)
    if pool is None:
        pool = CounterexamplePool(config.pool_max_size)
        pools[source_key] = pool
    elif pool.max_size != config.pool_max_size:
        # A job with a different cap gets a re-capped pool carrying the
        # entries earlier jobs discovered (merge evicts down to the new cap)
        # — never an empty one; the sharing is the point of the service.
        resized = CounterexamplePool(config.pool_max_size)
        resized.merge(pool.snapshot())
        pool = resized
        pools[source_key] = pool
        pool.stats = type(pool.stats)()
    else:
        pool.stats = type(pool.stats)()
    return pool


def _run_job_in_worker(task: _JobTask) -> SynthesisResult:
    """Service worker entry point: run one job over the process-shared artifacts."""
    config = task.config
    core = SessionCore(
        task.source_program,
        task.target_schema,
        config,
        pool=_shared_pool_for(_process_pools, format_program(task.source_program), config),
        source_cache=_worker_cache(config.source_cache_max_entries),
        compiler=_worker_program_compiler(config),
    )
    return SynthesisSession(task.source_program, task.target_schema, config, core=core).run()


class MigrationService:
    """Facade running batches of migration jobs with shared artifacts.

    Usage::

        service = MigrationService(max_workers=4)
        handles = service.submit_batch(jobs)
        service.run()                    # blocks until every job settles
        responses = [h.to_dict() for h in handles]

    or, as a one-call convenience, ``service.migrate_batch(jobs)``.
    """

    def __init__(
        self,
        *,
        max_workers: int = 0,
        default_config: Optional[SynthesisConfig] = None,
        on_event: Optional[Callable[[str, SessionEvent], None]] = None,
    ):
        self.max_workers = max_workers
        self.default_config = default_config or SynthesisConfig()
        self._on_event = on_event
        self._handles: list[JobHandle] = []
        # In-process shared artifacts (the worker-process equivalents live in
        # module globals of this module / repro.core.parallel).
        self._compiler = ProgramCompiler()
        self._pools: dict[str, CounterexamplePool] = {}
        self._source_cache = SourceOutputCache(self.default_config.source_cache_max_entries)

    # ------------------------------------------------------------- submission
    def submit(self, job: MigrationJob) -> JobHandle:
        handle = JobHandle(job)
        self._handles.append(handle)
        return handle

    def submit_batch(self, jobs: Iterable[MigrationJob]) -> list[JobHandle]:
        return [self.submit(job) for job in jobs]

    @property
    def handles(self) -> list[JobHandle]:
        return list(self._handles)

    def cancel_all(self) -> None:
        for handle in self._handles:
            if not handle.done:
                handle.cancel()

    # -------------------------------------------------------------- execution
    def run(self) -> list[JobHandle]:
        """Run every pending job to completion; returns all handles."""
        pending = [handle for handle in self._handles if handle.status is JobStatus.PENDING]
        if not pending:
            return self.handles
        if self.max_workers > 1:
            self._run_pooled(pending)
        else:
            for handle in pending:
                self._run_in_process(handle)
        return self.handles

    def migrate_batch(self, jobs: Iterable[MigrationJob]) -> list[SynthesisResult]:
        """Submit, run, and return the results of *jobs* (in submission order).

        Raises ``RuntimeError`` for jobs that failed before producing a
        result; prefer ``submit_batch`` + ``run`` + handles when partial
        failure must be tolerated.
        """
        handles = self.submit_batch(jobs)
        self.run()
        results = []
        for handle in handles:
            if handle.result is None:
                raise RuntimeError(
                    f"job {handle.job.name!r} {handle.status.value}: {handle.error or 'no result'}"
                )
            results.append(handle.result)
        return results

    # ----------------------------------------------------------- in-process
    def _job_config(self, job: MigrationJob) -> SynthesisConfig:
        config = job.config or self.default_config
        if config.parallel_workers > 1:
            # The service parallelizes across jobs; nested per-job process
            # pools are not supported (and would oversubscribe the host).
            config = replace(config, parallel_workers=0)
        return config

    def _run_in_process(self, handle: JobHandle) -> None:
        if handle.cancelled:
            handle.status = JobStatus.CANCELLED
            return
        job = handle.job
        config = self._job_config(job)
        on_event = None
        if self._on_event is not None:
            service_callback = self._on_event

            def on_event(event: SessionEvent, name=job.name) -> None:
                service_callback(name, event)

        handle.status = JobStatus.RUNNING
        try:
            # Honor the job's cache-size knob without discarding shared
            # entries: capacity only grows (put() reads max_entries live, so
            # growing in place is safe).  A smaller request is already
            # satisfied by the larger shared cache; shrinking it would throw
            # away the cross-job reuse the service exists for.
            if config.source_cache_max_entries > self._source_cache.max_entries:
                self._source_cache.max_entries = config.source_cache_max_entries
            core = SessionCore(
                job.source_program,
                job.target_schema,
                config,
                pool=_shared_pool_for(self._pools, format_program(job.source_program), config),
                source_cache=self._source_cache,
                compiler=self._compiler if config.execution_backend == "compiled" else None,
            )
            session = SynthesisSession(
                job.source_program, job.target_schema, config, core=core, on_event=on_event
            )
            handle._session = session
            if handle.cancelled:  # cancelled between the check above and now
                session.cancel()
            result = session.run()
        except Exception as error:  # noqa: BLE001 - job isolation boundary
            handle.status = JobStatus.FAILED
            handle.error = f"{type(error).__name__}: {error}"
            return
        finally:
            handle._session = None
        handle.result = result
        handle.status = JobStatus.CANCELLED if result.cancelled else JobStatus.DONE

    # -------------------------------------------------------------- pooled
    def _run_pooled(self, pending: list[JobHandle]) -> None:
        runnable: list[JobHandle] = []
        for handle in pending:
            if handle.cancelled:
                handle.status = JobStatus.CANCELLED
            else:
                runnable.append(handle)
        if not runnable:
            return
        try:
            executor = _make_executor(min(self.max_workers, len(runnable)))
        except (OSError, ValueError):  # pragma: no cover - fork/spawn unavailable
            for handle in runnable:
                self._run_in_process(handle)
            return
        with executor:
            futures = {}
            try:
                for handle in runnable:
                    job = handle.job
                    task = _JobTask(
                        name=job.name,
                        source_program=job.source_program,
                        target_schema=job.target_schema,
                        config=self._job_config(job),
                    )
                    future = executor.submit(_run_job_in_worker, task)
                    futures[future] = handle
                    handle._future = future
                    handle.status = JobStatus.RUNNING
            except (BrokenProcessPool, OSError):  # pragma: no cover - env-specific
                for future in futures:
                    future.cancel()
                for handle in runnable:
                    if handle.status is not JobStatus.DONE:
                        handle.status = JobStatus.PENDING
                    self._run_in_process(handle)
                return

            outstanding = set(futures)
            while outstanding:
                finished, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for future in finished:
                    handle = futures[future]
                    handle._future = None
                    # cancel() on a job still queued behind busy workers
                    # cancels its future; a job already dispatched to a
                    # worker runs to completion regardless.
                    try:
                        result = future.result()
                    except futures_CancelledError:
                        handle.status = JobStatus.CANCELLED
                        continue
                    except BrokenProcessPool:  # pragma: no cover - env-specific
                        handle.status = JobStatus.PENDING
                        self._run_in_process(handle)
                        continue
                    except Exception as error:  # noqa: BLE001 - job isolation boundary
                        handle.status = JobStatus.FAILED
                        handle.error = f"{type(error).__name__}: {error}"
                        continue
                    handle.result = result
                    handle.status = (
                        JobStatus.CANCELLED if result.cancelled else JobStatus.DONE
                    )


def migrate_batch(
    jobs: Iterable[MigrationJob],
    *,
    max_workers: int = 0,
    default_config: Optional[SynthesisConfig] = None,
) -> list[SynthesisResult]:
    """One-call batch migration over a throwaway :class:`MigrationService`."""
    service = MigrationService(max_workers=max_workers, default_config=default_config)
    return service.migrate_batch(jobs)
