"""Comparing query results between two programs.

Query results are bags (multisets) of tuples.  Fresh unique values (UIDs)
are opaque: two executions are considered to produce the same result if the
results are identical up to a consistent renaming of UIDs.  We implement
this by canonicalizing each result list before comparison.

Canonicalization must be *renaming-independent*: two results that differ
only in the concrete UID indices chosen by the engine must canonicalize to
the same value.  The sort pass therefore treats every UID as equal (the
index is deliberately not part of the sort key); rows that tie under that
UID-blind order are then ordered by the lexicographically smallest renamed
encoding over all orderings of the tied rows, which is invariant under both
UID renaming and row permutation.
"""

from __future__ import annotations

import itertools
from collections import Counter
from math import factorial
from typing import Any, Optional, Sequence

from repro.engine.uid import UniqueValue

#: Upper bound on the row orderings explored by the exact canonicalization
#: pass.  Ties between rows that differ only in UIDs are rare and small in
#: practice (bounded-testing results hold a handful of rows); beyond this
#: bound we fall back to a deterministic signature-based order.
_MAX_ORDERINGS = 5040


def _sort_key(value: Any) -> tuple:
    """A total order over heterogeneous result values.

    The key is *injective* on concrete (non-UID) values of the same type and
    deliberately constant on UIDs, so that sorting never depends on the
    engine's UID numbering.
    """
    if value is None:
        return (0, "")
    if isinstance(value, bool):
        return (1, str(value))
    if isinstance(value, (int, float)):
        # Compare numerically (exact for int/float in Python); a formatted
        # string key would order negative numbers by reversed magnitude and
        # break down once the magnitude overflows the padding width.  NaN
        # never reaches this key: canonicalize_result replaces it with the
        # _NAN sentinel before any key is computed.
        return (2, 0, value)
    if isinstance(value, str):
        return (3, value)
    if isinstance(value, bytes):
        return (4, value.decode("latin1"))
    if isinstance(value, UniqueValue):
        # All UIDs compare equal: their index must not influence the sort,
        # otherwise two executions identical up to renaming could
        # canonicalize differently (a spurious counterexample).
        return (5,)
    return (6, repr(value))


def _tuple_key(values: tuple) -> tuple:
    return tuple(_sort_key(v) for v in values)


def _encode_rows(rows: Sequence[tuple]) -> list[tuple]:
    """Rename UIDs in first-appearance order over the given row order."""
    renaming: dict = {}
    encoded = []
    for row in rows:
        canonical_row = []
        for value in row:
            if isinstance(value, UniqueValue):
                if value not in renaming:
                    renaming[value] = len(renaming)
                canonical_row.append(("uid", renaming[value]))
            else:
                canonical_row.append(value)
        encoded.append(tuple(canonical_row))
    return encoded


def _uid_signatures(groups: Sequence[list[tuple]]) -> dict[UniqueValue, tuple]:
    """Occurrence signature of every UID: where (group, column) it appears.

    The signature is invariant under renaming, so ordering rows by their
    UIDs' signatures is a renaming-independent refinement.
    """
    occurrences: dict[UniqueValue, list[tuple[int, int]]] = {}
    for group_index, group in enumerate(groups):
        for row in group:
            for column, value in enumerate(row):
                if isinstance(value, UniqueValue):
                    occurrences.setdefault(value, []).append((group_index, column))
    return {uid: tuple(sorted(places)) for uid, places in occurrences.items()}


def _distinct_permutations(group: Sequence[tuple]) -> list[tuple]:
    """All distinct orderings of a multiset of rows.

    Unlike ``set(itertools.permutations(...))`` this never materializes
    duplicate orderings, so a group of n identical rows costs one ordering,
    not n! (rows within a tie group are mutually comparable: equal concrete
    values and orderable ``UniqueValue`` at matching positions).
    """
    counter = Counter(group)
    items = sorted(counter)
    size = len(group)
    orderings: list[tuple] = []
    current: list[tuple] = []

    def backtrack() -> None:
        if len(current) == size:
            orderings.append(tuple(current))
            return
        for item in items:
            if counter[item] > 0:
                counter[item] -= 1
                current.append(item)
                backtrack()
                current.pop()
                counter[item] += 1

    backtrack()
    return orderings


#: Stand-in for NaN in canonical encodings.  Raw NaN breaks both the lex-min
#: ordering comparison (all comparisons False → order-dependent choice) and
#: final equality (nan != nan), so canonical forms must never contain it.
_NAN = ("nan",)


def canonicalize_result(result: Sequence[tuple]) -> tuple:
    """Canonical form of one query result (a bag of tuples)."""
    rows = [tuple(row) for row in result]
    if any(isinstance(v, float) and v != v for row in rows for v in row):
        rows = [
            tuple(_NAN if isinstance(v, float) and v != v else v for v in row)
            for row in rows
        ]
    # One key computation per row: this runs on every candidate execution of
    # the completion loop, so the common paths below must stay lean.
    keys = [_tuple_key(row) for row in rows]
    order = sorted(range(len(rows)), key=keys.__getitem__)
    ordered = [rows[i] for i in order]
    if not any(isinstance(v, UniqueValue) for row in rows for v in row):
        # The sort key is injective on concrete values: the order is total
        # and the encoding is the identity.
        return tuple(ordered)

    # Group rows that tie under the UID-blind order.  Within one group every
    # row has the same concrete values; only the UID structure differs.
    groups: list[list[tuple]] = []
    previous_key: Optional[tuple] = None
    for index in order:
        if previous_key is None or keys[index] != previous_key:
            groups.append([])
            previous_key = keys[index]
        groups[-1].append(rows[index])

    free = [i for i, group in enumerate(groups) if len(group) > 1]
    if not free:
        # No ties: first-appearance renumbering over the sorted rows is
        # already canonical (the typical case for UID-bearing results).
        return tuple(_encode_rows(ordered))
    def distinct_orderings(group: list[tuple]) -> int:
        # Multinomial: duplicate rows (same UID objects) collapse to one
        # ordering, matching the set() dedup of the exact path below.
        total = factorial(len(group))
        for count in Counter(group).values():
            total //= factorial(count)
        return total

    orderings = 1
    for i in free:
        orderings *= distinct_orderings(groups[i])
        if orderings > _MAX_ORDERINGS:
            break

    if orderings <= _MAX_ORDERINGS:
        # Exact: the canonical form is the lexicographically smallest renamed
        # encoding over all orderings of tied rows.  Minimality over the full
        # product (rather than greedily per group) keeps the choice invariant
        # even when an early tie-break only pays off in a later group.
        best: Optional[tuple] = None
        options = [
            _distinct_permutations(group) if len(group) > 1 else [tuple(group)]
            for group in groups
        ]
        for choice in itertools.product(*options):
            candidate = [row for group in choice for row in group]
            encoded_tuple = tuple(_encode_rows(candidate))
            if best is None or encoded_tuple < best:
                best = encoded_tuple
        assert best is not None
        return best

    # Fallback for pathologically large tie groups (beyond the ordering cap):
    # abstract each row to a *row-local* UID renumbering tagged with the
    # UIDs' occurrence signatures, and canonicalize the result as the sorted
    # multiset of those abstractions.  This is invariant under both renaming
    # and row permutation; the price is that results differing only in the
    # cross-row UID-sharing structure of such a group may compare equal — a
    # missed counterexample in a degenerate case, never a spurious one.
    signatures = _uid_signatures(groups)

    def abstract_row(row: tuple) -> tuple:
        local: dict = {}
        abstracted = []
        for value in row:
            if isinstance(value, UniqueValue):
                if value not in local:
                    local[value] = len(local)
                abstracted.append(("uid", local[value], signatures[value]))
            else:
                abstracted.append(value)
        return tuple(abstracted)

    canonical: list[tuple] = []
    for group in groups:
        canonical.extend(sorted(abstract_row(row) for row in group))
    return tuple(canonical)


def canonicalize_outputs(outputs: Sequence[Sequence[tuple]]) -> tuple:
    """Canonical form of a whole execution (the list of query results)."""
    return tuple(canonicalize_result(result) for result in outputs)


def results_equal(left: Sequence[Sequence[tuple]], right: Sequence[Sequence[tuple]]) -> bool:
    """Whether two executions produced equal query results."""
    if len(left) != len(right):
        return False
    return canonicalize_outputs(left) == canonicalize_outputs(right)
