"""Comparing query results between two programs.

Query results are bags (multisets) of tuples.  Fresh unique values (UIDs)
are opaque: two executions are considered to produce the same result if the
results are identical up to a consistent renaming of UIDs.  We implement
this by canonicalizing each result list before comparison: tuples are sorted
by a type-aware key and UIDs are renumbered in order of first appearance.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.engine.uid import UniqueValue


def _sort_key(value: Any) -> tuple:
    """A total order over heterogeneous result values."""
    if value is None:
        return (0, "")
    if isinstance(value, bool):
        return (1, str(value))
    if isinstance(value, (int, float)):
        return (2, f"{value:030.10f}")
    if isinstance(value, str):
        return (3, value)
    if isinstance(value, bytes):
        return (4, value.decode("latin1"))
    if isinstance(value, UniqueValue):
        # UIDs sort after concrete values; their index is *not* part of the key
        # so that renaming does not affect the sort order between UIDs and
        # non-UIDs.  Ties between UIDs are broken by index to keep the sort
        # deterministic within one execution.
        return (5, f"{value.index:030d}")
    return (6, repr(value))


def _tuple_key(values: tuple) -> tuple:
    return tuple(_sort_key(v) for v in values)


def canonicalize_result(result: Sequence[tuple]) -> tuple:
    """Canonical form of one query result (a bag of tuples)."""
    ordered = sorted(result, key=_tuple_key)
    renaming: dict[UniqueValue, int] = {}
    canonical_rows = []
    for row in ordered:
        canonical_row = []
        for value in row:
            if isinstance(value, UniqueValue):
                if value not in renaming:
                    renaming[value] = len(renaming)
                canonical_row.append(("uid", renaming[value]))
            else:
                canonical_row.append(value)
        canonical_rows.append(tuple(canonical_row))
    return tuple(canonical_rows)


def canonicalize_outputs(outputs: Sequence[Sequence[tuple]]) -> tuple:
    """Canonical form of a whole execution (the list of query results)."""
    return tuple(canonicalize_result(result) for result in outputs)


def results_equal(left: Sequence[Sequence[tuple]], right: Sequence[Sequence[tuple]]) -> bool:
    """Whether two executions produced equal query results."""
    if len(left) != len(right):
        return False
    return canonicalize_outputs(left) == canonicalize_outputs(right)
