"""Bounded testing: find minimum failing inputs between two programs.

This is the testing engine described in Section 5 of the paper: it executes
both programs on invocation sequences of increasing length (arguments drawn
from fixed per-type seed sets) and returns the first sequence on which the
query results differ.  Because sequences are enumerated by increasing
length, that sequence is a minimum failing input (MFI).

Two layers of reuse keep repeated testing cheap:

* The source program's outputs are memoized in a size-bounded LRU
  :class:`~repro.testing_cache.SourceOutputCache` that can be shared across
  testers within one process (the synthesizer shares one per run; parallel
  workers each build their own), which is the dominant cost saving when the
  sketch-completion loop tests hundreds of candidates against the same
  source program.
* When a :class:`~repro.testing_cache.CounterexamplePool` is attached, every
  candidate is first screened against previously discovered failing inputs
  (cheapest first) and only falls back to the full enumeration when no
  pooled counterexample kills it.  A pool hit is a sound failing input but
  not necessarily minimal — see the pool module docstring for the trade-off.

Executions run on the **compiled backend** by default (programs are
translated once into closures with hash joins and slotted rows — see
:mod:`repro.engine.compiler`); ``execution_backend="interpreter"`` restores
the tree-walk reference implementation, and ``"columnar"`` switches to the
column-store backend (:mod:`repro.engine.columnar`), which additionally
routes pool screening and the full enumeration through batch kernels
(:meth:`BoundedTester.differs_on_batch`) that execute many sequences per
call while reproducing the scalar loop's verdicts, errors and statistics
exactly.  All backends are output- and error-equivalent, so pool screening,
source caching and MFI minimality are unaffected by the choice.

Error semantics (shared with :class:`~repro.equivalence.verifier.BoundedVerifier`):
a candidate that raises :class:`ExecutionError` on a sequence *fails* that
sequence; an error raised by the source program propagates to the caller.
"""

from __future__ import annotations

import itertools
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Optional

from repro.engine.compiler import ProgramCompiler, make_batch_runner, make_runner
from repro.engine.joins import ExecutionError
from repro.equivalence.invocation import (
    InvocationSequence,
    SeedSet,
    SequenceGenerator,
    format_sequence,
)
from repro.equivalence.result_compare import canonicalize_outputs
from repro.lang.ast import Program
from repro.lang.pretty import format_program
from repro.testing_cache import CounterexamplePool, SourceOutputCache


class TestingInterrupted(Exception):
    """Raised mid-enumeration when the tester's ``interrupt`` hook fires.

    The completion loop installs the hook from the session's deadline and
    cancellation event, so a single long bounded-testing enumeration cannot
    overrun the run's wall-clock budget or ignore a cancellation request.
    The exception deliberately does not subclass ``ExecutionError``: it must
    propagate out of testing, never be treated as a failing candidate.
    """


def cached_source_outputs(cache, key, runner, program, sequence, stats=None):
    """Memoized, canonicalized source-program outputs.

    The single implementation of the get → execute-and-canonicalize → put
    pattern shared by :class:`BoundedTester` and
    :class:`~repro.equivalence.verifier.BoundedVerifier` — entries written
    by one are only interchangeable with the other because both go through
    this helper.  *stats* (any object with a ``source_cache_hits`` counter)
    is incremented on a hit.  Source errors propagate: a source program that
    cannot execute is a caller bug, never cached.

    Cache entries are ``(canonical, raw)`` pairs: the scalar path compares
    canonicalized outputs, while the batched path
    (:func:`batched_first_divergence`) short-circuits on raw equality —
    storing both under one key costs one tuple and saves the batch path a
    second lookup per sequence.
    """
    if cache is not None and key is not None:
        cached = cache.get(key, sequence)
        if cached is not None:
            if stats is not None:
                stats.source_cache_hits += 1
            return cached[0]
        raw = runner(program, sequence)
        outputs = canonicalize_outputs(raw)
        cache.put(key, sequence, (outputs, raw))
        return outputs
    return canonicalize_outputs(runner(program, sequence))


#: Distinct source-side gathers kept per :func:`batched_first_divergence`
#: memo (one per live chunk shape, mirroring the batch runner's trie memo).
GATHER_MEMO_SLOTS = 8


def _gather_source_outcomes(batch_runner, cache, key, source, sequences, interrupt):
    """Source-side half of :func:`batched_first_divergence`.

    Probes the source-output cache per sequence, batch-runs the misses, and
    returns ``(expected, raw_expected, source_errors, cache_hit)`` aligned
    with *sequences*.  Successful outcomes are canonicalized and written
    back to the cache; errors never are.
    """
    count = len(sequences)
    caching = cache is not None and key is not None
    expected: list = [None] * count
    raw_expected: list = [None] * count
    source_errors: Optional[dict] = None
    cache_hit = [False] * count
    misses: list[int] = []
    for i, sequence in enumerate(sequences):
        if caching:
            cached = cache.get(key, sequence)
            if cached is not None:
                expected[i] = cached[0]
                raw_expected[i] = cached[1]
                cache_hit[i] = True
                continue
        misses.append(i)
    if misses:
        outcomes = batch_runner.run_sequences(
            source, [sequences[i] for i in misses], interrupt
        )
        for i, (tag, payload) in zip(misses, outcomes):
            if tag == "ok":
                canonical = canonicalize_outputs(payload)
                if caching:
                    cache.put(key, sequences[i], (canonical, payload))
                expected[i] = canonical
                raw_expected[i] = payload
            else:
                if source_errors is None:
                    source_errors = {}
                source_errors[i] = payload
    return expected, raw_expected, source_errors, cache_hit


def batched_first_divergence(
    batch_runner,
    cache,
    key,
    source: Program,
    candidate: Program,
    sequences: list[InvocationSequence],
    interrupt: Optional[Callable[[], None]] = None,
    visit: Optional[Callable[[int, int], None]] = None,
    gather_memo: Optional[list] = None,
) -> Optional[int]:
    """Index of the first sequence where *candidate* differs from *source*.

    The batched core shared by :class:`BoundedTester` and
    :class:`~repro.equivalence.verifier.BoundedVerifier`: both programs run
    through the columnar batch kernels (source only on cache misses), then
    the outcomes are walked **in sequence order**, reproducing the scalar
    loop's exact trajectory — the first problem sequence either raises what
    the scalar path would raise (source errors, non-``ExecutionError``
    candidate errors) or is returned as the first divergence
    (``ExecutionError`` or an output mismatch).  Sequences past that point
    were executed by the batch but are ignored, so the verdict and the
    raised error are identical to running the scalar loop.

    *visit(visited, source_cache_hits)* is called exactly once per batch,
    just before it returns or raises: *visited* counts the sequences the
    scalar loop would have reached (everything up to and including the
    divergent or raising one), *source_cache_hits* how many of those were
    served from the source-output cache — the callers hang their statistics
    on it.  *cache*/*key* may be ``None`` (the verifier screens sources it
    does not cache); successful source outcomes are canonicalized and
    cached, errors never are.

    *gather_memo*, when provided, is a caller-owned LRU (a plain list) of
    gathered source-side outcomes keyed by ``(key, sequences)`` content.
    Screening replays identical chunks against many candidates with the
    source fixed, and programs are deterministic, so replaying the gathered
    arrays is exact; it skips the per-sequence cache probes entirely on the
    steady state.  A replayed chunk reports every non-erroring sequence as a
    cache hit (its first gather wrote them all to the cache).

    Cache entries are the ``(canonical, raw)`` pairs written by
    :func:`cached_source_outputs`.  Raw equality implies canonical equality,
    so a candidate whose raw outputs match the source's — the common case
    for a surviving candidate — is accepted without paying canonicalization
    at all; only raw mismatches fall through to the canonical comparison
    that decides the verdict.
    """
    count = len(sequences)
    # The memo is keyed by (source fingerprint, chunk content); with no
    # fingerprint two different sources would collide, so it is disabled.
    if key is None:
        gather_memo = None
    gathered = None
    if gather_memo is not None:
        for slot, entry in enumerate(gather_memo):
            if entry[0] == key and entry[1] == sequences:
                if slot:  # keep the hottest chunks at the front
                    gather_memo.insert(0, gather_memo.pop(slot))
                gathered = entry[2]
                break
    if gathered is None:
        gathered = _gather_source_outcomes(
            batch_runner, cache, key, source, sequences, interrupt
        )
        if gather_memo is not None:
            expected, raw_expected, source_errors, _hits = gathered
            caching = cache is not None and key is not None
            replay_hits = [caching] * count
            if source_errors is not None:
                for i in source_errors:
                    replay_hits[i] = False  # errors are never cached
            gather_memo.insert(
                0,
                (
                    key,
                    list(sequences),
                    (expected, raw_expected, source_errors, replay_hits),
                ),
            )
            del gather_memo[GATHER_MEMO_SLOTS:]
    expected, raw_expected, source_errors, cache_hit = gathered
    actual = batch_runner.run_sequences(candidate, sequences, interrupt)
    visited = count
    try:
        for i in range(count):
            if source_errors is not None and i in source_errors:
                # Source errors propagate, exactly like the scalar path.
                visited = i + 1
                raise source_errors[i]
            cand_tag, cand_payload = actual[i]
            if cand_tag == "err":
                visited = i + 1
                if isinstance(cand_payload, ExecutionError):
                    return i  # ill-formed candidate fails the sequence
                raise cand_payload
            if cand_payload == raw_expected[i]:
                continue  # raw-identical outputs are canonically identical
            if canonicalize_outputs(cand_payload) != expected[i]:
                visited = i + 1
                return i
        return None
    finally:
        if visit is not None:
            visit(visited, sum(cache_hit[:visited]))


def make_interrupt_check(deadline, cancel) -> Optional[Callable[[], bool]]:
    """The standard deadline/cancellation predicate shared by the completers.

    *deadline* is an absolute ``time.perf_counter()`` instant, *cancel* a
    ``threading.Event``; returns ``None`` when neither is set so callers can
    skip per-iteration polling entirely.
    """
    if deadline is None and cancel is None:
        return None

    def check() -> bool:
        if cancel is not None and cancel.is_set():
            return True
        return deadline is not None and time.perf_counter() > deadline

    return check


@contextmanager
def interrupt_scope(tester, verifier, check: Optional[Callable[[], bool]]):
    """Install *check* as the interrupt hook on *tester* and *verifier*.

    The shared install/restore bracket used by every completer around its
    completion loop; previous hooks are restored on exit even when the loop
    raises.  *verifier* may be ``None``; a ``None`` *check* still (re)sets
    the hooks, keeping the scope symmetric.
    """
    previous_tester = tester.interrupt
    tester.interrupt = check
    previous_verifier = verifier.interrupt if verifier is not None else None
    if verifier is not None:
        verifier.interrupt = check
    try:
        yield
    finally:
        tester.interrupt = previous_tester
        if verifier is not None:
            verifier.interrupt = previous_verifier


@dataclass
class TesterStatistics:
    sequences_executed: int = 0
    source_cache_hits: int = 0
    candidates_tested: int = 0
    #: Candidates that went through the full ``SequenceGenerator`` enumeration
    #: (i.e. were not rejected by a pooled counterexample first).
    full_enumerations: int = 0
    #: Sequences executed inside full enumerations (basis for the
    #: sequences-saved estimate reported per synthesis run).
    full_enumeration_sequences: int = 0


class BoundedTester:
    """Tests candidate programs against a fixed source program."""

    def __init__(
        self,
        source: Program,
        *,
        seeds: SeedSet | None = None,
        max_updates: int = 2,
        relevance_filter: bool = True,
        max_sequences: int = 200000,
        source_cache: SourceOutputCache | None = None,
        pool: CounterexamplePool | None = None,
        pool_screening_budget: Optional[int] = None,
        execution_backend: str = "compiled",
        compiler: ProgramCompiler | None = None,
    ):
        self.source = source
        self.seeds = seeds or SeedSet.default()
        self.max_updates = max_updates
        self.relevance_filter = relevance_filter
        self.max_sequences = max_sequences
        self.stats = TesterStatistics()
        self.pool = pool
        self.pool_screening_budget = pool_screening_budget
        # The compiler caches compiled functions across candidates (they share
        # immutable per-function ASTs), so one compiler serves the whole run;
        # parallel workers pass in a process-global one.  The columnar
        # backend also gets a batch runner, which must share that compiler so
        # scalar and batched executions reuse the same compiled artefacts.
        if execution_backend == "columnar" and compiler is None:
            compiler = ProgramCompiler()
        self._run = make_runner(execution_backend, compiler)
        self._batch = make_batch_runner(execution_backend, compiler)
        # A private bounded cache when none is shared with us: behaviour is
        # identical, memory just stays bounded.  (``is None``, not ``or`` — an
        # empty shared cache is falsy but must still be adopted.)
        self._source_cache = source_cache if source_cache is not None else SourceOutputCache()
        self._source_key = format_program(source)
        # Gathered source-side batch outcomes per screening chunk — see
        # ``batched_first_divergence``'s *gather_memo*.
        self._gather_memo: list = []
        #: Optional cooperative-interruption hook: when set, it is polled once
        #: per executed sequence and a ``True`` return aborts the enumeration
        #: with :class:`TestingInterrupted`.  The completer installs (and
        #: restores) it around each ``complete`` call.
        self.interrupt: Optional[Callable[[], bool]] = None

    # ---------------------------------------------------------------- running
    def _source_outputs(self, sequence: InvocationSequence) -> tuple:
        return cached_source_outputs(
            self._source_cache, self._source_key, self._run, self.source, sequence, self.stats
        )

    def _candidate_outputs(self, candidate: Program, sequence: InvocationSequence) -> tuple | None:
        try:
            return canonicalize_outputs(self._run(candidate, sequence))
        except ExecutionError:
            # An ill-formed candidate (e.g. a delete table-list incompatible
            # with the chosen join chain) is treated as failing the sequence.
            return None

    def differs_on(self, candidate: Program, sequence: InvocationSequence) -> bool:
        """Whether source and candidate disagree on one invocation sequence."""
        if self.interrupt is not None and self.interrupt():
            raise TestingInterrupted()
        self.stats.sequences_executed += 1
        expected = self._source_outputs(sequence)
        actual = self._candidate_outputs(candidate, sequence)
        return actual is None or actual != expected

    def _interrupt_hook(self) -> None:
        """Raising form of the interrupt poll, passed into batch kernels."""
        if self.interrupt is not None and self.interrupt():
            raise TestingInterrupted()

    def differs_on_batch(
        self, candidate: Program, sequences: list[InvocationSequence]
    ) -> Optional[int]:
        """Batched ``differs_on``: index of the first divergent sequence.

        Verdict-, error- and statistics-identical to calling
        :meth:`differs_on` on each sequence in order and stopping at the
        first ``True`` — see :func:`batched_first_divergence`.  Requires the
        columnar backend.
        """
        if self._batch is None:
            raise RuntimeError("batched testing requires execution_backend='columnar'")

        def visit(visited: int, source_cache_hits: int) -> None:
            self.stats.sequences_executed += visited
            self.stats.source_cache_hits += source_cache_hits

        return batched_first_divergence(
            self._batch,
            self._source_cache,
            self._source_key,
            self.source,
            candidate,
            list(sequences),
            # No hook installed → no per-node polling inside the kernels.
            interrupt=self._interrupt_hook if self.interrupt is not None else None,
            visit=visit,
            gather_memo=self._gather_memo,
        )

    # --------------------------------------------------------------- MFI search
    def find_failing_input(self, candidate: Program) -> Optional[InvocationSequence]:
        """Return a failing input, or ``None`` if none exists up to the bound.

        With a counterexample pool attached the returned sequence may come
        from the pool, in which case it is a sound failing input but not
        necessarily a *minimum* one.
        """
        self.stats.candidates_tested += 1
        if self.pool is not None and len(self.pool) > 0:
            if self._batch is not None:
                hit = self.pool.screen_batch(
                    candidate, self.differs_on_batch, self.pool_screening_budget
                )
            else:
                hit = self.pool.screen(candidate, self.differs_on, self.pool_screening_budget)
            if hit is not None:
                return hit
        self.stats.full_enumerations += 1
        generator = SequenceGenerator(
            programs=[self.source, candidate],
            seeds=self.seeds,
            max_updates=self.max_updates,
            relevance_filter=self.relevance_filter,
        )
        if self._batch is not None:
            return self._find_failing_enumerated_batched(candidate, generator)
        checked = 0
        for sequence in generator.sequences():
            checked += 1
            if checked > self.max_sequences:
                break
            if self.differs_on(candidate, sequence):
                self.stats.full_enumeration_sequences += checked
                if self.pool is not None:
                    self.pool.add(sequence)
                return sequence
        self.stats.full_enumeration_sequences += checked
        return None

    def _find_failing_enumerated_batched(
        self, candidate: Program, generator: SequenceGenerator
    ) -> Optional[InvocationSequence]:
        """The full-enumeration loop in chunks through the batch kernels.

        Chunks grow geometrically: enumerated sequences share long prefixes
        (the generator emits them in product order), so large chunks let the
        trie kernel amortize nearly all update execution, while a small
        first chunk keeps quickly-killed candidates cheap.  ``checked``
        bookkeeping reproduces the scalar loop exactly, including the
        bound-tripping sequence that the scalar loop counts but never
        executes.
        """
        iterator = generator.sequences()
        checked = 0
        chunk_size = 16
        while checked < self.max_sequences:
            take = min(chunk_size, self.max_sequences - checked)
            chunk = list(itertools.islice(iterator, take))
            if not chunk:
                self.stats.full_enumeration_sequences += checked
                return None
            checked += len(chunk)
            index = self.differs_on_batch(candidate, chunk)
            if index is not None:
                checked -= len(chunk) - (index + 1)
                self.stats.full_enumeration_sequences += checked
                if self.pool is not None:
                    self.pool.add(chunk[index])
                return chunk[index]
            chunk_size = min(chunk_size * 4, 256)
        if next(iterator, None) is not None:
            checked += 1  # the scalar loop counts the sequence that trips the bound
        self.stats.full_enumeration_sequences += checked
        return None

    def check_equivalent(self, candidate: Program) -> bool:
        """Bounded equivalence check (no failing input up to the bound)."""
        return self.find_failing_input(candidate) is None

    def explain(self, candidate: Program) -> str:
        """A human-readable verdict used by examples and error messages."""
        failing = self.find_failing_input(candidate)
        if failing is None:
            return "no failing input found up to the testing bound"
        expected = self._source_outputs(failing)
        actual = self._candidate_outputs(candidate, failing)
        return (
            f"programs differ on: {format_sequence(failing)}\n"
            f"  source outputs:    {expected}\n"
            f"  candidate outputs: {actual}"
        )
