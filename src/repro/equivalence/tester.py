"""Bounded testing: find minimum failing inputs between two programs.

This is the testing engine described in Section 5 of the paper: it executes
both programs on invocation sequences of increasing length (arguments drawn
from fixed per-type seed sets) and returns the first sequence on which the
query results differ.  Because sequences are enumerated by increasing
length, that sequence is a minimum failing input (MFI).

The source program's outputs are memoized across candidate programs, which
is the dominant cost saving when the sketch-completion loop tests hundreds
of candidates against the same source program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.engine.interpreter import run_invocation_sequence
from repro.engine.joins import ExecutionError
from repro.equivalence.invocation import (
    InvocationSequence,
    SeedSet,
    SequenceGenerator,
    format_sequence,
)
from repro.equivalence.result_compare import canonicalize_outputs
from repro.lang.ast import Program


@dataclass
class TesterStatistics:
    sequences_executed: int = 0
    source_cache_hits: int = 0
    candidates_tested: int = 0


class BoundedTester:
    """Tests candidate programs against a fixed source program."""

    def __init__(
        self,
        source: Program,
        *,
        seeds: SeedSet | None = None,
        max_updates: int = 2,
        relevance_filter: bool = True,
        max_sequences: int = 200000,
    ):
        self.source = source
        self.seeds = seeds or SeedSet.default()
        self.max_updates = max_updates
        self.relevance_filter = relevance_filter
        self.max_sequences = max_sequences
        self.stats = TesterStatistics()
        self._source_cache: dict[InvocationSequence, tuple] = {}

    # ---------------------------------------------------------------- running
    def _source_outputs(self, sequence: InvocationSequence) -> tuple:
        if sequence in self._source_cache:
            self.stats.source_cache_hits += 1
            return self._source_cache[sequence]
        outputs = canonicalize_outputs(run_invocation_sequence(self.source, sequence))
        self._source_cache[sequence] = outputs
        return outputs

    def _candidate_outputs(self, candidate: Program, sequence: InvocationSequence) -> tuple | None:
        try:
            return canonicalize_outputs(run_invocation_sequence(candidate, sequence))
        except ExecutionError:
            # An ill-formed candidate (e.g. a delete table-list incompatible
            # with the chosen join chain) is treated as failing the sequence.
            return None

    def differs_on(self, candidate: Program, sequence: InvocationSequence) -> bool:
        """Whether source and candidate disagree on one invocation sequence."""
        self.stats.sequences_executed += 1
        expected = self._source_outputs(sequence)
        actual = self._candidate_outputs(candidate, sequence)
        return actual is None or actual != expected

    # --------------------------------------------------------------- MFI search
    def find_failing_input(self, candidate: Program) -> Optional[InvocationSequence]:
        """Return a minimum failing input, or ``None`` if none exists up to the bound."""
        self.stats.candidates_tested += 1
        generator = SequenceGenerator(
            programs=[self.source, candidate],
            seeds=self.seeds,
            max_updates=self.max_updates,
            relevance_filter=self.relevance_filter,
        )
        checked = 0
        for sequence in generator.sequences():
            checked += 1
            if checked > self.max_sequences:
                break
            if self.differs_on(candidate, sequence):
                return sequence
        return None

    def check_equivalent(self, candidate: Program) -> bool:
        """Bounded equivalence check (no failing input up to the bound)."""
        return self.find_failing_input(candidate) is None

    def explain(self, candidate: Program) -> str:
        """A human-readable verdict used by examples and error messages."""
        failing = self.find_failing_input(candidate)
        if failing is None:
            return "no failing input found up to the testing bound"
        expected = self._source_outputs(failing)
        actual = self._candidate_outputs(candidate, failing)
        return (
            f"programs differ on: {format_sequence(failing)}\n"
            f"  source outputs:    {expected}\n"
            f"  candidate outputs: {actual}"
        )
