"""Bounded testing: find minimum failing inputs between two programs.

This is the testing engine described in Section 5 of the paper: it executes
both programs on invocation sequences of increasing length (arguments drawn
from fixed per-type seed sets) and returns the first sequence on which the
query results differ.  Because sequences are enumerated by increasing
length, that sequence is a minimum failing input (MFI).

Two layers of reuse keep repeated testing cheap:

* The source program's outputs are memoized in a size-bounded LRU
  :class:`~repro.testing_cache.SourceOutputCache` that can be shared across
  testers within one process (the synthesizer shares one per run; parallel
  workers each build their own), which is the dominant cost saving when the
  sketch-completion loop tests hundreds of candidates against the same
  source program.
* When a :class:`~repro.testing_cache.CounterexamplePool` is attached, every
  candidate is first screened against previously discovered failing inputs
  (cheapest first) and only falls back to the full enumeration when no
  pooled counterexample kills it.  A pool hit is a sound failing input but
  not necessarily minimal — see the pool module docstring for the trade-off.

Executions run on the **compiled backend** by default (programs are
translated once into closures with hash joins and slotted rows — see
:mod:`repro.engine.compiler`); ``execution_backend="interpreter"`` restores
the tree-walk reference implementation.  Both backends are output- and
error-equivalent, so pool screening, source caching and MFI minimality are
unaffected by the choice.

Error semantics (shared with :class:`~repro.equivalence.verifier.BoundedVerifier`):
a candidate that raises :class:`ExecutionError` on a sequence *fails* that
sequence; an error raised by the source program propagates to the caller.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Optional

from repro.engine.compiler import ProgramCompiler, make_runner
from repro.engine.joins import ExecutionError
from repro.equivalence.invocation import (
    InvocationSequence,
    SeedSet,
    SequenceGenerator,
    format_sequence,
)
from repro.equivalence.result_compare import canonicalize_outputs
from repro.lang.ast import Program
from repro.lang.pretty import format_program
from repro.testing_cache import CounterexamplePool, SourceOutputCache


class TestingInterrupted(Exception):
    """Raised mid-enumeration when the tester's ``interrupt`` hook fires.

    The completion loop installs the hook from the session's deadline and
    cancellation event, so a single long bounded-testing enumeration cannot
    overrun the run's wall-clock budget or ignore a cancellation request.
    The exception deliberately does not subclass ``ExecutionError``: it must
    propagate out of testing, never be treated as a failing candidate.
    """


def cached_source_outputs(cache, key, runner, program, sequence, stats=None):
    """Memoized, canonicalized source-program outputs.

    The single implementation of the get → execute-and-canonicalize → put
    pattern shared by :class:`BoundedTester` and
    :class:`~repro.equivalence.verifier.BoundedVerifier` — entries written
    by one are only interchangeable with the other because both go through
    this helper.  *stats* (any object with a ``source_cache_hits`` counter)
    is incremented on a hit.  Source errors propagate: a source program that
    cannot execute is a caller bug, never cached.
    """
    if cache is not None and key is not None:
        cached = cache.get(key, sequence)
        if cached is not None:
            if stats is not None:
                stats.source_cache_hits += 1
            return cached
        outputs = canonicalize_outputs(runner(program, sequence))
        cache.put(key, sequence, outputs)
        return outputs
    return canonicalize_outputs(runner(program, sequence))


def make_interrupt_check(deadline, cancel) -> Optional[Callable[[], bool]]:
    """The standard deadline/cancellation predicate shared by the completers.

    *deadline* is an absolute ``time.perf_counter()`` instant, *cancel* a
    ``threading.Event``; returns ``None`` when neither is set so callers can
    skip per-iteration polling entirely.
    """
    if deadline is None and cancel is None:
        return None

    def check() -> bool:
        if cancel is not None and cancel.is_set():
            return True
        return deadline is not None and time.perf_counter() > deadline

    return check


@contextmanager
def interrupt_scope(tester, verifier, check: Optional[Callable[[], bool]]):
    """Install *check* as the interrupt hook on *tester* and *verifier*.

    The shared install/restore bracket used by every completer around its
    completion loop; previous hooks are restored on exit even when the loop
    raises.  *verifier* may be ``None``; a ``None`` *check* still (re)sets
    the hooks, keeping the scope symmetric.
    """
    previous_tester = tester.interrupt
    tester.interrupt = check
    previous_verifier = verifier.interrupt if verifier is not None else None
    if verifier is not None:
        verifier.interrupt = check
    try:
        yield
    finally:
        tester.interrupt = previous_tester
        if verifier is not None:
            verifier.interrupt = previous_verifier


@dataclass
class TesterStatistics:
    sequences_executed: int = 0
    source_cache_hits: int = 0
    candidates_tested: int = 0
    #: Candidates that went through the full ``SequenceGenerator`` enumeration
    #: (i.e. were not rejected by a pooled counterexample first).
    full_enumerations: int = 0
    #: Sequences executed inside full enumerations (basis for the
    #: sequences-saved estimate reported per synthesis run).
    full_enumeration_sequences: int = 0


class BoundedTester:
    """Tests candidate programs against a fixed source program."""

    def __init__(
        self,
        source: Program,
        *,
        seeds: SeedSet | None = None,
        max_updates: int = 2,
        relevance_filter: bool = True,
        max_sequences: int = 200000,
        source_cache: SourceOutputCache | None = None,
        pool: CounterexamplePool | None = None,
        pool_screening_budget: Optional[int] = None,
        execution_backend: str = "compiled",
        compiler: ProgramCompiler | None = None,
    ):
        self.source = source
        self.seeds = seeds or SeedSet.default()
        self.max_updates = max_updates
        self.relevance_filter = relevance_filter
        self.max_sequences = max_sequences
        self.stats = TesterStatistics()
        self.pool = pool
        self.pool_screening_budget = pool_screening_budget
        # The compiler caches compiled functions across candidates (they share
        # immutable per-function ASTs), so one compiler serves the whole run;
        # parallel workers pass in a process-global one.
        self._run = make_runner(execution_backend, compiler)
        # A private bounded cache when none is shared with us: behaviour is
        # identical, memory just stays bounded.  (``is None``, not ``or`` — an
        # empty shared cache is falsy but must still be adopted.)
        self._source_cache = source_cache if source_cache is not None else SourceOutputCache()
        self._source_key = format_program(source)
        #: Optional cooperative-interruption hook: when set, it is polled once
        #: per executed sequence and a ``True`` return aborts the enumeration
        #: with :class:`TestingInterrupted`.  The completer installs (and
        #: restores) it around each ``complete`` call.
        self.interrupt: Optional[Callable[[], bool]] = None

    # ---------------------------------------------------------------- running
    def _source_outputs(self, sequence: InvocationSequence) -> tuple:
        return cached_source_outputs(
            self._source_cache, self._source_key, self._run, self.source, sequence, self.stats
        )

    def _candidate_outputs(self, candidate: Program, sequence: InvocationSequence) -> tuple | None:
        try:
            return canonicalize_outputs(self._run(candidate, sequence))
        except ExecutionError:
            # An ill-formed candidate (e.g. a delete table-list incompatible
            # with the chosen join chain) is treated as failing the sequence.
            return None

    def differs_on(self, candidate: Program, sequence: InvocationSequence) -> bool:
        """Whether source and candidate disagree on one invocation sequence."""
        if self.interrupt is not None and self.interrupt():
            raise TestingInterrupted()
        self.stats.sequences_executed += 1
        expected = self._source_outputs(sequence)
        actual = self._candidate_outputs(candidate, sequence)
        return actual is None or actual != expected

    # --------------------------------------------------------------- MFI search
    def find_failing_input(self, candidate: Program) -> Optional[InvocationSequence]:
        """Return a failing input, or ``None`` if none exists up to the bound.

        With a counterexample pool attached the returned sequence may come
        from the pool, in which case it is a sound failing input but not
        necessarily a *minimum* one.
        """
        self.stats.candidates_tested += 1
        if self.pool is not None and len(self.pool) > 0:
            hit = self.pool.screen(candidate, self.differs_on, self.pool_screening_budget)
            if hit is not None:
                return hit
        self.stats.full_enumerations += 1
        generator = SequenceGenerator(
            programs=[self.source, candidate],
            seeds=self.seeds,
            max_updates=self.max_updates,
            relevance_filter=self.relevance_filter,
        )
        checked = 0
        for sequence in generator.sequences():
            checked += 1
            if checked > self.max_sequences:
                break
            if self.differs_on(candidate, sequence):
                self.stats.full_enumeration_sequences += checked
                if self.pool is not None:
                    self.pool.add(sequence)
                return sequence
        self.stats.full_enumeration_sequences += checked
        return None

    def check_equivalent(self, candidate: Program) -> bool:
        """Bounded equivalence check (no failing input up to the bound)."""
        return self.find_failing_input(candidate) is None

    def explain(self, candidate: Program) -> str:
        """A human-readable verdict used by examples and error messages."""
        failing = self.find_failing_input(candidate)
        if failing is None:
            return "no failing input found up to the testing bound"
        expected = self._source_outputs(failing)
        actual = self._candidate_outputs(candidate, failing)
        return (
            f"programs differ on: {format_sequence(failing)}\n"
            f"  source outputs:    {expected}\n"
            f"  candidate outputs: {actual}"
        )
