"""Equivalence verification (the Mediator substitute).

The original Migrator first runs exhaustive bounded testing and only then
invokes the Mediator verifier, which proves full equivalence by inferring a
bisimulation invariant.  Mediator is not available here, so the final
verification step is replaced by a *deeper* bounded check:

* exhaustive enumeration with a longer update prefix and the full per-type
  seed sets, and
* a batch of randomized invocation sequences beyond the exhaustive bound.

This preserves the observable behaviour of the synthesis loop on the
benchmark family (the paper reports that testing never disagreed with
Mediator), at the cost of soundness beyond the bound, which we document as a
limitation in EXPERIMENTS.md.

``ExecutionError`` semantics match :class:`~repro.equivalence.tester.BoundedTester`
exactly: a candidate that raises is failing (never "equivalently broken"),
and a source that raises propagates the error to the caller.  See the
"Error semantics" section of EXPERIMENTS.md.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.engine.compiler import ProgramCompiler, make_runner
from repro.engine.joins import ExecutionError
from repro.equivalence.invocation import InvocationSequence, SeedSet, SequenceGenerator
from repro.equivalence.result_compare import canonicalize_outputs
from repro.lang.ast import Program


@dataclass
class VerificationResult:
    equivalent: bool
    counterexample: Optional[InvocationSequence] = None
    sequences_checked: int = 0
    method: str = "bounded-testing"

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.equivalent


class BoundedVerifier:
    """Deep bounded verification of program equivalence."""

    def __init__(
        self,
        *,
        max_updates: int = 3,
        random_sequences: int = 200,
        random_max_length: int = 5,
        seeds: SeedSet | None = None,
        relevance_filter: bool = True,
        seed: int = 0,
        max_sequences: int = 50000,
        execution_backend: str = "compiled",
        compiler: ProgramCompiler | None = None,
    ):
        self.max_updates = max_updates
        self.random_sequences = random_sequences
        self.random_max_length = random_max_length
        self.seeds = seeds or SeedSet.exhaustive()
        self.relevance_filter = relevance_filter
        self.seed = seed
        self.max_sequences = max_sequences
        # One verify() call executes up to max_sequences + random_sequences
        # invocation sequences against the same two programs, so both are
        # compiled exactly once per call (the compiler caches per program).
        self._run = make_runner(execution_backend, compiler)

    def _source_outputs(self, program: Program, sequence: InvocationSequence):
        # Source errors propagate (as in BoundedTester): a source program that
        # cannot execute inside the bounded space is a caller bug, not
        # evidence about the candidate.
        return canonicalize_outputs(self._run(program, sequence))

    def _candidate_outputs(self, program: Program, sequence: InvocationSequence):
        try:
            return canonicalize_outputs(self._run(program, sequence))
        except ExecutionError:
            # Mirror BoundedTester: a candidate that raises is *failing*,
            # even if the source would also error on the same sequence.
            # Treating two errors as equivalent would let a candidate pass
            # verification and then fail testing on the very same sequence.
            return None

    def _differs(self, source: Program, candidate: Program, sequence: InvocationSequence) -> bool:
        # Source first (exactly like BoundedTester.differs_on): a broken
        # source raises before the candidate is ever consulted.
        expected = self._source_outputs(source, sequence)
        actual = self._candidate_outputs(candidate, sequence)
        return actual is None or actual != expected

    def verify(self, source: Program, candidate: Program) -> VerificationResult:
        generator = SequenceGenerator(
            programs=[source, candidate],
            seeds=self.seeds,
            max_updates=self.max_updates,
            relevance_filter=self.relevance_filter,
        )
        checked = 0
        for sequence in generator.sequences():
            checked += 1
            if checked > self.max_sequences:
                break
            if self._differs(source, candidate, sequence):
                return VerificationResult(False, sequence, checked)
        rng = random.Random(self.seed)
        for sequence in generator.random_sequences(
            self.random_sequences, self.random_max_length, rng
        ):
            checked += 1
            if self._differs(source, candidate, sequence):
                return VerificationResult(False, sequence, checked, method="randomized-testing")
        return VerificationResult(True, None, checked)
