"""Equivalence verification (the Mediator substitute).

The original Migrator first runs exhaustive bounded testing and only then
invokes the Mediator verifier, which proves full equivalence by inferring a
bisimulation invariant.  Mediator is not available here, so the final
verification step is replaced by a *deeper* bounded check:

* exhaustive enumeration with a longer update prefix and the full per-type
  seed sets, and
* a batch of randomized invocation sequences beyond the exhaustive bound.

This preserves the observable behaviour of the synthesis loop on the
benchmark family (the paper reports that testing never disagreed with
Mediator), at the cost of soundness beyond the bound, which we document as a
limitation in EXPERIMENTS.md.

``ExecutionError`` semantics match :class:`~repro.equivalence.tester.BoundedTester`
exactly: a candidate that raises is failing (never "equivalently broken"),
and a source that raises propagates the error to the caller.  See the
"Error semantics" section of EXPERIMENTS.md.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.engine.compiler import ProgramCompiler, make_batch_runner, make_runner
from repro.engine.joins import ExecutionError
from repro.equivalence.invocation import InvocationSequence, SeedSet, SequenceGenerator
from repro.equivalence.result_compare import canonicalize_outputs
from repro.equivalence.tester import (
    TestingInterrupted,
    batched_first_divergence,
    cached_source_outputs,
)
from repro.lang.ast import Program
from repro.lang.pretty import format_program
from repro.testing_cache import SourceOutputCache


@dataclass
class VerifierStatistics:
    """Counters surfaced alongside the tester's on ``SynthesisResult.cache``."""

    source_cache_hits: int = 0


@dataclass
class VerificationResult:
    equivalent: bool
    counterexample: Optional[InvocationSequence] = None
    sequences_checked: int = 0
    method: str = "bounded-testing"

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.equivalent


class BoundedVerifier:
    """Deep bounded verification of program equivalence."""

    def __init__(
        self,
        *,
        max_updates: int = 3,
        random_sequences: int = 200,
        random_max_length: int = 5,
        seeds: SeedSet | None = None,
        relevance_filter: bool = True,
        seed: int = 0,
        max_sequences: int = 50000,
        execution_backend: str = "compiled",
        compiler: ProgramCompiler | None = None,
        source_cache: SourceOutputCache | None = None,
    ):
        self.max_updates = max_updates
        self.random_sequences = random_sequences
        self.random_max_length = random_max_length
        self.seeds = seeds or SeedSet.exhaustive()
        self.relevance_filter = relevance_filter
        self.seed = seed
        self.max_sequences = max_sequences
        # One verify() call executes up to max_sequences + random_sequences
        # invocation sequences against the same two programs, so both are
        # compiled exactly once per call (the compiler caches per program).
        # The columnar backend also verifies in batches; the batch runner
        # shares the compiler so both paths reuse compiled artefacts.
        if execution_backend == "columnar" and compiler is None:
            compiler = ProgramCompiler()
        self._run = make_runner(execution_backend, compiler)
        self._batch = make_batch_runner(execution_backend, compiler)
        # Optional shared source-output memo (same cache the tester uses; keys
        # include the program fingerprint, so sharing across runs — e.g. the
        # migration service verifying several candidates of the same source
        # program — is sound).  Verification outputs are *canonicalized*
        # exactly like the tester's, so entries are interchangeable.
        self._source_cache = source_cache
        self.stats = VerifierStatistics()
        self._source_key: Optional[str] = None
        # Gathered source-side batch outcomes per chunk — see
        # ``batched_first_divergence``'s *gather_memo* (inert while
        # ``_source_key`` is None, i.e. with no source cache attached).
        self._gather_memo: list = []
        # The source program is fingerprinted once per *program object*, not
        # once per verify() call: the completion loop verifies many
        # candidates against the same source, and pretty-printing it each
        # time is pure repeated work.  Holding the program reference keeps
        # the identity check sound (no id() reuse while we keep it alive).
        self._keyed_source: Optional[Program] = None
        #: Optional cooperative-interruption hook, mirroring
        #: ``BoundedTester.interrupt``: polled once per verified sequence; a
        #: ``True`` return aborts the pass with
        #: :class:`~repro.equivalence.tester.TestingInterrupted`.  The
        #: completer installs (and restores) it around each completion call,
        #: so a deep verification pass cannot overrun the run's deadline or
        #: ignore a cancellation request.
        self.interrupt: Optional[Callable[[], bool]] = None

    def _source_outputs(self, program: Program, sequence: InvocationSequence):
        # Source errors propagate (as in BoundedTester): a source program that
        # cannot execute inside the bounded space is a caller bug, not
        # evidence about the candidate.
        return cached_source_outputs(
            self._source_cache, self._source_key, self._run, program, sequence, self.stats
        )

    def _candidate_outputs(self, program: Program, sequence: InvocationSequence):
        try:
            return canonicalize_outputs(self._run(program, sequence))
        except ExecutionError:
            # Mirror BoundedTester: a candidate that raises is *failing*,
            # even if the source would also error on the same sequence.
            # Treating two errors as equivalent would let a candidate pass
            # verification and then fail testing on the very same sequence.
            return None

    def _differs(self, source: Program, candidate: Program, sequence: InvocationSequence) -> bool:
        if self.interrupt is not None and self.interrupt():
            raise TestingInterrupted()
        # Source first (exactly like BoundedTester.differs_on): a broken
        # source raises before the candidate is ever consulted.
        expected = self._source_outputs(source, sequence)
        actual = self._candidate_outputs(candidate, sequence)
        return actual is None or actual != expected

    def _interrupt_hook(self) -> None:
        """Raising form of the interrupt poll, passed into batch kernels."""
        if self.interrupt is not None and self.interrupt():
            raise TestingInterrupted()

    def _first_divergence_batched(
        self, source: Program, candidate: Program, sequences: list[InvocationSequence]
    ) -> Optional[int]:
        def visit(_visited: int, source_cache_hits: int) -> None:
            self.stats.source_cache_hits += source_cache_hits

        return batched_first_divergence(
            self._batch,
            self._source_cache,
            self._source_key,
            source,
            candidate,
            sequences,
            # No hook installed → no per-node polling inside the kernels.
            interrupt=self._interrupt_hook if self.interrupt is not None else None,
            visit=visit,
            gather_memo=self._gather_memo,
        )

    def verify(self, source: Program, candidate: Program) -> VerificationResult:
        if self._source_cache is not None and source is not self._keyed_source:
            self._source_key = format_program(source)
            self._keyed_source = source
        generator = SequenceGenerator(
            programs=[source, candidate],
            seeds=self.seeds,
            max_updates=self.max_updates,
            relevance_filter=self.relevance_filter,
        )
        if self._batch is not None:
            return self._verify_batched(source, candidate, generator)
        checked = 0
        for sequence in generator.sequences():
            checked += 1
            if checked > self.max_sequences:
                break
            if self._differs(source, candidate, sequence):
                return VerificationResult(False, sequence, checked)
        rng = random.Random(self.seed)
        for sequence in generator.random_sequences(
            self.random_sequences, self.random_max_length, rng
        ):
            checked += 1
            if self._differs(source, candidate, sequence):
                return VerificationResult(False, sequence, checked, method="randomized-testing")
        return VerificationResult(True, None, checked)

    def _verify_batched(
        self, source: Program, candidate: Program, generator: SequenceGenerator
    ) -> VerificationResult:
        """Both verification passes in chunks through the batch kernels.

        Produces the same :class:`VerificationResult` — counterexample,
        ``sequences_checked`` (including the scalar loop's count of the
        bound-tripping sequence) and method — as the scalar loops.
        """
        iterator = generator.sequences()
        checked = 0
        chunk_size = 32
        exhausted = False
        while checked < self.max_sequences:
            take = min(chunk_size, self.max_sequences - checked)
            chunk = list(itertools.islice(iterator, take))
            if not chunk:
                exhausted = True
                break
            checked += len(chunk)
            index = self._first_divergence_batched(source, candidate, chunk)
            if index is not None:
                checked -= len(chunk) - (index + 1)
                return VerificationResult(False, chunk[index], checked)
            chunk_size = min(chunk_size * 4, 512)
        if not exhausted and next(iterator, None) is not None:
            checked += 1  # the scalar loop counts the sequence that trips the bound
        rng = random.Random(self.seed)
        randoms = list(
            generator.random_sequences(self.random_sequences, self.random_max_length, rng)
        )
        start = 0
        chunk_size = 32
        while start < len(randoms):
            chunk = randoms[start : start + chunk_size]
            index = self._first_divergence_batched(source, candidate, chunk)
            if index is not None:
                checked += index + 1
                return VerificationResult(
                    False, chunk[index], checked, method="randomized-testing"
                )
            checked += len(chunk)
            start += len(chunk)
            chunk_size = min(chunk_size * 4, 512)
        return VerificationResult(True, None, checked)
