"""Invocation sequences and their enumeration for bounded testing.

An invocation sequence (Section 3.2) is a list of update-function calls
followed by a single query-function call.  The bounded tester enumerates
sequences in increasing length over small per-type constant seed sets; the
first failing sequence found is therefore a *minimum failing input* (MFI).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

from repro.datamodel.types import DataType, default_seed_values
from repro.lang.ast import Function, Program, QueryFunction, UpdateFunction
from repro.lang.visitors import join_chains_of_function, attributes_of_function


Invocation = tuple[str, tuple]
InvocationSequence = tuple[Invocation, ...]


@dataclass
class SeedSet:
    """Constant seed values per data type used to instantiate arguments."""

    values: dict[DataType, list[Any]] = field(default_factory=dict)

    @staticmethod
    def default(ints: int = 2, strings: int = 1, binaries: int = 1, bools: int = 2) -> "SeedSet":
        """The default seed set: two integers, one string, one binary blob.

        Integer parameters usually act as keys, where having two distinct
        values matters; payload parameters (names, blobs) rarely need more
        than one distinct value to expose disequivalence.
        """
        full = {
            DataType.INT: default_seed_values(DataType.INT)[:ints],
            DataType.STRING: default_seed_values(DataType.STRING)[:strings],
            DataType.BINARY: default_seed_values(DataType.BINARY)[:binaries],
            DataType.BOOL: default_seed_values(DataType.BOOL)[:bools],
        }
        return SeedSet(full)

    @staticmethod
    def exhaustive() -> "SeedSet":
        """The paper's seed set: the full default constants for every type."""
        return SeedSet({dtype: default_seed_values(dtype) for dtype in DataType})

    def for_type(self, dtype: DataType) -> list[Any]:
        values = self.values.get(dtype)
        if not values:
            return default_seed_values(dtype)[:1]
        return values


def filtered_attributes(program: Program) -> frozenset:
    """Attributes that appear in some predicate of *program*.

    Parameters whose values flow into these attributes act as *keys*: queries
    and deletes select rows by comparing against them, so the bounded tester
    must explore multiple seed values for them.  All other parameters are
    payload and a single distinctive constant per position suffices.
    """
    from repro.lang.ast import AttrRef, Comparison, InQuery, Projection, QueryFunction, Selection
    from repro.lang.visitors import attributes_of_predicate

    attrs: set = set()

    def walk_query(query) -> None:
        node = query
        while isinstance(node, (Projection, Selection)):
            if isinstance(node, Selection):
                attrs.update(attributes_of_predicate(node.predicate))
            node = node.source

    for func in program:
        if isinstance(func, QueryFunction):
            walk_query(func.query)
        else:
            for stmt in func.statements:
                predicate = getattr(stmt, "predicate", None)
                if predicate is not None:
                    attrs.update(attributes_of_predicate(predicate))
    return frozenset(attrs)


def predicate_parameters(func: Function, key_attributes: frozenset = frozenset()) -> frozenset[str]:
    """Parameters of *func* that must range over the seed set.

    These are (a) parameters compared in this function's own predicates and
    (b) parameters whose value is stored into an attribute that some other
    function filters on (``key_attributes`` — see :func:`filtered_attributes`).
    """
    from repro.lang.ast import (
        And,
        Comparison,
        InQuery,
        Insert,
        Not,
        Or,
        Projection,
        QueryFunction,
        Selection,
        TruePred,
        Update,
        UpdateFunction,
        Var,
    )

    names: set[str] = set()

    def walk_predicate(pred) -> None:
        if isinstance(pred, (TruePred,)) or pred is None:
            return
        if isinstance(pred, Comparison):
            for operand in (pred.left, pred.right):
                if isinstance(operand, Var):
                    names.add(operand.name)
            return
        if isinstance(pred, InQuery):
            if isinstance(pred.operand, Var):
                names.add(pred.operand.name)
            walk_query(pred.query)
            return
        if isinstance(pred, (And, Or)):
            walk_predicate(pred.left)
            walk_predicate(pred.right)
            return
        if isinstance(pred, Not):
            walk_predicate(pred.operand)

    def walk_query(query) -> None:
        node = query
        while isinstance(node, (Projection, Selection)):
            if isinstance(node, Selection):
                walk_predicate(node.predicate)
            node = node.source

    if isinstance(func, QueryFunction):
        walk_query(func.query)
    else:
        assert isinstance(func, UpdateFunction)
        for stmt in func.statements:
            predicate = getattr(stmt, "predicate", None)
            if predicate is not None:
                walk_predicate(predicate)
            if isinstance(stmt, Insert):
                for attr, operand in stmt.values:
                    if isinstance(operand, Var) and attr in key_attributes:
                        names.add(operand.name)
            elif isinstance(stmt, Update):
                if isinstance(stmt.value, Var) and stmt.attribute in key_attributes:
                    names.add(stmt.value.name)
    return frozenset(names)


def _payload_value(dtype: DataType, position: int):
    """A distinctive constant for a payload parameter at *position*."""
    if dtype is DataType.INT:
        return 100 + position
    if dtype is DataType.STRING:
        return f"v{position}"
    if dtype is DataType.BINARY:
        return f"blob{position}"
    if dtype is DataType.BOOL:
        return position % 2 == 0
    raise ValueError(f"unknown data type {dtype!r}")


def argument_combinations(
    func: Function, seeds: SeedSet, predicate_params: frozenset[str] | None = None
) -> list[tuple]:
    """Argument tuples for *func*.

    Parameters used in predicates range over the seed set; payload parameters
    take a single distinctive constant each (see :func:`predicate_parameters`).
    When *predicate_params* is ``None`` every parameter ranges over the seeds
    (the paper's exhaustive scheme).
    """
    pools = []
    for position, param in enumerate(func.params):
        if predicate_params is None or param.name in predicate_params:
            pools.append(seeds.for_type(param.dtype))
        else:
            pools.append([_payload_value(param.dtype, position)])
    if not pools:
        return [()]
    return [tuple(combo) for combo in itertools.product(*pools)]


def tables_touched(func: Function) -> frozenset[str]:
    """Tables read or written by a function (used for relevance filtering)."""
    tables: set[str] = set()
    for chain in join_chains_of_function(func):
        tables.update(chain.tables)
    for attr in attributes_of_function(func):
        tables.add(attr.table)
    return frozenset(tables)


@dataclass
class SequenceGenerator:
    """Enumerates invocation sequences in increasing length.

    ``programs`` lists all programs whose behaviour the sequence will be run
    against (the source and the candidate); relevance filtering keeps an
    update function only if it touches a table that the final query touches
    in at least one of the programs.
    """

    programs: Sequence[Program]
    seeds: SeedSet = field(default_factory=SeedSet.default)
    max_updates: int = 2
    relevance_filter: bool = True

    def _touch_map(self) -> dict[str, frozenset[str]]:
        touched: dict[str, set[str]] = {}
        for program in self.programs:
            for func in program:
                touched.setdefault(func.name, set()).update(tables_touched(func))
        return {name: frozenset(tables) for name, tables in touched.items()}

    def _function_lists(self) -> tuple[list[str], list[str]]:
        """Names of update and query functions common to all programs."""
        reference = self.programs[0]
        update_names = [f.name for f in reference.update_functions()]
        query_names = [f.name for f in reference.query_functions()]
        return update_names, query_names

    def sequences(self) -> Iterator[InvocationSequence]:
        """Yield sequences in increasing length (then deterministic order)."""
        reference = self.programs[0]
        touch = self._touch_map()
        update_names, query_names = self._function_lists()
        key_attrs = filtered_attributes(reference)

        query_args = {
            name: argument_combinations(
                reference.function(name),
                self.seeds,
                predicate_parameters(reference.function(name), key_attrs),
            )
            for name in query_names
        }
        update_args = {
            name: argument_combinations(
                reference.function(name),
                self.seeds,
                predicate_parameters(reference.function(name), key_attrs),
            )
            for name in update_names
        }

        for num_updates in range(0, self.max_updates + 1):
            for query_name in query_names:
                relevant_updates = update_names
                if self.relevance_filter:
                    query_tables = touch.get(query_name, frozenset())
                    relevant_updates = [
                        name
                        for name in update_names
                        if touch.get(name, frozenset()) & query_tables
                    ]
                for update_combo in itertools.product(relevant_updates, repeat=num_updates):
                    arg_pools = [update_args[name] for name in update_combo]
                    arg_pools.append(query_args[query_name])
                    for args_combo in itertools.product(*arg_pools):
                        calls = tuple(
                            (name, args)
                            for name, args in zip(update_combo + (query_name,), args_combo)
                        )
                        yield calls

    def random_sequences(
        self, count: int, max_length: int, rng: random.Random | None = None
    ) -> Iterator[InvocationSequence]:
        """Random sequences (updates followed by a query) for deeper verification."""
        rng = rng or random.Random(0)
        reference = self.programs[0]
        update_names, query_names = self._function_lists()
        if not query_names:
            return
        for _ in range(count):
            length = rng.randint(0, max(0, max_length - 1))
            calls: list[Invocation] = []
            for _ in range(length):
                if not update_names:
                    break
                name = rng.choice(update_names)
                func = reference.function(name)
                args = tuple(
                    rng.choice(self.seeds.for_type(param.dtype)) for param in func.params
                )
                calls.append((name, args))
            query_name = rng.choice(query_names)
            func = reference.function(query_name)
            args = tuple(rng.choice(self.seeds.for_type(param.dtype)) for param in func.params)
            calls.append((query_name, args))
            yield tuple(calls)


def format_sequence(sequence: InvocationSequence) -> str:
    """Human-readable rendering, e.g. ``addTA(1, 'A'); getTAInfo(1)``."""
    parts = []
    for name, args in sequence:
        rendered = ", ".join(repr(a) for a in args)
        parts.append(f"{name}({rendered})")
    return "; ".join(parts)
