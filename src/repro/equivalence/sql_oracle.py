"""Cross-engine differential oracle: replay programs through stdlib sqlite3.

The project's three execution backends (interpreter, compiled, columnar)
share one heritage, so a semantics bug in the reference interpreter would be
invisible to the backend-vs-backend differential tests.  This module replays
invocation sequences through an *independent* engine — Python's bundled
``sqlite3`` — and compares canonicalized query outputs.  It began life inside
``tests/test_sql_oracle.py`` and moved here so the corpus subsystem (chain
verification, fuzzing) can cross-check generated workloads with it.

Translation notes (how Figure 5 semantics map onto SQL):

* Tables are created with bare (affinity-free) columns, so sqlite stores
  every value with its natural storage class and never coerces.
* Fresh UIDs become sentinel text ``"\\x01uid:N"`` (and ``None`` becomes
  ``"\\x01null"``); the replayer allocates its own UID counter mirroring the
  evaluator's allocation order, and ``canonicalize_outputs`` makes the
  comparison renaming-independent anyway.
* Booleans become 0/1 integers.  Python's ``True == 1`` matches sqlite's
  ``1 = 1``, but bools are *not orderable* in the paper's value model, so
  ordering comparisons with a statically boolean operand translate to the
  literal ``0``.  Interpreter outputs are bool->int normalized before
  canonicalization so both sides speak integers.
* Ordering comparisons are only defined between two numbers or two strings
  (never NULL, UIDs, bools or blobs) and are otherwise *false*, not an
  error; they translate to a ``CASE`` guarded by ``typeof()`` checks that
  excludes the ``"\\x01"`` sentinels.
* Equality is structural across types: sqlite's ``=`` on distinct storage
  classes is false, just like Python's ``==`` on ``int`` vs ``str``.
* Deletes and updates collect every target rowid *before* mutating, exactly
  as the evaluator computes ``matches`` once before applying them.
* Insert-into-join replicates the evaluator's union-find over join
  conditions so linked attributes share one fresh UID.

Sequences on which the interpreter itself raises are skipped by
:func:`oracle_agrees` (the oracle checks value semantics, not error
reporting — tests/test_compiled.py and tests/test_columnar.py pin error
classes).
"""

from __future__ import annotations

import sqlite3

from repro.datamodel.types import DataType as T
from repro.engine import run_invocation_sequence
from repro.engine.uid import UniqueValue
from repro.equivalence.result_compare import canonicalize_outputs
from repro.lang.ast import (
    And,
    AttrRef,
    CompareOp,
    Comparison,
    Const,
    Delete,
    Insert,
    InQuery,
    JoinChain,
    Not,
    Or,
    Projection,
    QueryFunction,
    Selection,
    TruePred,
    Update,
    UpdateFunction,
    Var,
)

#: Sentinel prefix for values sqlite has no native carrier for.
_SENTINEL = "\x01"
_NULL_SENTINEL = _SENTINEL + "null"


class OracleUnsupported(Exception):
    """The oracle cannot faithfully translate this construct to SQL."""


# ----------------------------------------------------------------- encoding
def encode(value):
    """Map an engine value to its sqlite carrier."""
    if isinstance(value, UniqueValue):
        return f"{_SENTINEL}uid:{value.index}"
    if value is None:
        return _NULL_SENTINEL
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, str) and value.startswith(_SENTINEL):
        raise OracleUnsupported(f"string collides with sentinel prefix: {value!r}")
    return value


def decode(value):
    """Map a sqlite carrier back to an engine value (bools stay ints)."""
    if isinstance(value, str) and value.startswith(_SENTINEL):
        if value == _NULL_SENTINEL:
            return None
        return UniqueValue(int(value.rsplit(":", 1)[1]))
    return value


def literal(value):
    """Render an *encoded* value as a SQL literal."""
    if isinstance(value, bool):  # pragma: no cover - encode() strips bools
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, bytes):
        return "X'" + value.hex() + "'"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    raise OracleUnsupported(f"no SQL literal for {value!r}")


def normalize_bools(outputs):
    """Interpreter outputs with every bool cell collapsed to 0/1."""
    return [
        [
            tuple(int(v) if isinstance(v, bool) else v for v in row)
            for row in result
        ]
        for result in outputs
    ]


# ---------------------------------------------------------------- replayer
class SqliteOracle:
    """Replays one program's invocation sequences through sqlite3."""

    def __init__(self, program):
        self.program = program
        self.schema = program.schema
        self.conn = sqlite3.connect(":memory:")
        self._next_uid = 0
        for table in self.schema.tables.values():
            columns = ", ".join(f'"{name}"' for name in table.columns)
            self.conn.execute(f'CREATE TABLE "{table.name}" ({columns})')

    def close(self):
        self.conn.close()

    def fresh_uid(self):
        value = UniqueValue(self._next_uid)
        self._next_uid += 1
        return value

    # -------------------------------------------------------------- running
    def run(self, sequence):
        """Execute an invocation sequence; returns decoded query outputs."""
        outputs = []
        for name, args in sequence:
            func = self.program.function(name)
            bindings = {param.name: value for param, value in zip(func.params, args)}
            if isinstance(func, QueryFunction):
                outputs.append(self._run_query(func.query, bindings))
            else:
                assert isinstance(func, UpdateFunction)
                for stmt in func.statements:
                    self._execute(stmt, bindings)
        return outputs

    # ------------------------------------------------------------- operands
    def _resolve(self, operand, bindings):
        if isinstance(operand, Const):
            return operand.value
        if isinstance(operand, Var):
            return bindings[operand.name]
        raise OracleUnsupported(f"cannot resolve {operand!r} outside a row")

    def _operand_sql(self, operand, bindings):
        """(sql_text, statically_unorderable) for one comparison operand.

        *statically_unorderable* is true when the paper's value model makes
        every ordering comparison involving this operand false regardless of
        the other side: boolean or ``None`` constants/arguments, and columns
        declared BOOL (which only ever hold bools or UIDs, neither
        orderable).
        """
        if isinstance(operand, AttrRef):
            attribute = operand.attribute
            unorderable = self.schema.type_of(attribute) is T.BOOL
            return f'"{attribute.table}"."{attribute.name}"', unorderable
        value = self._resolve(operand, bindings)
        return literal(encode(value)), isinstance(value, bool) or value is None

    # ------------------------------------------------------------ predicates
    def _predicate_sql(self, pred, bindings):
        if isinstance(pred, TruePred):
            return "1"
        if isinstance(pred, Comparison):
            left, left_unord = self._operand_sql(pred.left, bindings)
            right, right_unord = self._operand_sql(pred.right, bindings)
            if pred.op is CompareOp.EQ:
                return f"({left} = {right})"
            if pred.op is CompareOp.NE:
                return f"({left} <> {right})"
            if left_unord or right_unord:
                return "0"
            return self._ordered_sql(left, pred.op.value, right)
        if isinstance(pred, InQuery):
            operand, _ = self._operand_sql(pred.operand, bindings)
            subquery = self._query_sql(pred.query, bindings, first_column_only=True)
            if subquery is None:
                return "0"  # zero-column subquery: membership is vacuously false
            return f"({operand} IN ({subquery}))"
        if isinstance(pred, And):
            return (
                f"({self._predicate_sql(pred.left, bindings)}"
                f" AND {self._predicate_sql(pred.right, bindings)})"
            )
        if isinstance(pred, Or):
            return (
                f"({self._predicate_sql(pred.left, bindings)}"
                f" OR {self._predicate_sql(pred.right, bindings)})"
            )
        if isinstance(pred, Not):
            return f"(NOT {self._predicate_sql(pred.operand, bindings)})"
        raise OracleUnsupported(f"unknown predicate node {pred!r}")

    @staticmethod
    def _ordered_sql(left, op, right):
        """An ordering comparison under the paper's partial value model.

        Defined (two numbers, or two non-sentinel strings) -> compare;
        otherwise false.  The sentinel guard keeps UID/None carriers out of
        string ordering, mirroring ``repro.engine.predicates._orderable``.
        """
        num = "typeof({0}) IN ('integer', 'real')"
        txt = "(typeof({0}) = 'text' AND substr({0}, 1, 1) <> char(1))"
        orderable = (
            f"(({num.format(left)} AND {num.format(right)})"
            f" OR ({txt.format(left)} AND {txt.format(right)}))"
        )
        return f"(CASE WHEN {orderable} THEN {left} {op} {right} ELSE 0 END)"

    # --------------------------------------------------------------- queries
    def _flatten(self, query):
        """(projection | None, [predicates], chain) per evaluator semantics.

        Only the outermost projection restricts output columns; inner
        projections pass rows through; selections at any depth filter.
        """
        projection = None
        node = query
        if isinstance(node, Projection):
            projection = node.attributes
            node = node.source
        predicates = []
        while not isinstance(node, JoinChain):
            if isinstance(node, Selection):
                predicates.append(node.predicate)
                node = node.source
            elif isinstance(node, Projection):
                node = node.source
            else:
                raise OracleUnsupported(f"unknown query node {node!r}")
        return projection, predicates, node

    def _chain_sql(self, chain):
        if len(set(chain.tables)) != len(chain.tables):
            raise OracleUnsupported(f"self-join in chain {chain}")
        from_clause = ", ".join(f'"{name}"' for name in chain.tables)
        conditions = [
            f'("{l.table}"."{l.name}" = "{r.table}"."{r.name}")'
            for l, r in chain.conditions
        ]
        return from_clause, conditions

    def _query_sql(self, query, bindings, first_column_only=False):
        projection, predicates, chain = self._flatten(query)
        if projection is None:
            columns = [
                attribute
                for name in chain.tables
                for attribute in self.schema.attributes_of(name)
            ]
        else:
            columns = list(projection)
        if first_column_only:
            if not columns:
                return None
            columns = columns[:1]
        select_list = ", ".join(f'"{a.table}"."{a.name}"' for a in columns) or "1"
        from_clause, conditions = self._chain_sql(chain)
        conditions += [self._predicate_sql(p, bindings) for p in predicates]
        sql = f"SELECT {select_list} FROM {from_clause}"
        if conditions:
            sql += " WHERE " + " AND ".join(conditions)
        return sql

    def _run_query(self, query, bindings):
        sql = self._query_sql(query, bindings)
        rows = self.conn.execute(sql).fetchall()
        return [tuple(decode(cell) for cell in row) for row in rows]

    # ------------------------------------------------------------ statements
    def _execute(self, stmt, bindings):
        if isinstance(stmt, Insert):
            self._execute_insert(stmt, bindings)
        elif isinstance(stmt, Delete):
            self._execute_delete(stmt, bindings)
        elif isinstance(stmt, Update):
            self._execute_update(stmt, bindings)
        else:
            raise OracleUnsupported(f"unknown statement node {stmt!r}")

    def _execute_insert(self, stmt, bindings):
        chain = stmt.target
        provided = {
            attribute: self._resolve(operand, bindings)
            for attribute, operand in stmt.values
        }

        # Union-find over attributes linked by join conditions (mirrors
        # Evaluator._execute_insert so UID allocation order lines up).
        parent = {}

        def find(a):
            parent.setdefault(a, a)
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            return a

        for left, right in chain.conditions:
            root_l, root_r = find(left), find(right)
            if root_l != root_r:
                parent[root_l] = root_r

        class_values = {}
        for attribute, value in provided.items():
            class_values[find(attribute)] = value

        def value_for(attribute):
            if attribute in provided:
                return provided[attribute]
            root = find(attribute)
            if root in class_values:
                return class_values[root]
            if attribute in parent:
                fresh = self.fresh_uid()
                class_values[root] = fresh
                return fresh
            return self.fresh_uid()

        for name in chain.tables:
            row = [
                encode(value_for(attribute))
                for attribute in self.schema.attributes_of(name)
            ]
            placeholders = ", ".join("?" for _ in row)
            self.conn.execute(f'INSERT INTO "{name}" VALUES ({placeholders})', row)

    def _match_rowids(self, chain, predicate, bindings, table):
        from_clause, conditions = self._chain_sql(chain)
        conditions.append(self._predicate_sql(predicate, bindings))
        sql = (
            f'SELECT DISTINCT "{table}".rowid FROM {from_clause}'
            f" WHERE {' AND '.join(conditions)}"
        )
        return [row[0] for row in self.conn.execute(sql)]

    def _execute_delete(self, stmt, bindings):
        # Collect every target's rowids from the pre-statement state before
        # deleting anything, as the evaluator computes matches exactly once.
        targets = [
            (name, self._match_rowids(stmt.source, stmt.predicate, bindings, name))
            for name in stmt.tables
        ]
        for name, rowids in targets:
            if rowids:
                placeholders = ", ".join("?" for _ in rowids)
                self.conn.execute(
                    f'DELETE FROM "{name}" WHERE rowid IN ({placeholders})', rowids
                )

    def _execute_update(self, stmt, bindings):
        table = stmt.attribute.table
        rowids = self._match_rowids(stmt.source, stmt.predicate, bindings, table)
        if not rowids:
            return
        value = encode(self._resolve(stmt.value, bindings))
        placeholders = ", ".join("?" for _ in rowids)
        self.conn.execute(
            f'UPDATE "{table}" SET "{stmt.attribute.name}" = ?'
            f" WHERE rowid IN ({placeholders})",
            [value, *rowids],
        )


# -------------------------------------------------------------- comparison
def oracle_agrees(program, sequence):
    """True when sqlite matches the interpreter; None when skipped.

    Sequences on which the interpreter raises are skipped — the oracle
    checks value semantics only.  A sqlite-side failure on an
    interpreter-clean sequence is a hard error, never a skip.
    """
    try:
        expected = run_invocation_sequence(program, sequence)
    except Exception:
        return None
    oracle = SqliteOracle(program)
    try:
        actual = oracle.run(sequence)
    finally:
        oracle.close()
    return canonicalize_outputs(normalize_bools(expected)) == canonicalize_outputs(
        actual
    )
