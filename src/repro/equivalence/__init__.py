"""Equivalence checking: bounded testing, MFIs, and the verification substitute."""

from repro.equivalence.invocation import (
    Invocation,
    InvocationSequence,
    SeedSet,
    SequenceGenerator,
    argument_combinations,
    format_sequence,
    tables_touched,
)
from repro.equivalence.result_compare import canonicalize_outputs, canonicalize_result, results_equal
from repro.equivalence.sql_oracle import (
    OracleUnsupported,
    SqliteOracle,
    normalize_bools,
    oracle_agrees,
)
from repro.equivalence.tester import BoundedTester, TesterStatistics, TestingInterrupted
from repro.equivalence.verifier import BoundedVerifier, VerificationResult, VerifierStatistics

__all__ = [
    "BoundedTester",
    "BoundedVerifier",
    "TestingInterrupted",
    "Invocation",
    "InvocationSequence",
    "OracleUnsupported",
    "SeedSet",
    "SequenceGenerator",
    "SqliteOracle",
    "TesterStatistics",
    "VerificationResult",
    "VerifierStatistics",
    "argument_combinations",
    "canonicalize_outputs",
    "canonicalize_result",
    "format_sequence",
    "normalize_bools",
    "oracle_agrees",
    "results_equal",
    "tables_touched",
]
