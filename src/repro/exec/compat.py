"""Version and platform compatibility shims for the execution layer.

``concurrent.futures.TimeoutError`` has a Python-version-sensitive identity:
up to 3.10 it is a distinct class (subclassing ``Exception``), from 3.11 on
it is a plain alias of the builtin ``TimeoutError``.  Code that catches only
one of the two names silently stops matching on the other interpreter line,
so every ``except`` over future waits in this package goes through
:data:`TIMEOUT_ERRORS`, which covers both spellings on every supported
version (duplicates in an ``except`` tuple are harmless).
"""

from __future__ import annotations

try:  # 3.11+: an alias of the builtin; <=3.10: a distinct Exception subclass
    from concurrent.futures import TimeoutError as FuturesTimeoutError
except ImportError:  # pragma: no cover - the name exists on all supported versions
    FuturesTimeoutError = TimeoutError  # type: ignore[misc]

#: The exception tuple to catch around ``Future.result(timeout=...)`` /
#: ``concurrent.futures.wait``: the builtin and the futures-module spelling,
#: whether or not they are the same class on this interpreter.
TIMEOUT_ERRORS: tuple[type[BaseException], ...] = (TimeoutError, FuturesTimeoutError)
