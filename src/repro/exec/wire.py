"""Length-prefixed wire framing for the socket transport.

One frame carries one protocol message between a coordinator (the
:class:`~repro.exec.remote.RemoteFleet` side of a scheduler) and a remote
worker (:mod:`repro.worker`).  The layout is deliberately dumb::

    u32 json_length | u32 payload_length | json header | pickle payload

Both length words are big-endian.  The JSON *header* is a flat object whose
``type`` field routes the message (``hello`` / ``welcome`` / ``task`` /
``event`` / ``task_end`` / ``result`` / ``cancel`` / ``heartbeat`` /
``shutdown``); the optional *payload* is a Python pickle for the messages
that ship objects (task functions and arguments, session events, results,
exceptions).  Control messages keep an empty payload, so a protocol trace
is mostly human-readable JSON.

Payloads are pickles for the same reason the job store's ``spec`` fields
are: this is a trusted, same-codebase operational link (workers are
processes *you* started against *your* coordinator), not an interchange
format — never point a worker at an untrusted peer or vice versa.

Handshake: after the TCP connection is up, the **worker** always speaks
first — a ``hello`` carrying :data:`WIRE_VERSION`, its worker id, slot
count and pid — regardless of which side dialed (a worker may ``--connect``
to a listening coordinator, or listen and be dialed).  The coordinator
answers ``welcome`` (echoing its version plus the heartbeat interval and
lease TTL the worker must honour) or ``reject`` and closes.  Version
checking is exact: the frame layout and the message vocabulary version
together, so a mismatch fails loudly at registration instead of corrupting
mid-run.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import struct
from typing import Any, Optional

from repro.exec import faults

#: Version of the frame layout *and* message vocabulary (exact-match check).
WIRE_VERSION = 1

#: Refuse frames larger than this: a corrupt length word must fail loudly,
#: not allocate gigabytes.  Generous — pool snapshots and result payloads
#: are kilobytes, not hundreds of megabytes.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_LENGTHS = struct.Struct(">II")


class FrameError(RuntimeError):
    """The byte stream does not parse as a frame (torn, oversized, corrupt)."""


class ConnectionClosed(FrameError):
    """The peer closed the connection at a frame boundary (clean EOF)."""


class HandshakeError(FrameError):
    """Registration failed: version mismatch or a non-handshake first frame."""


def dump_payload(obj: Any) -> bytes:
    """Pickle a frame payload (see the module docstring's trust model)."""
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def load_payload(data: bytes) -> Any:
    return pickle.loads(data)


def _recv_exactly(sock, count: int) -> bytes:
    """Read exactly *count* bytes; '' mid-message is a torn frame."""
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise FrameError(f"connection closed {remaining} byte(s) into a frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock, header: dict, payload: bytes = b"") -> None:
    """Send one frame: header dict (JSON) plus an optional pickled payload."""
    body = json.dumps(header, sort_keys=True).encode("utf-8")
    if len(body) + len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(body) + len(payload)} bytes exceeds MAX_FRAME_BYTES"
        )
    # One sendall: small frames leave in one segment, and concatenating
    # keeps a concurrent sender (guarded by the caller's send lock) from
    # interleaving header and payload of different frames.
    data = _LENGTHS.pack(len(body), len(payload)) + body + payload
    injector = faults.active()
    if injector is not None:
        data = injector.before_send(sock, header, data)
    sock.sendall(data)


def recv_frame(sock) -> tuple[dict, bytes]:
    """Receive one frame; returns ``(header, payload_bytes)``.

    Raises :class:`ConnectionClosed` on a clean EOF between frames and
    :class:`FrameError` on a torn or unparseable one.
    """
    injector = faults.active()
    if injector is not None:
        injector.before_recv(sock)
    first = sock.recv(_LENGTHS.size)
    if not first:
        raise ConnectionClosed("peer closed the connection")
    while len(first) < _LENGTHS.size:
        more = sock.recv(_LENGTHS.size - len(first))
        if not more:
            raise FrameError("connection closed inside a frame length prefix")
        first += more
    json_length, payload_length = _LENGTHS.unpack(first)
    if json_length + payload_length > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame announces {json_length + payload_length} bytes "
            f"(> MAX_FRAME_BYTES); stream is corrupt or not a repro peer"
        )
    body = _recv_exactly(sock, json_length) if json_length else b""
    payload = _recv_exactly(sock, payload_length) if payload_length else b""
    try:
        header = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise FrameError(f"frame header is not JSON: {error}") from error
    if not isinstance(header, dict):
        raise FrameError(f"frame header must be an object, got {type(header).__name__}")
    return header, payload


# ----------------------------------------------------------------- handshake
def worker_hello(
    sock, *, worker_id: str, slots: int = 1, pid: Optional[int] = None
) -> dict:
    """Worker side of the handshake: send ``hello``, await ``welcome``.

    Returns the coordinator's ``welcome`` header (carrying ``heartbeat`` and
    ``lease`` intervals).  Raises :class:`HandshakeError` on rejection or
    version mismatch.
    """
    send_frame(
        sock,
        {
            "type": "hello",
            "version": WIRE_VERSION,
            "worker": worker_id,
            "slots": slots,
            "pid": pid,
        },
    )
    header, _payload = recv_frame(sock)
    if header.get("type") == "reject":
        raise HandshakeError(f"coordinator rejected registration: {header.get('reason')}")
    if header.get("type") != "welcome":
        raise HandshakeError(f"expected welcome, got {header.get('type')!r}")
    if header.get("version") != WIRE_VERSION:
        raise HandshakeError(
            f"wire version mismatch: coordinator speaks {header.get('version')}, "
            f"this worker speaks {WIRE_VERSION}"
        )
    return header


def effective_heartbeat(base: float, jitter: float, worker_id: str) -> float:
    """Deterministic per-worker heartbeat interval.

    With ``jitter`` at 0.3 each worker beats at ``base * (1 ± 0.3)``,
    spread by a hash of its id — so a fleet restarted en masse does not
    renew leases in lockstep, and the spread is reproducible (the same
    worker id always lands on the same interval).
    """
    if jitter <= 0:
        return base
    digest = hashlib.sha256(worker_id.encode("utf-8")).digest()
    unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return max(0.01, base * (1.0 + jitter * (2.0 * unit - 1.0)))


def coordinator_accept(
    sock, *, heartbeat_interval: float, lease_ttl: float, heartbeat_jitter: float = 0.0
) -> dict:
    """Coordinator side: await ``hello``, answer ``welcome`` (or ``reject``).

    Returns the worker's ``hello`` header.  On version mismatch the worker
    gets a ``reject`` with the reason before :class:`HandshakeError` is
    raised here — both sides fail loudly, neither hangs.

    The ``welcome``'s ``heartbeat`` field is the *effective* (jittered)
    interval this worker must honour; ``heartbeat_base`` and ``jitter``
    record how it was derived.  With ``heartbeat_jitter=0`` (the default)
    the effective interval equals the base, byte-for-byte compatible with
    pre-jitter coordinators.
    """
    header, _payload = recv_frame(sock)
    if header.get("type") != "hello":
        send_frame(sock, {"type": "reject", "reason": "expected hello"})
        raise HandshakeError(f"expected hello, got {header.get('type')!r}")
    if header.get("version") != WIRE_VERSION:
        reason = (
            f"wire version mismatch: worker speaks {header.get('version')}, "
            f"coordinator speaks {WIRE_VERSION}"
        )
        send_frame(sock, {"type": "reject", "reason": reason})
        raise HandshakeError(reason)
    if not isinstance(header.get("worker"), str) or not header["worker"]:
        send_frame(sock, {"type": "reject", "reason": "hello carries no worker id"})
        raise HandshakeError("hello carries no worker id")
    effective = effective_heartbeat(
        heartbeat_interval, heartbeat_jitter, header["worker"]
    )
    send_frame(
        sock,
        {
            "type": "welcome",
            "version": WIRE_VERSION,
            "heartbeat": effective,
            "heartbeat_base": heartbeat_interval,
            "jitter": heartbeat_jitter,
            "lease": lease_ttl,
        },
    )
    header["heartbeat_effective"] = effective
    return header


def parse_address(address: str, *, default_host: str = "127.0.0.1") -> tuple[str, int]:
    """Parse ``HOST:PORT`` (or bare ``PORT``) into a connectable pair."""
    text = address.strip()
    host, sep, port_text = text.rpartition(":")
    if not sep:
        host, port_text = default_host, text
    host = host or default_host
    try:
        port = int(port_text)
    except ValueError as error:
        raise ValueError(f"invalid address {address!r}: port is not an integer") from error
    return host, port
