"""The unified priority/deadline work scheduler.

One :class:`WorkScheduler` replaces the two dispatch loops the code base
used to carry — the wave loop of the parallel value-correspondence
front-end (:mod:`repro.core.parallel`) and the ad-hoc batch dispatch of
:class:`~repro.service.MigrationService`.  Both are now *clients* of this
module: they submit :class:`TaskHandle`\\ s and map settled states back to
their own result shapes, while ordering, dispatch, deadline enforcement,
cancellation plumbing and executor lifecycle live here once.

Scheduling model:

* **Priority** — pending tasks are held in a heap ordered by
  ``(priority, deadline, submission order)``: lower priority values dispatch
  first, earlier deadlines break priority ties, submission order breaks the
  rest.  With equal priorities the scheduler is strictly FIFO, which is what
  keeps the parallel front-end's wave determinism intact (wave tasks are
  submitted in enumeration order with ``priority=index``).
* **Deadline** — an absolute ``time.time()`` instant (wall clock, comparable
  across processes).  A task whose deadline has passed when it reaches the
  front of the queue is marked :attr:`TaskState.EXPIRED` without being
  dispatched.  A *running* task is expected to self-limit (clients thread
  the deadline into the work payload); the scheduler adds a cooperative
  nudge — past the deadline it raises the task's cancel signal, and past
  ``deadline + grace`` it stops waiting and marks the task EXPIRED (the
  worker process winds down via the cancel signal rather than being killed).
* **Cancellation** — :meth:`TaskHandle.cancel` removes a pending task from
  contention and raises the cooperative cancel signal of a running one,
  across the process boundary when pooled (see
  :class:`~repro.exec.channel.FlagSignal`).
* **Events** — tasks submitted with an ``on_event`` subscriber stream their
  typed events live through the channel transport matching the execution
  mode: :class:`~repro.exec.channel.DirectChannel` inline,
  :class:`~repro.exec.channel.QueueChannel` under the process pool.  A task
  only settles after its event stream is fully drained, so a ``DONE`` handle
  never has events still in flight.

Execution modes mirror the clients' needs: ``max_workers <= 1`` runs tasks
inline on the draining thread (closures allowed, zero transport overhead);
``max_workers > 1`` runs them on a fork-based process pool (work functions
must be module-level picklables taking ``(payload, ctx)``); ``fleet=``
swaps the pool for a :class:`~repro.exec.remote.RemoteFleet` of socket
workers behind the same drain loop — clients see the identical handle,
event and settle semantics over every backend.

Crash recovery: when the pool *breaks* mid-drain (a worker process died),
the scheduler rebuilds the pool and channel and requeues just the affected
in-flight tasks with their priority and deadline preserved, up to
``max_retries`` crash incidents per task; a task that exhausts its retries
settles :attr:`TaskState.FAILED` with the pool-break error attached, while
the rest of the queue keeps running.  (A broken pool cannot attribute the
crash, so every task in flight at the incident shares the blame — the bound
is per task, not per culprit.)  Only when worker processes cannot be
*started* at all does :meth:`WorkScheduler.drain` still raise
:class:`ExecutorUnavailable`, with every unsettled task back in PENDING
state so the client can fall back to inline execution.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import multiprocessing
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import CancelledError as FuturesCancelledError
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence, Union

from repro.exec.channel import (
    DEFAULT_MAX_PENDING_EVENTS,
    ChannelStats,
    DirectChannel,
    QueueChannel,
    close_worker_stream,
    install_worker_transport,
    run_streamed_task,
    worker_context,
)
from repro.exec.compat import TIMEOUT_ERRORS  # noqa: F401  (re-exported surface)
from repro.exec.policy import RetryPolicy, TimeoutPolicy
from repro.exec.remote import FleetUnavailable, RemoteFleet, WorkerLost

#: Seconds a running task is granted past its deadline before the scheduler
#: stops waiting for it (the task's own deadline handling normally wins the
#: race; the grace only matters for wedged workers).
DEADLINE_GRACE = 5.0

#: Seconds past a task's deadline before the scheduler raises its cancel
#: signal.  Tasks are expected to self-limit *at* the deadline (clients fold
#: it into the session time limit); the delay keeps the self-limit path —
#: which reports a truthful "timed out" — from racing the cooperative nudge,
#: whose cancel signal would read as a cancellation instead.
NUDGE_DELAY = 1.0

#: Pool-break incidents one task may survive (and be requeued after) before
#: it settles FAILED.
DEFAULT_MAX_RETRIES = 2


class ExecutorUnavailable(RuntimeError):
    """Worker processes cannot be started or have collectively failed."""


@dataclass
class SchedulerStats:
    """Lifetime counters of one :class:`WorkScheduler`."""

    tasks_submitted: int = 0
    tasks_done: int = 0
    tasks_failed: int = 0
    tasks_cancelled: int = 0
    tasks_expired: int = 0
    #: Requeues caused by pool-break incidents (crash recovery).
    task_retries: int = 0
    #: Poison tasks settled QUARANTINED after repeatedly killing workers.
    tasks_quarantined: int = 0
    #: Degradation-ladder steps taken (fleet -> pool) by this scheduler.
    degradations: int = 0
    #: Times the worker pool (and its channel) was rebuilt after a break.
    pool_rebuilds: int = 0
    #: Remote workers declared lost (connection drop / lease expiry) while
    #: this scheduler was driving a fleet backend.
    workers_lost: int = 0
    #: Channel-load counters folded in when a channel is torn down.
    events_high_water: int = 0
    events_dropped: int = 0
    #: Priority boosts applied by the anti-starvation aging sweep
    #: (``age_after``): one count per task per boost.
    tasks_aged: int = 0


class TaskState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"        # the work function raised; see ``error`` / ``exception``
    CANCELLED = "cancelled"  # cancelled before producing a result
    EXPIRED = "expired"      # deadline passed before dispatch or before settling
    QUARANTINED = "quarantined"  # poison task: killed too many workers


#: States in which a task will never run (again).
SETTLED_STATES = (
    TaskState.DONE,
    TaskState.FAILED,
    TaskState.CANCELLED,
    TaskState.EXPIRED,
    TaskState.QUARANTINED,
)


class TaskHandle:
    """One scheduled unit of work: state, result, and cancellation control."""

    def __init__(
        self,
        scheduler: "WorkScheduler",
        task_id: int,
        fn: Callable,
        payload: Any,
        *,
        name: str = "",
        priority: int = 0,
        deadline: Optional[float] = None,
        on_event: Optional[Callable[[Any], None]] = None,
        on_start: Optional[Callable[[], None]] = None,
        on_retry: Optional[Callable[["TaskHandle"], None]] = None,
    ):
        self._scheduler = scheduler
        self.task_id = task_id
        self.fn = fn
        self.payload = payload
        self.name = name or f"task-{task_id}"
        self.priority = priority
        self.deadline = deadline
        self.on_event = on_event
        self.on_start = on_start
        self.on_retry = on_retry
        #: Pool-break incidents this task was in flight for (crash retries).
        self.retries = 0
        #: Remote workers this task was leased to that were then lost
        #: (drives poison-task quarantine, separately from pool breaks).
        self.worker_losses = 0
        self.state = TaskState.PENDING
        self.result: Any = None
        self.error: str = ""
        #: The exception object a FAILED task's work function raised (already
        #: unpickled on the parent side for pooled tasks).
        self.exception: Optional[BaseException] = None
        self._cancel_requested = False
        self._nudged = False  # deadline passed: cancel signal already raised
        self._not_before = 0.0  # retry backoff: earliest re-dispatch instant
        self._enqueued = time.time()  # aging reference instant
        self._age_credits = 0  # aging boosts already applied
        self._port = None
        self._future = None

    @property
    def done(self) -> bool:
        return self.state in SETTLED_STATES

    @property
    def cancel_requested(self) -> bool:
        return self._cancel_requested

    def cancel(self) -> None:
        """Request cancellation: pending tasks are skipped, running ones get
        their cooperative cancel signal raised (cross-process when pooled)."""
        with self._scheduler._lock:
            self._cancel_requested = True
            # Raise the signal while still holding the lock (it is a cheap
            # flag write): once _settle() clears _port and recycles the
            # cancel slot, a stale port reference here could otherwise cancel
            # whatever unrelated task received the slot.
            if self._port is not None:
                self._port.cancel()

    def _sort_key(self) -> tuple:
        deadline = float("inf") if self.deadline is None else self.deadline
        return (self.priority, deadline, self.task_id)


# ---------------------------------------------------------------- executors
def _mp_context():
    """The multiprocessing context shared by the channel and the pool.

    One selection point on purpose: the queue/flag primitives a
    :class:`~repro.exec.channel.QueueChannel` creates are inherited by the
    pool's workers, so both MUST come from the same context.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def _make_executor(
    workers: int,
    *,
    initializer: Optional[Callable] = None,
    initargs: tuple = (),
) -> ProcessPoolExecutor:
    """A fork-based process pool (spawn where fork is unavailable)."""
    return ProcessPoolExecutor(
        max_workers=workers,
        mp_context=_mp_context(),
        initializer=initializer,
        initargs=initargs,
    )


def _pooled_entry(task_id: int, slot: int, streaming: bool, fn: Callable, payload: Any):
    """Worker-process entry point: rebuild the context, run, close the stream."""
    ctx = worker_context(task_id, slot, streaming)
    return run_streamed_task(fn, payload, ctx, lambda: close_worker_stream(task_id))


# ---------------------------------------------------------------- scheduler
class WorkScheduler:
    """Priority/deadline scheduler over inline or pooled execution.

    Usage::

        with WorkScheduler(max_workers=4) as scheduler:
            handles = [scheduler.submit(fn, payload, priority=i) for i, payload in ...]
            scheduler.drain()
        # every handle is now settled: DONE / FAILED / CANCELLED / EXPIRED

    ``drain`` may be called repeatedly (the parallel front-end drains once
    per wave over one long-lived scheduler, keeping the worker pool warm
    across waves).
    """

    def __init__(
        self,
        *,
        max_workers: int = 0,
        deadline_grace: float = DEADLINE_GRACE,
        max_retries: int = DEFAULT_MAX_RETRIES,
        max_pending_events: int = DEFAULT_MAX_PENDING_EVENTS,
        fleet: Union[RemoteFleet, Sequence[str], None] = None,
        retry: Optional[RetryPolicy] = None,
        timeout: Optional[TimeoutPolicy] = None,
        degrade: bool = False,
        degrade_workers: int = 2,
        on_degrade: Optional[Callable[[str, str, str], None]] = None,
        age_after: Optional[float] = None,
        age_step: int = 1,
    ):
        # The unified policies are the source of truth; the bare
        # ``deadline_grace`` / ``max_retries`` knobs survive as shorthand
        # for building one-field policies.
        self.retry = retry if retry is not None else RetryPolicy(max_retries=max_retries)
        self.timeout = (
            timeout if timeout is not None else TimeoutPolicy(deadline_grace=deadline_grace)
        )
        self.max_workers = max_workers
        self.deadline_grace = self.timeout.deadline_grace
        self.max_retries = self.retry.max_retries
        self.max_pending_events = max_pending_events
        #: Walk the fleet -> pool degradation ladder on ExecutorUnavailable
        #: instead of raising (opt-in: clients that degrade themselves —
        #: parallel's sequential fallback, the service's inline fallback —
        #: keep the raise).
        self.degrade = degrade
        self.degrade_workers = max(1, degrade_workers)
        self.on_degrade = on_degrade
        #: Anti-starvation aging: every ``age_after`` seconds a still-pending
        #: task waits, its priority improves by ``age_step`` (lower sorts
        #: first), so low-weight tenants behind a firehose of high-priority
        #: work eventually reach the front.  ``None`` disables the sweep.
        self.age_after = age_after
        self.age_step = max(1, age_step)
        self._last_age_sweep = 0.0
        self.stats = SchedulerStats()
        self._retry_rng = self.retry.rng()
        self._next_ready: Optional[float] = None
        # The executor backend: a local process pool (fleet=None) or a remote
        # worker fleet — both drive the same drain loop; only _ensure_channel,
        # _ensure_executor and the per-task-crash handling differ.  A list of
        # "host:port" addresses builds a fleet this scheduler owns (and
        # closes); a RemoteFleet instance is borrowed from the caller.
        if fleet is not None and not isinstance(fleet, RemoteFleet):
            fleet = RemoteFleet(
                workers=tuple(fleet),
                start_timeout=self.timeout.start_timeout,
                retry=self.retry,
            )
            self._owns_fleet = True
        else:
            self._owns_fleet = False
        self._fleet: Optional[RemoteFleet] = fleet
        # Loss counter baseline: a borrowed fleet outlives schedulers, so this
        # scheduler only reports workers lost on *its* watch.
        self._fleet_lost_baseline = 0 if fleet is None else fleet.workers_lost
        self._lock = threading.Lock()
        self._heap: list[tuple[tuple, TaskHandle]] = []
        self._ids = itertools.count(1)
        self._channel = None
        self._executor: Optional[ProcessPoolExecutor] = None
        self._closed = False

    @property
    def pooled(self) -> bool:
        return self.max_workers > 1 or self._fleet is not None

    @property
    def fleet(self) -> Optional[RemoteFleet]:
        """The remote-fleet backend, or ``None`` when running locally."""
        return self._fleet

    def _slots(self) -> int:
        """Concurrent dispatch width: pool size, or the fleet's live capacity
        (optionally clamped by ``max_workers``), re-read each fill pass so a
        shrinking fleet stops receiving new leases."""
        if self._fleet is None:
            return self.max_workers
        capacity = self._fleet.capacity
        if self.max_workers > 0:
            capacity = min(capacity, self.max_workers)
        return capacity

    # ------------------------------------------------------------ submission
    def submit(
        self,
        fn: Callable,
        payload: Any = None,
        *,
        priority: int = 0,
        deadline: Optional[float] = None,
        on_event: Optional[Callable[[Any], None]] = None,
        on_start: Optional[Callable[[], None]] = None,
        on_retry: Optional[Callable[[TaskHandle], None]] = None,
        name: str = "",
    ) -> TaskHandle:
        """Queue ``fn(payload, ctx)`` for execution; returns its handle.

        *deadline* is an absolute ``time.time()`` instant.  *on_event*
        subscribes to the task's live event stream; *on_start* fires on the
        draining thread when the task is dispatched; *on_retry* fires on the
        draining thread when a pool-break incident requeues the task (so
        stream consumers can unwind the crashed attempt's buffered events).
        In pooled mode *fn* and *payload* must be picklable (*fn* by
        module-level reference).
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            handle = TaskHandle(
                self,
                next(self._ids),
                fn,
                payload,
                name=name,
                priority=priority,
                deadline=deadline,
                on_event=on_event,
                on_start=on_start,
                on_retry=on_retry,
            )
            heapq.heappush(self._heap, (handle._sort_key(), handle))
            self.stats.tasks_submitted += 1
        return handle

    # -------------------------------------------------------------- draining
    def drain(self, *, wait_deadline: Optional[float] = None) -> None:
        """Run every queued task to a settled state.

        *wait_deadline* (absolute ``time.time()``) bounds the drain itself:
        when it passes, still-running tasks get their cancel signal raised
        and are marked EXPIRED once abandoned, and still-pending tasks are
        marked EXPIRED without dispatch.

        A pool that *breaks* mid-drain (worker crash) is handled internally:
        the pool is rebuilt and the affected tasks are retried up to
        ``max_retries``, after which they settle FAILED with the pool-break
        error attached — no exception surfaces.  Raises
        :class:`ExecutorUnavailable` only when worker processes cannot be
        *started* at all; every unsettled task is returned to PENDING state
        first, so the caller can retry on a fresh scheduler or fall back to
        inline execution.

        With ``degrade=True`` an unavailable *fleet* does not surface at
        all: the scheduler steps down the degradation ladder (fleet ->
        local pool), notifies ``on_degrade`` and finishes the drain on the
        next rung.  Only when the bottom rung is also unavailable does
        :class:`ExecutorUnavailable` escape (clients own the final
        sequential/inline step — running their work functions in-process
        is a client decision, not a scheduler one).
        """
        while True:
            try:
                if self.pooled:
                    self._drain_pooled(wait_deadline)
                else:
                    self._drain_inline(wait_deadline)
                return
            except ExecutorUnavailable as error:
                if not self._degrade_step(error):
                    raise

    def _degrade_step(self, error: BaseException) -> bool:
        """Take one step down the ladder; True when the drain should retry.

        The scheduler's ladder has exactly one step — fleet -> local
        process pool.  The pool -> inline/sequential rung belongs to the
        clients: the service must not run worker-process entrypoints in
        its own process (they mutate process globals), and the parallel
        front-end's sequential fallback re-plans the whole wave rather
        than replaying pooled tasks one by one.
        """
        if not self.degrade or self._fleet is None:
            return False
        fleet = self._fleet
        reason = str(error) or type(error).__name__
        with self._lock:
            # Fold the fleet's loss counter now (close() won't see it).
            self.stats.workers_lost += fleet.workers_lost - self._fleet_lost_baseline
            self._fleet = None
            # The fleet's channel belongs to the fleet: drop the reference
            # without closing it, so _ensure_channel builds a QueueChannel.
            self._channel = None
            self.stats.degradations += 1
            if self.max_workers <= 1:
                self.max_workers = self.degrade_workers
        if self._owns_fleet:
            fleet.close()
            self._owns_fleet = False
        if self.on_degrade is not None:
            try:
                self.on_degrade("fleet", "pool" if self.pooled else "inline", reason)
            except Exception:  # noqa: BLE001 - observer isolation
                pass
        return True

    # ---------------------------------------------------------------- inline
    def _pop_dispatchable(
        self, wait_deadline: Optional[float], *, respect_backoff: bool = True
    ) -> Optional[TaskHandle]:
        """Pop the next PENDING task, settling cancelled/expired ones en route.

        Tasks still inside their retry-backoff window are skipped over (and
        pushed back) rather than dispatched; ``self._next_ready`` records
        the earliest such instant so the drain loop can sleep toward it
        instead of spinning.  Inline drains pass ``respect_backoff=False``
        (no pool to protect, and an inline drain must always terminate).
        """
        if self.age_after is not None:
            self._age_pending()
        deferred: list[TaskHandle] = []
        found: Optional[TaskHandle] = None
        with self._lock:
            while self._heap:
                _key, task = heapq.heappop(self._heap)
                if task.state is not TaskState.PENDING:
                    continue
                now = time.time()
                if task._cancel_requested:
                    task.state = TaskState.CANCELLED
                    self.stats.tasks_cancelled += 1
                    continue
                if task.deadline is not None and now >= task.deadline:
                    task.state = TaskState.EXPIRED
                    self.stats.tasks_expired += 1
                    continue
                if wait_deadline is not None and now >= wait_deadline:
                    task.state = TaskState.EXPIRED
                    self.stats.tasks_expired += 1
                    continue
                if respect_backoff and task._not_before > now:
                    deferred.append(task)
                    continue
                found = task
                break
            for task in deferred:
                heapq.heappush(self._heap, (task._sort_key(), task))
            self._next_ready = (
                min(task._not_before for task in deferred) if deferred else None
            )
        return found

    def _age_pending(self) -> None:
        """Boost the priority of tasks that have waited ≥ ``age_after``.

        One ``age_step`` boost per full ``age_after`` interval waited
        (tracked per task, so repeated sweeps never double-credit).  The
        sweep itself is throttled to half an interval, and the heap is
        rebuilt only when some priority actually moved — the common case
        (nothing aged) is one timestamp comparison.
        """
        now = time.time()
        if now - self._last_age_sweep < self.age_after / 2.0:
            return
        with self._lock:
            self._last_age_sweep = now
            moved = False
            for _key, task in self._heap:
                if task.state is not TaskState.PENDING:
                    continue
                earned = int((now - task._enqueued) / self.age_after)
                if earned > task._age_credits:
                    task.priority -= (earned - task._age_credits) * self.age_step
                    self.stats.tasks_aged += earned - task._age_credits
                    task._age_credits = earned
                    moved = True
            if moved:
                self._heap = [(task._sort_key(), task) for _key, task in self._heap]
                heapq.heapify(self._heap)

    def _drain_inline(self, wait_deadline: Optional[float]) -> None:
        channel = self._ensure_channel()
        while True:
            task = self._pop_dispatchable(wait_deadline, respect_backoff=False)
            if task is None:
                return
            port = channel.bind(task.task_id, task.on_event)
            with self._lock:
                task._port = port
                task.state = TaskState.RUNNING
                if task._cancel_requested:  # raced with cancel() during bind
                    port.cancel()
            if task.on_start is not None:
                task.on_start()
            try:
                value = task.fn(task.payload, port.context)
            except Exception as error:  # noqa: BLE001 - task isolation boundary
                self._settle(task, TaskState.FAILED, exception=error)
            else:
                self._settle(task, TaskState.DONE, value=value)

    # ---------------------------------------------------------------- pooled
    def _ensure_channel(self):
        if self._channel is None:
            if self._fleet is not None:
                self._channel = self._fleet.channel
            elif self.pooled:
                capacity = max(32, 4 * self.max_workers)
                try:
                    self._channel = QueueChannel(
                        _mp_context(), capacity, max_pending_events=self.max_pending_events
                    )
                except (OSError, ValueError) as error:  # pragma: no cover - env-specific
                    raise ExecutorUnavailable(str(error)) from error
            else:
                self._channel = DirectChannel()
        return self._channel

    def _ensure_executor(self):
        if self._fleet is not None:
            try:
                self._fleet.ensure_started()
            except FleetUnavailable as error:
                # Same contract as a pool that cannot start: the caller keeps
                # its degrade-to-inline fallback.
                raise ExecutorUnavailable(str(error)) from error
            return self._fleet
        if self._executor is None:
            channel = self._ensure_channel()
            try:
                self._executor = _make_executor(
                    self.max_workers,
                    initializer=install_worker_transport,
                    initargs=channel.initializer_args(),
                )
            except (OSError, ValueError) as error:
                raise ExecutorUnavailable(str(error)) from error
        return self._executor

    def _drain_pooled(self, wait_deadline: Optional[float]) -> None:
        inflight: dict[Any, TaskHandle] = {}
        while True:
            channel = self._ensure_channel()
            try:
                executor = self._ensure_executor()
                self._drain_pooled_loop(channel, executor, inflight, wait_deadline)
                return
            except BrokenProcessPool as error:
                # A worker process died and took the pool with it.  Rebuild
                # the pool (and its channel — a worker killed mid-put can
                # leave the shared queue corrupted) and retry just the tasks
                # that were in flight; the rest of the queue is untouched.
                victims = list(inflight.values())
                inflight.clear()
                self._rebuild_after_break()
                for task in victims:
                    self._abandon_port(task)
                    task.retries += 1
                    if task.retries > self.max_retries or not self._retry_budget_left():
                        self._settle(task, TaskState.FAILED, exception=error)
                    else:
                        self._charge_retry(task)
                        if task.on_retry is not None:
                            try:
                                task.on_retry(task)
                            except Exception:  # noqa: BLE001 - observer isolation
                                pass
            except ExecutorUnavailable:
                # The pool cannot be (re)started at all: hand every unsettled
                # task back as PENDING so the client can fall back inline.
                for task in inflight.values():
                    self._requeue(task)
                raise

    def _retry_budget_left(self) -> bool:
        """Whether the scheduler-wide retry budget still allows a requeue."""
        budget = self.retry.retry_budget
        return budget is None or self.stats.task_retries < budget

    def _charge_retry(self, task: TaskHandle) -> None:
        """Charge one crash retry and requeue with its backoff window set."""
        self.stats.task_retries += 1
        task._not_before = time.time() + self.retry.backoff_delay(
            task.retries, self._retry_rng
        )
        self._requeue(task)

    def _retry_lost(self, task: TaskHandle, error: BaseException) -> None:
        """Re-lease one task whose remote worker vanished (fleet backend).

        Mirrors the pool-break victim handling — abandon the stale channel
        binding, charge a crash retry, requeue with priority and deadline
        preserved — but per task: losing one worker must not tear down the
        surviving fleet the way a broken pool tears down the pool.

        A task that keeps killing its workers is poison, not unlucky: past
        ``retry.quarantine_after`` lost workers (or once the scheduler-wide
        retry budget is spent) it settles QUARANTINED instead of being
        handed yet another worker to take down.
        """
        self._abandon_port(task)
        task.retries += 1
        task.worker_losses += 1
        if task.worker_losses > self.retry.quarantine_after or not self._retry_budget_left():
            self._settle(task, TaskState.QUARANTINED, exception=error)
            return
        self._charge_retry(task)
        if task.on_retry is not None:
            try:
                task.on_retry(task)
            except Exception:  # noqa: BLE001 - observer isolation
                pass

    def _rebuild_after_break(self) -> None:
        self.stats.pool_rebuilds += 1
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        if self._channel is not None:
            self._fold_channel_stats(self._channel)
            self._channel.close()
            self._channel = None

    def _abandon_port(self, task: TaskHandle) -> None:
        """Detach a task from its (dead) channel binding without settling it."""
        with self._lock:
            port = task._port
            task._port = None
            task._future = None
        if port is not None:
            port.release(recycle=False)

    def _fold_channel_stats(self, channel) -> None:
        stats: Optional[ChannelStats] = getattr(channel, "stats", None)
        if stats is not None:
            self.stats.events_high_water = max(
                self.stats.events_high_water, stats.high_water_mark
            )
            self.stats.events_dropped += stats.dropped_events

    def _drain_pooled_loop(
        self, channel, executor, inflight: dict, wait_deadline: Optional[float]
    ) -> None:
        while True:
            # Fill free slots in (priority, deadline, submission) order.
            while len(inflight) < self._slots():
                task = self._pop_dispatchable(wait_deadline)
                if task is None:
                    break
                port = channel.bind(task.task_id, task.on_event)
                try:
                    if self._fleet is not None:
                        future = self._fleet.submit(
                            task.task_id,
                            port.streaming,
                            task.fn,
                            task.payload,
                            name=task.name,
                            deadline=task.deadline,
                        )
                    else:
                        future = executor.submit(
                            _pooled_entry,
                            task.task_id,
                            port.slot,
                            port.streaming,
                            task.fn,
                            task.payload,
                        )
                except BrokenProcessPool:
                    # Pool died between drains: requeue without a retry charge
                    # (this task never ran) and let the crash handler rebuild.
                    port.release(recycle=False)
                    self._requeue(task)
                    raise
                except (OSError, RuntimeError) as error:
                    # FleetUnavailable lands here too: a fleet with zero live
                    # workers is the remote analogue of an unstartable pool.
                    port.release(recycle=False)
                    self._requeue(task)
                    raise ExecutorUnavailable(str(error)) from error
                with self._lock:
                    task._port = port
                    task._future = future
                    task.state = TaskState.RUNNING
                    if task._cancel_requested:  # raced with cancel()
                        port.cancel()
                if task.on_start is not None:
                    task.on_start()
                inflight[future] = task
            if not inflight:
                with self._lock:
                    if not self._heap:
                        return
                    next_ready = self._next_ready
                if next_ready is not None:
                    # Everything pending is inside its backoff window: sleep
                    # toward the earliest re-dispatch instead of spinning.
                    time.sleep(min(0.25, max(0.01, next_ready - time.time())))
                    continue
                if self._fleet is not None and self._fleet.capacity == 0:
                    # Work is queued but every worker is gone: wait for a
                    # (re)connection rather than spinning; give up loudly on
                    # the same timeout registration uses.
                    if not self._fleet.wait_for_capacity(self._fleet.start_timeout):
                        raise ExecutorUnavailable(
                            "fleet lost every worker with tasks still queued"
                        )
                continue  # heap still holds tasks (all popped ones settled)

            now = time.time()
            timeout = self._wait_timeout(inflight.values(), wait_deadline, now)
            done, _pending = futures_wait(
                set(inflight), timeout=timeout, return_when=FIRST_COMPLETED
            )
            for future in done:
                task = inflight.pop(future)
                if self._fleet is not None and not future.cancelled():
                    error = future.exception(timeout=0)
                    if isinstance(error, WorkerLost):
                        # The remote analogue of a pool break, scoped to one
                        # worker's leases: charge a retry and re-lease, no
                        # teardown (the fleet already dropped the dead link).
                        self._retry_lost(task, error)
                        continue
                try:
                    self._settle_pooled(task, future)
                except BrokenProcessPool:
                    # Put the task back among the crash victims so the break
                    # handler charges and requeues it with the others.
                    inflight[future] = task
                    raise
            self._enforce_deadlines(inflight, wait_deadline)

    @staticmethod
    def _cutoff(task: TaskHandle, wait_deadline: Optional[float]) -> Optional[float]:
        """The instant a running task overruns: its deadline or the drain's."""
        cutoff = task.deadline
        if wait_deadline is not None:
            cutoff = wait_deadline if cutoff is None else min(cutoff, wait_deadline)
        return cutoff

    def _wait_timeout(
        self, tasks, wait_deadline: Optional[float], now: float
    ) -> Optional[float]:
        """How long to block in ``wait()``: until the next deadline of interest.

        For a task not yet nudged that is cutoff + nudge delay (so the
        cooperative nudge fires on time); for an already-nudged task it is
        the further grace before abandoning it.
        """
        horizon: Optional[float] = None
        for task in tasks:
            cutoff = self._cutoff(task, wait_deadline)
            if cutoff is None:
                continue
            cutoff += self.timeout.nudge_delay
            if task._nudged:
                cutoff += self.deadline_grace
            horizon = cutoff if horizon is None else min(horizon, cutoff)
        if horizon is None:
            return None
        return max(0.05, horizon - now)

    def _enforce_deadlines(
        self, inflight: dict, wait_deadline: Optional[float]
    ) -> None:
        """Nudge and, past the grace, abandon running tasks that overran."""
        now = time.time()
        for future, task in list(inflight.items()):
            cutoff = self._cutoff(task, wait_deadline)
            if cutoff is None or now < cutoff + self.timeout.nudge_delay:
                continue
            if not task._nudged:
                task._nudged = True
                if task._port is not None:
                    task._port.cancel()  # cooperative nudge across the process boundary
            if now >= cutoff + self.timeout.nudge_delay + self.deadline_grace:
                future.cancel()
                if future.done() and not future.cancelled():
                    # It finished while we decided: keep the real outcome.
                    del inflight[future]
                    try:
                        self._settle_pooled(task, future)
                    except BrokenProcessPool:
                        # Same hazard as the drain loop's settle: leave the
                        # task among the crash victims, never stuck RUNNING.
                        inflight[future] = task
                        raise
                    continue
                del inflight[future]
                port = task._port
                with self._lock:
                    task._port = None
                    task.state = TaskState.EXPIRED
                    task.error = "deadline expired"
                    self.stats.tasks_expired += 1
                if port is not None:
                    port.release(recycle=False)

    def _settle_pooled(self, task: TaskHandle, future) -> None:
        try:
            value = future.result(timeout=0)
        except FuturesCancelledError:
            self._settle(task, TaskState.CANCELLED)
        except TIMEOUT_ERRORS:  # pragma: no cover - future reported done
            self._settle(task, TaskState.EXPIRED)
        except BrokenProcessPool:
            raise  # crash-recovery is the drain loop's job, not a task failure
        except Exception as error:  # noqa: BLE001 - task isolation boundary
            self._settle(task, TaskState.FAILED, exception=error)
        else:
            self._settle(task, TaskState.DONE, value=value)

    # ------------------------------------------------------------- settling
    def _settle(
        self,
        task: TaskHandle,
        state: TaskState,
        *,
        value: Any = None,
        exception: Optional[BaseException] = None,
    ) -> None:
        port = task._port
        if port is not None and state in (TaskState.DONE, TaskState.FAILED):
            # The work function ran to an outcome: deliver the tail of its
            # event stream before the task reads as settled — a DONE handle
            # must never have events still in flight.  (A task cancelled
            # before it started never opened a stream.)
            port.wait_drained(timeout=self.deadline_grace)
        with self._lock:
            task._port = None
            task._future = None
            task.state = state
            task.result = value
            if exception is not None:
                task.exception = exception
                task.error = f"{type(exception).__name__}: {exception}"
            if state is TaskState.DONE:
                self.stats.tasks_done += 1
            elif state is TaskState.FAILED:
                self.stats.tasks_failed += 1
            elif state is TaskState.CANCELLED:
                self.stats.tasks_cancelled += 1
            elif state is TaskState.EXPIRED:
                self.stats.tasks_expired += 1
            elif state is TaskState.QUARANTINED:
                self.stats.tasks_quarantined += 1
        if port is not None:
            # Release only after ``task._port`` is cleared under the lock: a
            # concurrent cancel() must never reach a recycled slot that now
            # belongs to an unrelated task.
            port.release()

    def _requeue(self, task: TaskHandle) -> None:
        """Return an unsettled task to PENDING (executor-failure unwind)."""
        with self._lock:
            port = task._port
            task._port = None
            task._future = None
            task.state = TaskState.PENDING
            heapq.heappush(self._heap, (task._sort_key(), task))
        if port is not None:
            port.release(recycle=False)

    # ------------------------------------------------------------- lifecycle
    def channel_stats(self) -> Optional[ChannelStats]:
        """Load counters of the live channel (``None`` before first dispatch).

        After :meth:`close`, the final counters are folded into
        :attr:`stats` (``events_high_water`` / ``events_dropped``).
        """
        channel = self._channel
        return None if channel is None else getattr(channel, "stats", None)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        if self._channel is not None:
            self._fold_channel_stats(self._channel)
            if self._fleet is None:
                # A fleet's channel belongs to the fleet (it may outlive this
                # scheduler when borrowed); everything else is ours to close.
                self._channel.close()
            self._channel = None
        if self._fleet is not None:
            self.stats.workers_lost += self._fleet.workers_lost - self._fleet_lost_baseline
            if self._owns_fleet:
                self._fleet.close()

    def __enter__(self) -> "WorkScheduler":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
