"""Deterministic, seedable fault injection for the execution stack.

A :class:`FaultPlan` is a script: an ordered list of :class:`FaultSpec`
entries, each naming a *site* (an instrumented seam in the exec stack),
a *kind* of fault, an optional header *match*, and firing arithmetic
(``after`` = how many matching passes to let through first, ``count`` =
how many times to fire, 0 = unlimited).  A :class:`FaultInjector` built
from a plan is consulted by cheap hooks inside ``wire.py``,
``worker.py`` and ``channel.py``; when no plan is active the hooks are a
single ``is None`` check.

Sites and kinds:

====================  =====================================================
site                  kinds understood
====================  =====================================================
``wire.send``         ``drop`` (close socket, raise), ``truncate`` (send a
                      prefix then close), ``corrupt`` (XOR a byte before
                      sending), ``delay`` (sleep then send normally)
``wire.recv``         ``drop``, ``delay``
``worker.heartbeat``  ``delay`` (late beat), ``stall`` (sleep ``seconds``
                      — a SIGSTOP-style silent worker), ``drop`` (skip
                      this beat entirely)
``worker.task``       ``slow`` (sleep before running), ``hang`` (sleep
                      ``seconds`` mid-task), ``drop`` (raise RuntimeError
                      from the task body)
====================  =====================================================

Plans serialise to JSON so a chaos run is reproducible from its seed and
plan alone, and subprocess workers can activate the same plan via the
``REPRO_FAULT_PLAN`` environment variable (see ``repro.worker.main``).

Deliberately stdlib-only with no ``repro`` imports: the instrumented
modules import *this* module, never the reverse.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import random
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "activate",
    "deactivate",
    "install",
    "active",
]

#: Environment variable carrying a JSON fault plan into worker processes.
PLAN_ENV = "REPRO_FAULT_PLAN"

_KINDS = frozenset({"drop", "truncate", "corrupt", "delay", "stall", "slow", "hang"})
_SITES = frozenset({"wire.send", "wire.recv", "worker.heartbeat", "worker.task"})


class InjectedFault(OSError):
    """Raised by the injector where a real network fault would surface.

    Subclasses ``OSError`` so every existing ``except OSError`` recovery
    path (frame readers, heartbeat loops, fleet link handling) treats an
    injected fault exactly like a genuine socket failure.
    """


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One scripted fault: where, what, when, and how often."""

    site: str
    kind: str
    #: Subset-match against the site context (e.g. {"type": "result"}).
    match: Optional[Dict[str, Any]] = None
    #: Matching passes to let through before the first firing.
    after: int = 0
    #: Number of firings (0 = unlimited).
    count: int = 1
    #: Sleep length for delay/stall/slow/hang kinds.
    seconds: float = 0.0
    #: Bytes to keep for ``truncate`` (default: half the frame).
    cut: Optional[int] = None
    #: Byte offset for ``corrupt`` (default 8: first JSON header byte).
    offset: int = 8
    #: XOR mask for ``corrupt``.
    mask: int = 0x80

    def __post_init__(self) -> None:
        if self.site not in _SITES:
            raise ValueError(f"unknown fault site: {self.site!r}")
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind: {self.kind!r}")

    def matches(self, context: Optional[Dict[str, Any]]) -> bool:
        if not self.match:
            return True
        if not context:
            return False
        for key, want in self.match.items():
            if context.get(key) != want:
                return False
        return True

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"site": self.site, "kind": self.kind}
        if self.match:
            out["match"] = dict(self.match)
        if self.after:
            out["after"] = self.after
        if self.count != 1:
            out["count"] = self.count
        if self.seconds:
            out["seconds"] = self.seconds
        if self.cut is not None:
            out["cut"] = self.cut
        if self.offset != 8:
            out["offset"] = self.offset
        if self.mask != 0x80:
            out["mask"] = self.mask
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSpec":
        return cls(
            site=data["site"],
            kind=data["kind"],
            match=dict(data["match"]) if data.get("match") else None,
            after=int(data.get("after", 0)),
            count=int(data.get("count", 1)),
            seconds=float(data.get("seconds", 0.0)),
            cut=None if data.get("cut") is None else int(data["cut"]),
            offset=int(data.get("offset", 8)),
            mask=int(data.get("mask", 0x80)),
        )


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A seeded, ordered script of faults — the unit of reproducibility."""

    seed: int = 0
    faults: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed, "faults": [f.to_dict() for f in self.faults]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        return cls(
            seed=int(data.get("seed", 0)),
            faults=tuple(FaultSpec.from_dict(f) for f in data.get("faults", ())),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))


class FaultInjector:
    """Executes a :class:`FaultPlan` at the instrumented seams.

    Thread-safe: the firing counters are guarded by a lock, so faults
    fire deterministically by *matching pass order* even when multiple
    worker threads hit the same site.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._seen: List[int] = [0 for _ in plan.faults]
        self._fired: List[int] = [0 for _ in plan.faults]
        self._rng = random.Random(plan.seed)
        self.faults_injected = 0
        #: Audit trail of every firing: (site, kind, context-or-None).
        self.fired: List[Tuple[str, str, Optional[Dict[str, Any]]]] = []

    def _arm(self, site: str, context: Optional[Dict[str, Any]]) -> Optional[FaultSpec]:
        """Return the spec that fires for this pass, advancing counters."""
        with self._lock:
            for index, spec in enumerate(self.plan.faults):
                if spec.site != site or not spec.matches(context):
                    continue
                seen = self._seen[index]
                self._seen[index] = seen + 1
                if seen < spec.after:
                    continue
                if spec.count and self._fired[index] >= spec.count:
                    continue
                self._fired[index] += 1
                self.faults_injected += 1
                self.fired.append((site, spec.kind, dict(context) if context else None))
                return spec
        return None

    # -- wire seams -----------------------------------------------------

    def before_send(self, sock: Any, header: Dict[str, Any], data: bytes) -> bytes:
        """Called with the fully framed bytes about to be sent.

        Returns the (possibly corrupted) bytes to send, or raises after
        dropping/truncating the connection.
        """
        spec = self._arm("wire.send", header)
        if spec is None:
            return data
        if spec.kind == "delay":
            time.sleep(spec.seconds)
            return data
        if spec.kind == "corrupt":
            offset = min(spec.offset, len(data) - 1)
            if offset >= 0:
                data = data[:offset] + bytes([data[offset] ^ spec.mask]) + data[offset + 1 :]
            return data
        if spec.kind == "truncate":
            cut = spec.cut if spec.cut is not None else len(data) // 2
            with contextlib.suppress(OSError):
                sock.sendall(data[:cut])
            with contextlib.suppress(OSError):
                sock.close()
            raise InjectedFault(f"injected truncation at {cut}/{len(data)} bytes")
        # drop
        with contextlib.suppress(OSError):
            sock.close()
        raise InjectedFault("injected connection drop on send")

    def before_recv(self, sock: Any, context: Optional[Dict[str, Any]] = None) -> None:
        spec = self._arm("wire.recv", context)
        if spec is None:
            return
        if spec.kind == "delay":
            time.sleep(spec.seconds)
            return
        with contextlib.suppress(OSError):
            sock.close()
        raise InjectedFault("injected connection drop on recv")

    # -- worker seams ---------------------------------------------------

    def before_heartbeat(self, worker_id: str) -> bool:
        """Return False to skip this beat entirely."""
        spec = self._arm("worker.heartbeat", {"worker": worker_id})
        if spec is None:
            return True
        if spec.kind in ("delay", "stall"):
            time.sleep(spec.seconds)
            return True
        return False  # drop

    def before_task(self, context: Dict[str, Any]) -> None:
        spec = self._arm("worker.task", context)
        if spec is None:
            return
        if spec.kind in ("slow", "hang", "delay", "stall"):
            time.sleep(spec.seconds)
            return
        raise RuntimeError(f"injected task fault for {context.get('task')!r}")


# -- module-level activation -------------------------------------------

_active: Optional[FaultInjector] = None
_active_lock = threading.Lock()


def active() -> Optional[FaultInjector]:
    """The injector currently instrumenting this process, if any."""
    return _active


def deactivate() -> None:
    global _active
    with _active_lock:
        _active = None


def install(plan: FaultPlan) -> FaultInjector:
    """Activate ``plan`` process-wide without a scope (worker processes)."""
    global _active
    injector = FaultInjector(plan)
    with _active_lock:
        _active = injector
    return injector


@contextlib.contextmanager
def activate(plan: FaultPlan) -> Iterator[FaultInjector]:
    """Instrument this process with ``plan`` for the duration of the block."""
    global _active
    injector = FaultInjector(plan)
    with _active_lock:
        previous = _active
        _active = injector
    try:
        yield injector
    finally:
        with _active_lock:
            _active = previous
