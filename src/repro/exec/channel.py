"""Transport-agnostic event channels for the unified execution layer.

A channel carries two signals between the scheduler (parent side) and a
scheduled work function (worker side), independently of where the worker
runs:

* **events out** — the work function calls :meth:`WorkContext.emit` with
  typed session events; the parent delivers each event to the per-task
  subscriber callback, in emission order;
* **cancel in** — the parent calls :meth:`TaskPort.cancel`; the work
  function observes it through :attr:`WorkContext.cancel_event`, an object
  with the ``threading.Event`` read/write surface (``is_set()`` / ``set()``)
  that the session machinery already polls inside completion loops and
  bounded testing.

Two transports implement the contract:

* :class:`DirectChannel` — in-process: ``emit`` invokes the subscriber
  synchronously on the calling thread and cancellation is a plain
  ``threading.Event``.  This is the zero-overhead transport for inline
  execution (and the reference for cross-transport equivalence tests).
* :class:`QueueChannel` — cross-process: events travel through one shared
  ``multiprocessing.Queue`` drained by a parent-side router thread, and
  cancellation is a slot in a shared flag array that worker-side
  :class:`FlagSignal` objects poll (a single shared-memory byte read, cheap
  enough for per-candidate polling).  Queue and flags must be created
  *before* the worker processes start and installed in each worker via the
  pool initializer (:func:`install_worker_transport`) — multiprocessing
  primitives can only be shared by inheritance, not sent through task
  pickles.

Backpressure: the shared queue is **bounded** (``max_pending_events``), so a
slow ``on_event`` consumer can no longer buffer events unboundedly in the
parent.  Producers follow a block-with-timeout policy — ``emit`` blocks up
to ``put_timeout`` seconds for a free queue slot and then *drops* the event
(the drop is counted).  Delivery is therefore exactly-once while the
consumer keeps up and at-most-once under sustained backpressure.  Two
kinds of payload are exempt from the standard drop policy (they block with
a generously extended timeout — 4x ``put_timeout``, at least 10 s — because
downstream bookkeeping depends on them): the transport's end-of-stream
marker, and any event whose *class* sets ``channel_critical = True``, which
the parallel driver's per-attempt end markers use so the ordered merge does
not stall behind an early-shed marker.  If even the extended wait expires
(consumer wedged for tens of seconds) the marker is abandoned and recovery
falls to the parent's own timeouts: task settling has a bounded drain wait,
and the wave-end flush delivers what the merge still buffers.
:attr:`QueueChannel.stats` reports the observed ``high_water_mark`` of
pending events and the number of ``dropped_events`` (maintained lock-free
in shared memory by the producers, so both are best-effort
approximations).

Delivery semantics shared by both transports: per-task event order is
preserved; a task's port reports :meth:`TaskPort.wait_drained` true only
after every event the worker emitted (terminated by an end-of-stream marker
in the queue transport) has been handed to the subscriber, so a settled task
never has events still in flight.  Subscriber callbacks run on the emitting
thread under :class:`DirectChannel` and on the router thread under
:class:`QueueChannel`; callbacks that raise are isolated per event (the
error is recorded on the port, the router keeps running).
"""

from __future__ import annotations

import ctypes
import threading
from collections import deque
from dataclasses import dataclass
from queue import Full
from typing import Any, Callable, Dict, Hashable, Optional

from repro.exec import faults

#: Default bound on events pending in a queue transport (see QueueChannel).
DEFAULT_MAX_PENDING_EVENTS = 1024

#: Default seconds a producer blocks for a free queue slot before dropping.
DEFAULT_PUT_TIMEOUT = 5.0

#: Slots of the shared producer-side counter array.
_STAT_HIGH_WATER = 0
_STAT_DROPPED = 1


@dataclass(frozen=True)
class ChannelStats:
    """Observed load of one event channel (best-effort, see module docs)."""

    #: Highest number of events seen pending in the transport at once.
    high_water_mark: int = 0
    #: Events load-shed by producers after ``put_timeout`` expired.
    dropped_events: int = 0
    #: The configured queue bound (0 = unbounded / not applicable).
    max_pending_events: int = 0


class _EOS:
    """Queue payload marking the end of one task's event stream.

    The *class object itself* is the sentinel: classes pickle by reference,
    so identity (``event is _EOS``) survives the worker→parent queue hop —
    and unlike ``None`` it can never collide with a legitimate event payload.
    """


class FlagSignal:
    """A ``threading.Event``-shaped view of one slot in a shared flag array.

    Both sides may ``set()`` it: the parent to request cancellation, the
    worker when the session itself decides to cancel.  A negative slot is
    the "no cancellation channel" degenerate case (``is_set`` stays false).
    """

    __slots__ = ("_flags", "_slot")

    def __init__(self, flags, slot: int):
        self._flags = flags
        self._slot = slot

    def is_set(self) -> bool:
        return self._slot >= 0 and bool(self._flags[self._slot])

    def set(self) -> None:
        if self._slot >= 0:
            self._flags[self._slot] = True


class WorkContext:
    """What a scheduled work function receives alongside its payload.

    ``emit`` forwards one typed event to the parent-side subscriber (a no-op
    when the task has no subscriber — ``streaming`` says which, so workers
    can skip building events entirely when nobody listens).  ``cancel_event``
    is the cooperative cancellation signal to poll / pass into session
    machinery.
    """

    __slots__ = ("emit", "cancel_event", "streaming")

    def __init__(
        self,
        emit: Callable[[Any], None],
        cancel_event,
        streaming: bool,
    ):
        self.emit = emit
        self.cancel_event = cancel_event
        self.streaming = streaming


class TaskPort:
    """Parent-side per-task endpoint of a channel binding."""

    def __init__(
        self,
        channel,
        task_id: int,
        slot: int,
        streaming: bool,
        context: Optional[WorkContext],
        cancel_signal,
    ):
        self._channel = channel
        self.task_id = task_id
        self.slot = slot
        self.streaming = streaming
        #: The worker-side context, for transports where parent and worker
        #: share an address space (``None`` for cross-process transports,
        #: where the worker rebuilds it from the installed globals).
        self.context = context
        self._cancel_signal = cancel_signal
        #: Last exception raised by the subscriber callback, if any.
        self.subscriber_error: Optional[BaseException] = None

    def cancel(self) -> None:
        """Raise the cooperative cancel signal for this task."""
        self._cancel_signal.set()

    def wait_drained(self, timeout: Optional[float] = None) -> bool:
        """Block until every emitted event has been delivered (or timeout)."""
        return self._channel._wait_drained(self, timeout)

    def release(self, *, recycle: bool = True) -> None:
        """Unsubscribe the task; *recycle* returns its cancel slot to the pool.

        Pass ``recycle=False`` for abandoned tasks whose worker may still be
        polling the slot — the slot is leaked for the channel's lifetime
        instead of being handed to an unrelated task.
        """
        self._channel._release(self, recycle)


# ------------------------------------------------------------------ direct
class DirectChannel:
    """In-process transport: synchronous callbacks, ``threading.Event`` cancel."""

    transport = "direct"

    def bind(self, task_id: int, on_event: Optional[Callable[[Any], None]]) -> TaskPort:
        cancel_signal = threading.Event()
        port = TaskPort(self, task_id, -1, on_event is not None, None, cancel_signal)

        if on_event is None:
            emit: Callable[[Any], None] = lambda _event: None
        else:

            def emit(event: Any) -> None:
                # Same isolation contract as the queue transport's router: a
                # raising subscriber is recorded, not propagated into the
                # work function — the two transports must not diverge in
                # whether a buggy callback fails the task.
                try:
                    on_event(event)
                except Exception as error:  # noqa: BLE001 - isolation boundary
                    port.subscriber_error = error

        port.context = WorkContext(emit, cancel_signal, on_event is not None)
        return port

    def _wait_drained(self, port: TaskPort, timeout: Optional[float]) -> bool:
        return True  # synchronous delivery: nothing can be in flight

    def _release(self, port: TaskPort, recycle: bool) -> None:
        pass

    def close(self) -> None:
        pass

    @property
    def stats(self) -> ChannelStats:
        """Synchronous delivery: nothing is ever pending, nothing drops."""
        return ChannelStats()


# ------------------------------------------------------------------- queue
class QueueChannel:
    """Cross-process transport over one shared queue plus a cancel-flag array.

    The parent constructs the channel, hands ``(queue, flags)`` to the worker
    pool's initializer, and binds one :class:`TaskPort` per dispatched task.
    A daemon router thread drains the queue and fans events out to the bound
    subscribers; the worker wrapper sends one end-of-stream marker per task
    so :meth:`TaskPort.wait_drained` can guarantee complete delivery before
    the task settles.
    """

    transport = "queue"

    def __init__(
        self,
        mp_context,
        capacity: int = 64,
        *,
        max_pending_events: int = DEFAULT_MAX_PENDING_EVENTS,
        put_timeout: float = DEFAULT_PUT_TIMEOUT,
    ):
        self.max_pending_events = max_pending_events
        self.put_timeout = put_timeout
        self.queue = mp_context.Queue(max_pending_events)
        self.flags = mp_context.RawArray(ctypes.c_bool, capacity)
        #: Producer-maintained counters (high-water mark, dropped events).
        #: RawArray on purpose: a lock would serialize every emit across all
        #: workers for counters that only need to be approximately right.
        self.counters = mp_context.RawArray(ctypes.c_long, 2)
        self._capacity = capacity
        self._free_slots = list(range(capacity - 1, -1, -1))
        self._lock = threading.Lock()
        #: task_id -> (subscriber, drained threading.Event, port)
        self._subscribers: dict[int, tuple[Callable[[Any], None], threading.Event, TaskPort]] = {}
        self._router: Optional[threading.Thread] = None
        self._closed = False

    # ------------------------------------------------------------ parent side
    def bind(self, task_id: int, on_event: Optional[Callable[[Any], None]]) -> TaskPort:
        with self._lock:
            if self._closed:
                raise RuntimeError("channel is closed")
            slot = self._free_slots.pop() if self._free_slots else -1
            if slot >= 0:
                self.flags[slot] = False
            port = TaskPort(
                self, task_id, slot, on_event is not None, None, FlagSignal(self.flags, slot)
            )
            if on_event is not None:
                self._subscribers[task_id] = (on_event, threading.Event(), port)
                self._ensure_router()
        return port

    def _ensure_router(self) -> None:
        if self._router is None or not self._router.is_alive():
            self._router = threading.Thread(
                target=self._route, name="repro-exec-event-router", daemon=True
            )
            self._router.start()

    def _route(self) -> None:
        while True:
            try:
                item = self.queue.get()
            except (EOFError, OSError):  # pragma: no cover - queue torn down
                return
            if item is None:  # close() sentinel
                return
            task_id, event = item
            with self._lock:
                entry = self._subscribers.get(task_id)
            if entry is None:
                continue  # late event of a released task
            subscriber, drained, port = entry
            if event is _EOS:
                drained.set()
                continue
            try:
                subscriber(event)
            except Exception as error:  # noqa: BLE001 - keep the router alive
                port.subscriber_error = error

    def _wait_drained(self, port: TaskPort, timeout: Optional[float]) -> bool:
        with self._lock:
            entry = self._subscribers.get(port.task_id)
        if entry is None:
            return True  # nothing subscribed: nothing to wait for
        return entry[1].wait(timeout)

    def _release(self, port: TaskPort, recycle: bool) -> None:
        with self._lock:
            self._subscribers.pop(port.task_id, None)
            if recycle and port.slot >= 0:
                self.flags[port.slot] = False
                self._free_slots.append(port.slot)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            router = self._router
        if router is not None and router.is_alive():
            try:
                # Bounded queue: never block shutdown behind backpressure.
                self.queue.put(None, timeout=1.0)
            except (Full, ValueError, OSError):
                # The sentinel could not be enqueued (queue full behind a
                # wedged consumer): abandon the daemon router immediately —
                # joining it would just burn the full timeout, and closing
                # the queue unblocks its get() with an error it swallows.
                router = None
            if router is not None:
                router.join(timeout=5.0)
        self.queue.close()

    @property
    def stats(self) -> ChannelStats:
        return ChannelStats(
            high_water_mark=int(self.counters[_STAT_HIGH_WATER]),
            dropped_events=int(self.counters[_STAT_DROPPED]),
            max_pending_events=self.max_pending_events,
        )

    def initializer_args(self) -> tuple:
        """The transport ends for the worker-pool initializer."""
        return (self.queue, self.flags, self.counters, self.put_timeout)


# ------------------------------------------------------------- worker side
#: Installed once per worker process by the pool initializer.
_worker_queue = None
_worker_flags = None
_worker_counters = None
_worker_put_timeout = DEFAULT_PUT_TIMEOUT


def install_worker_transport(
    queue, flags, counters=None, put_timeout: float = DEFAULT_PUT_TIMEOUT
) -> None:
    """Pool-initializer entry point: install the process-wide transport ends."""
    global _worker_queue, _worker_flags, _worker_counters, _worker_put_timeout
    _worker_queue = queue
    _worker_flags = flags
    _worker_counters = counters
    _worker_put_timeout = put_timeout


def _note_pending_high_water(queue, counters) -> None:
    if counters is None:
        return
    try:
        pending = queue.qsize()
    except NotImplementedError:  # pragma: no cover - macOS has no qsize
        return
    if pending > counters[_STAT_HIGH_WATER]:
        counters[_STAT_HIGH_WATER] = pending


def _sink_emit(_event: Any) -> None:
    """The no-subscriber emit: workers skip event construction entirely."""


def build_work_context(emit, cancel_signal, streaming: bool) -> WorkContext:
    """Assemble a worker-side :class:`WorkContext` from transport pieces.

    The one place the unobserved case is normalized (no subscriber → sink
    emit, ``streaming`` forced false) and the cancel signal is wired in —
    shared by the queue transport's pool-initializer path
    (:func:`worker_context`) and the remote worker loop (:mod:`repro.worker`),
    which used to duplicate this assembly around their cancel-flag polling.
    """
    if not streaming or emit is None:
        return WorkContext(_sink_emit, cancel_signal, False)
    return WorkContext(emit, cancel_signal, True)


def run_streamed_task(
    fn: Callable,
    payload: Any,
    ctx: WorkContext,
    end_stream: Callable[[], None],
    *,
    context: Optional[Dict[str, Any]] = None,
):
    """Run one work function, guaranteeing its end-of-stream marker.

    Every transport's worker entry wraps the work function the same way:
    run it, and — success or raise — close the event stream of a streaming
    task so the parent's drain wait can complete.  *end_stream* is the
    transport's marker sender (queue: :func:`close_worker_stream`; socket:
    a ``task_end`` frame).

    Being the one seam every transport's worker entry passes through —
    inline, pool, and remote — this is also where ``worker.task`` faults
    fire when a :mod:`repro.exec.faults` plan is active.  *context*
    carries whatever the transport knows about the task (id, name) for
    the plan's match clauses.
    """
    try:
        injector = faults.active()
        if injector is not None:
            # Inside the try so an injected task failure still closes the
            # stream — the parent's drain wait must never hang on a fault.
            injector.before_task(context or {})
        return fn(payload, ctx)
    finally:
        if ctx.streaming:
            end_stream()


def worker_context(task_id: int, slot: int, streaming: bool) -> WorkContext:
    """Rebuild a task's :class:`WorkContext` inside a worker process."""
    queue = _worker_queue
    flags = _worker_flags
    counters = _worker_counters
    timeout = _worker_put_timeout
    cancel = FlagSignal(flags, slot) if flags is not None else threading.Event()
    emit: Optional[Callable[[Any], None]] = None
    if streaming and queue is not None:

        def emit(event: Any, _queue=queue, _task_id=task_id) -> None:
            # Block-with-timeout producer policy: wait for a free slot in the
            # bounded queue, then shed the event rather than wedge the worker
            # behind a consumer that stopped reading.  Events whose class
            # opts in with ``channel_critical = True`` get the same extended
            # patience as the end-of-stream marker and are never counted as
            # droppable load.
            critical = getattr(type(event), "channel_critical", False)
            try:
                _queue.put(
                    (_task_id, event),
                    timeout=max(10.0, 4 * timeout) if critical else timeout,
                )
            except Full:
                if not critical and counters is not None:
                    counters[_STAT_DROPPED] += 1
                return
            _note_pending_high_water(_queue, counters)

    return build_work_context(emit, cancel, streaming)


def close_worker_stream(task_id: int) -> None:
    """Send the end-of-stream marker for one task (worker side).

    The marker is never load-shed — task settling waits for it — but the
    wait is still bounded: if the queue stays full past a generous multiple
    of the emit timeout, the worker gives up and lets the parent's own
    drain timeout settle the task.
    """
    queue = _worker_queue
    if queue is not None:
        try:
            queue.put((task_id, _EOS), timeout=max(10.0, 4 * _worker_put_timeout))
        except Full:  # pragma: no cover - consumer wedged for tens of seconds
            pass


# -------------------------------------------------------------- ordered merge
class OrderedEventMerger:
    """Merge per-key event streams into one deterministically ordered stream.

    The caller declares the key order up front (:meth:`expect`, called in the
    order keys must appear downstream).  Events delivered for the *head* key
    pass straight through to the downstream callback — that is what keeps the
    merged stream live; events for later keys buffer until every earlier key
    has ended.  :meth:`end` marks one key's stream complete and promotes the
    next key, flushing whatever it buffered meanwhile.  Producers whose end
    marker never arrives (expired or crashed tasks) are handled by
    :meth:`flush_pending`, which force-delivers everything still buffered in
    declared order.

    Thread-safe; the downstream callback runs under the merger lock, so
    delivery order is total even when transports route events from multiple
    threads.
    """

    def __init__(self, downstream: Callable[[Any], None]):
        self._downstream = downstream
        self._order: deque = deque()
        self._buffers: dict[Hashable, list] = {}
        self._ended: set = set()
        self._lock = threading.Lock()

    def expect(self, key: Hashable) -> None:
        """Declare the next key of the merged order."""
        with self._lock:
            self._order.append(key)
            self._buffers.setdefault(key, [])

    def deliver(self, key: Hashable, event: Any) -> None:
        """Route one event: straight through for the head key, else buffered."""
        with self._lock:
            if self._order and self._order[0] == key:
                self._downstream(event)
            elif key in self._buffers:
                self._buffers[key].append(event)
            # Unknown key: the producer was restarted or released — drop.

    def end(self, key: Hashable) -> None:
        """Mark *key*'s stream complete; promote and flush successors."""
        with self._lock:
            if key not in self._buffers:
                return
            self._ended.add(key)
            while self._order and self._order[0] in self._ended:
                head = self._order.popleft()
                self._ended.discard(head)
                self._buffers.pop(head, None)
                if self._order:
                    new_head = self._order[0]
                    for event in self._buffers.get(new_head, ()):
                        self._downstream(event)
                    self._buffers[new_head] = []

    def restart(self, key: Hashable) -> None:
        """Discard *key*'s buffered events (its producer is being retried).

        Only buffered events can be unwound; a head key's events already
        passed downstream, so a retried head producer re-delivers its prefix
        (at-least-once under crashes, exactly-once otherwise).
        """
        with self._lock:
            if key in self._buffers:
                self._buffers[key] = []
            self._ended.discard(key)

    def flush_pending(self) -> None:
        """Force-deliver everything still buffered, in declared key order."""
        with self._lock:
            while self._order:
                head = self._order.popleft()
                self._ended.discard(head)
                for event in self._buffers.pop(head, ()):
                    self._downstream(event)
