"""Socket transport: a remote-worker fleet behind the channel/scheduler contract.

This module is the coordinator side of distributed execution.  A
:class:`RemoteFleet` owns the connections to ``repro.worker`` processes
(possibly on other machines) and presents two familiar surfaces to
:class:`~repro.exec.scheduler.WorkScheduler`:

* a **channel** — :class:`SocketChannel` satisfies the same contract as
  :class:`~repro.exec.channel.DirectChannel` / ``QueueChannel``: per-task
  event ordering (each worker connection is drained by one receiver thread,
  so a task's frames arrive in emission order), an end-of-stream marker
  (the worker's ``task_end`` frame) gating :meth:`TaskPort.wait_drained`,
  and cross-process cancellation (``TaskPort.cancel`` sends a ``cancel``
  frame; the worker's receiver thread raises the task's cancel event);
* an **executor** — :meth:`RemoteFleet.submit` returns a plain
  ``concurrent.futures.Future`` resolved by the owning connection's
  receiver thread, so the scheduler's pooled drain loop waits on fleet
  futures exactly like pool futures.

Topologies (the protocol is direction-agnostic — the worker always sends
``hello`` first, see :mod:`repro.exec.wire`):

* **dial** — the fleet connects out to workers started with
  ``python -m repro.worker --listen HOST:PORT`` (addresses via
  ``RemoteFleet(workers=[...])``, ``MigrationService(workers=[...])`` or
  ``SynthesisConfig.execution_fleet``);
* **listen** — the fleet binds ``RemoteFleet(listen="HOST:PORT")`` and
  workers register with ``python -m repro.worker --connect HOST:PORT``.

Leases and failure semantics: every dispatched task is a **lease** — an
assignment of one task to one worker with an expiry, renewed by the
worker's heartbeats and optionally journalled to a
:class:`~repro.jobstore.JobStore` (``leased`` / ``lease_heartbeat`` /
``released`` records with worker id and expiry).  A worker whose
connection drops, or that stays silent past ``lease_ttl``, is declared
lost: its in-flight futures fail with :class:`WorkerLost`, which the
scheduler treats like a pool-break crash for just those tasks — charge a
retry and **re-lease** them to a surviving worker (recorded as a fresh
``leased`` line).  Because a lost worker's socket is closed before its
futures fail, a straggler result from a worker that was merely slow can
never settle the task a second time: execution is at-least-once under
crashes, settlement exactly-once — the same contract the queue transport's
crash recovery established.

Backpressure: the socket transport sheds nothing.  A slow coordinator
propagates TCP flow control back to the workers' ``sendall``, so
:attr:`SocketChannel.stats` reports zero drops by construction (the
high-water/drop counters exist for the bounded-queue transport).
"""

from __future__ import annotations

import random
import socket
import threading
import time
from concurrent.futures import Future
from concurrent.futures import InvalidStateError
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.exec import wire
from repro.exec.channel import ChannelStats, TaskPort
from repro.exec.policy import RetryPolicy

#: Seconds between worker heartbeats (announced in the welcome frame).
DEFAULT_HEARTBEAT_INTERVAL = 1.0

#: Seconds of worker silence after which its leases expire (must comfortably
#: exceed the heartbeat interval; 6x here).
DEFAULT_LEASE_TTL = 6.0

#: Seconds ensure_started() waits for the fleet to reach ``min_workers``.
DEFAULT_START_TIMEOUT = 20.0


class WorkerLost(RuntimeError):
    """A remote worker vanished (connection drop or lease expiry) mid-task.

    Raised as the exception of the affected futures; the scheduler's drain
    loop converts it into a retry-charged re-lease, never a drain failure.
    """


class FleetUnavailable(RuntimeError):
    """The fleet has no live workers (and none arrived within the timeout)."""


# ---------------------------------------------------------------- channel
class _FleetCancelSignal:
    """Event-surfaced cancel signal whose ``set()`` crosses the socket."""

    __slots__ = ("_fleet", "_task_id", "_flag")

    def __init__(self, fleet: "RemoteFleet", task_id: int):
        self._fleet = fleet
        self._task_id = task_id
        self._flag = False

    def is_set(self) -> bool:
        return self._flag

    def set(self) -> None:
        self._flag = True
        self._fleet._send_cancel(self._task_id)


class SocketChannel:
    """Parent-side channel of a :class:`RemoteFleet` (one per fleet).

    Events arrive as ``event`` frames on the per-worker receiver threads and
    are dispatched synchronously to the bound subscriber — same isolation
    contract as the queue transport's router (a raising subscriber is
    recorded on the port, the receiver keeps running).  The worker's
    ``task_end`` frame is the end-of-stream marker; it precedes the
    ``result`` frame on the same ordered connection, so a settling task's
    stream is always fully delivered first.
    """

    transport = "socket"

    def __init__(self, fleet: "RemoteFleet"):
        self._fleet = fleet
        self._lock = threading.Lock()
        #: task_id -> (subscriber, drained threading.Event, port)
        self._subscribers: dict[int, tuple[Callable[[Any], None], threading.Event, TaskPort]] = {}

    def bind(self, task_id: int, on_event: Optional[Callable[[Any], None]]) -> TaskPort:
        port = TaskPort(
            self, task_id, -1, on_event is not None, None, _FleetCancelSignal(self._fleet, task_id)
        )
        if on_event is not None:
            with self._lock:
                self._subscribers[task_id] = (on_event, threading.Event(), port)
        return port

    def _dispatch(self, task_id: int, event: Any) -> None:
        with self._lock:
            entry = self._subscribers.get(task_id)
        if entry is None:
            return  # late event of a released (retried/abandoned) binding
        subscriber, _drained, port = entry
        try:
            subscriber(event)
        except Exception as error:  # noqa: BLE001 - keep the receiver alive
            port.subscriber_error = error

    def _end_stream(self, task_id: int) -> None:
        with self._lock:
            entry = self._subscribers.get(task_id)
        if entry is not None:
            entry[1].set()

    def _wait_drained(self, port: TaskPort, timeout: Optional[float]) -> bool:
        with self._lock:
            entry = self._subscribers.get(port.task_id)
        if entry is None:
            return True
        return entry[1].wait(timeout)

    def _release(self, port: TaskPort, recycle: bool) -> None:
        with self._lock:
            self._subscribers.pop(port.task_id, None)

    def close(self) -> None:
        with self._lock:
            self._subscribers.clear()

    @property
    def stats(self) -> ChannelStats:
        """Zeros by construction: TCP flow control replaces load shedding."""
        return ChannelStats()


# ------------------------------------------------------------------ fleet
@dataclass
class _Lease:
    """One task's assignment to one worker, with a heartbeat-renewed expiry."""

    task_id: int
    name: str
    worker_id: str
    expiry: float
    future: Future
    streaming: bool


class _WorkerLink:
    """Coordinator-side state of one registered worker connection."""

    def __init__(self, sock: socket.socket, hello: dict):
        self.sock = sock
        self.worker_id: str = hello["worker"]
        self.slots: int = max(1, int(hello.get("slots") or 1))
        self.pid = hello.get("pid")
        #: Effective (jittered) heartbeat interval announced in the welcome.
        self.heartbeat: float = float(
            hello.get("heartbeat_effective") or DEFAULT_HEARTBEAT_INTERVAL
        )
        self.last_beat = time.time()
        self.inflight: dict[int, _Lease] = {}
        self.send_lock = threading.Lock()
        self.lost = False

    def send(self, header: dict, payload: bytes = b"") -> None:
        with self.send_lock:
            wire.send_frame(self.sock, header, payload)


class RemoteFleet:
    """A set of remote workers driven by one scheduler at a time.

    *workers* are ``"host:port"`` addresses to dial (workers running
    ``--listen``); *listen* is a local ``"host:port"`` to accept
    ``--connect`` registrations on (port 0 picks a free port —
    :attr:`bound_address` reports it).  Both may be combined.

    The fleet is reusable across sequential scheduler drains (the service
    keeps one fleet across ``run()`` calls) but must not be shared by two
    schedulers concurrently.  ``lease_log`` journals lease lines to a
    :class:`~repro.jobstore.JobStore`; the service wires its own store in
    automatically.
    """

    def __init__(
        self,
        workers: Sequence[str] = (),
        *,
        listen: Optional[str] = None,
        min_workers: int = 1,
        start_timeout: float = DEFAULT_START_TIMEOUT,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        heartbeat_jitter: float = 0.0,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        lease_log=None,
        retry: Optional[RetryPolicy] = None,
    ):
        self.addresses = [wire.parse_address(address) for address in workers]
        self.min_workers = max(1, min_workers)
        self.start_timeout = start_timeout
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_jitter = heartbeat_jitter
        self.lease_ttl = lease_ttl
        self.lease_log = lease_log
        self.retry = retry or RetryPolicy()
        #: Workers declared lost over the fleet's lifetime (folded into
        #: SchedulerStats.workers_lost when a borrowing scheduler closes).
        self.workers_lost = 0
        #: Last lease-journal write error, if any (journalling is best-effort:
        #: a full disk must not take the fleet down with it).
        self.lease_log_error: Optional[BaseException] = None
        self.channel = SocketChannel(self)
        self._lock = threading.Lock()
        self._roster_changed = threading.Condition(self._lock)
        self._links: dict[str, _WorkerLink] = {}
        self._task_owner: dict[int, _WorkerLink] = {}
        self._threads: list[threading.Thread] = []
        self._listener: Optional[socket.socket] = None
        self._started = False
        self._closed = False
        if listen is not None:
            host, port = wire.parse_address(listen)
            self._listener = socket.create_server((host, port))
            self._listener.settimeout(0.25)

    # ------------------------------------------------------------- lifecycle
    @property
    def bound_address(self) -> Optional[str]:
        """The listener's actual ``host:port`` (after port-0 resolution)."""
        if self._listener is None:
            return None
        host, port = self._listener.getsockname()[:2]
        return f"{host}:{port}"

    @property
    def worker_count(self) -> int:
        with self._lock:
            return len(self._links)

    @property
    def capacity(self) -> int:
        """Live task slots across the fleet (shrinks when workers are lost)."""
        with self._lock:
            return sum(link.slots for link in self._links.values())

    def ensure_started(self) -> None:
        """Start background machinery and wait for ``min_workers`` to register.

        Idempotent.  Raises :class:`FleetUnavailable` when the roster is
        still short after ``start_timeout`` — the scheduler surfaces that as
        :class:`~repro.exec.ExecutorUnavailable` so clients keep their
        degrade-to-inline fallback.
        """
        with self._lock:
            if self._closed:
                raise FleetUnavailable("fleet is closed")
            starting = not self._started
            self._started = True
        if starting:
            if self._listener is not None:
                self._spawn(self._accept_loop, "repro-fleet-accept")
            for address in self.addresses:
                self._spawn(lambda addr=address: self._dial_loop(addr), "repro-fleet-dial")
            self._spawn(self._monitor_loop, "repro-fleet-monitor")
        if not self.wait_for_capacity(self.start_timeout, workers=self.min_workers):
            raise FleetUnavailable(
                f"fleet has {self.worker_count}/{self.min_workers} worker(s) "
                f"after {self.start_timeout:.0f}s"
            )

    def wait_for_capacity(self, timeout: float, *, workers: int = 1) -> bool:
        """Block until at least *workers* workers are registered (or timeout)."""
        deadline = time.time() + timeout
        with self._roster_changed:
            while len(self._links) < workers and not self._closed:
                remaining = deadline - time.time()
                if remaining <= 0:
                    return False
                self._roster_changed.wait(remaining)
            return len(self._links) >= workers

    def _spawn(self, target: Callable[[], None], name: str) -> None:
        thread = threading.Thread(target=target, name=name, daemon=True)
        thread.start()
        self._threads.append(thread)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            links = list(self._links.values())
            self._links.clear()
            self._task_owner.clear()
            self._roster_changed.notify_all()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - already torn down
                pass
        for link in links:
            # Mark lost under the lock so a monitor expire scan racing this
            # close sees the link as already handled and backs off.
            with self._lock:
                link.lost = True
            try:
                link.send({"type": "shutdown"})
            except OSError:
                pass
            try:
                link.sock.close()
            except OSError:  # pragma: no cover
                pass
            self._fail_inflight(link, "fleet closed with work in flight")
        self.channel.close()
        for thread in self._threads:
            thread.join(timeout=2.0)

    def __enter__(self) -> "RemoteFleet":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ----------------------------------------------------------- registration
    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, _peer = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed
            self._spawn(lambda sock=conn: self._register(sock), "repro-fleet-handshake")

    def _dial_loop(self, address: tuple[str, int]) -> None:
        """Dial one listening worker, retrying until it is up or time is out.

        Retries follow the fleet's :class:`RetryPolicy` backoff (jittered
        exponential) instead of a fixed sleep, so a fleet dialing a herd of
        not-yet-listening workers does not hammer them in lockstep.
        """
        deadline = time.time() + self.start_timeout
        rng = random.Random(hash(address))
        attempt = 0
        while not self._closed and time.time() < deadline:
            try:
                sock = socket.create_connection(address, timeout=2.0)
            except OSError:
                attempt += 1
                delay = self.retry.backoff_delay(attempt, rng) or 0.2
                time.sleep(min(delay, max(0.0, deadline - time.time())))
                continue
            self._register(sock)
            return

    def _register(self, sock: socket.socket) -> None:
        try:
            sock.settimeout(10.0)
            hello = wire.coordinator_accept(
                sock,
                heartbeat_interval=self.heartbeat_interval,
                lease_ttl=self.lease_ttl,
                heartbeat_jitter=self.heartbeat_jitter,
            )
            sock.settimeout(None)
        except (wire.FrameError, OSError):
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
            return
        link = _WorkerLink(sock, hello)
        with self._roster_changed:
            if self._closed or link.worker_id in self._links:
                duplicate = link.worker_id in self._links and not self._closed
                reason = "duplicate worker id" if duplicate else "fleet is closed"
                try:
                    link.send({"type": "shutdown", "reason": reason})
                    sock.close()
                except OSError:
                    pass
                return
            self._links[link.worker_id] = link
            self._roster_changed.notify_all()
        self._spawn(lambda: self._serve_link(link), f"repro-fleet-recv-{link.worker_id}")

    # -------------------------------------------------------------- receiving
    def _serve_link(self, link: _WorkerLink) -> None:
        while True:
            try:
                header, payload = wire.recv_frame(link.sock)
            except wire.ConnectionClosed:
                self._lose_worker(link, "connection closed")
                return
            except (wire.FrameError, OSError) as error:
                self._lose_worker(link, f"connection failed ({error})")
                return
            kind = header.get("type")
            if kind == "event":
                self.channel._dispatch(header["task"], wire.load_payload(payload))
            elif kind == "task_end":
                self.channel._end_stream(header["task"])
            elif kind == "result":
                self._apply_result(link, header, payload)
            elif kind == "heartbeat":
                self._apply_heartbeat(link)
            # Unknown frame types are ignored: additive protocol evolution
            # within one WIRE_VERSION must not kill live connections.

    def _apply_result(self, link: _WorkerLink, header: dict, payload: bytes) -> None:
        task_id = header["task"]
        with self._lock:
            lease = link.inflight.pop(task_id, None)
            self._task_owner.pop(task_id, None)
        if lease is None:
            return  # task was re-leased elsewhere after this worker expired
        self._journal(
            {
                "type": "released",
                "job": lease.name,
                "worker": link.worker_id,
                "task": task_id,
                "outcome": "done" if header.get("ok") else "failed",
            }
        )
        try:
            value = wire.load_payload(payload)
        except Exception as error:  # noqa: BLE001 - unpicklable result payload
            self._resolve(lease.future, error=error)
            return
        if header.get("ok"):
            self._resolve(lease.future, value=value)
        else:
            self._resolve(lease.future, error=value)

    def _apply_heartbeat(self, link: _WorkerLink) -> None:
        now = time.time()
        with self._lock:
            # last_beat is written under the fleet lock so the monitor's
            # expire path (which re-checks it under the same lock) can never
            # expire a lease the instant after it was renewed.
            link.last_beat = now
            leases = list(link.inflight.values())
            for lease in leases:
                lease.expiry = now + self.lease_ttl
        for lease in leases:
            self._journal(
                {
                    "type": "lease_heartbeat",
                    "job": lease.name,
                    "worker": link.worker_id,
                    "task": lease.task_id,
                    "expiry": lease.expiry,
                }
            )

    @staticmethod
    def _resolve(future: Future, *, value: Any = None, error: Optional[BaseException] = None) -> None:
        try:
            if error is not None:
                future.set_exception(error)
            else:
                future.set_result(value)
        except InvalidStateError:
            # The scheduler already abandoned this future (deadline) or the
            # worker was declared lost a moment ago: first settle wins.
            pass

    # ------------------------------------------------------------ worker loss
    def _lose_worker(self, link: _WorkerLink, reason: str) -> None:
        with self._roster_changed:
            if link.lost:
                return
            link.lost = True
            closing = self._closed
            self._links.pop(link.worker_id, None)
            if not closing:
                self.workers_lost += 1
            self._roster_changed.notify_all()
        try:
            link.sock.close()
        except OSError:  # pragma: no cover
            pass
        if not closing:
            self._fail_inflight(link, reason)

    def _fail_inflight(self, link: _WorkerLink, reason: str) -> None:
        with self._lock:
            victims = list(link.inflight.values())
            link.inflight.clear()
            for lease in victims:
                self._task_owner.pop(lease.task_id, None)
        for lease in victims:
            self._journal(
                {
                    "type": "released",
                    "job": lease.name,
                    "worker": link.worker_id,
                    "task": lease.task_id,
                    "outcome": "lost",
                }
            )
            # The socket is already closed, so a straggler result from this
            # worker can never race this exception in: exactly-once settling.
            self._resolve(
                lease.future,
                error=WorkerLost(
                    f"worker {link.worker_id!r} lost ({reason}) while running {lease.name!r}"
                ),
            )

    def _expire_link(self, link: _WorkerLink, reason: str) -> bool:
        """Expire one silent link's lease — the *entire* decision under the lock.

        Re-validates under ``self._lock`` that the link is still live
        (not already being closed by ``_lose_worker``/``close()``) and
        still silent (a heartbeat may have renewed ``last_beat`` between
        the monitor's scan and this call).  Only then is the loss
        committed, atomically with the decision — the monitor can never
        expire a lease out from under a concurrent close.  Returns True
        when the link was expired.
        """
        with self._roster_changed:
            if link.lost or self._closed:
                return False
            if time.time() - link.last_beat <= self.lease_ttl:
                return False  # renewed since the scan: not silent after all
            link.lost = True
            self._links.pop(link.worker_id, None)
            self.workers_lost += 1
            self._roster_changed.notify_all()
        try:
            link.sock.close()
        except OSError:  # pragma: no cover
            pass
        self._fail_inflight(link, reason)
        return True

    def _monitor_loop(self) -> None:
        interval = max(0.05, min(self.heartbeat_interval, self.lease_ttl / 3))
        rng = random.Random(f"monitor:{id(self)}")
        while not self._closed:
            # Jitter the scan period so restarted fleets don't expire in step.
            time.sleep(interval * rng.uniform(0.8, 1.2))
            now = time.time()
            with self._lock:
                silent = [
                    link
                    for link in self._links.values()
                    if now - link.last_beat > self.lease_ttl
                ]
            for link in silent:
                self._expire_link(
                    link, f"lease expired after {self.lease_ttl:.1f}s of silence"
                )

    # ------------------------------------------------------------- dispatch
    def submit(
        self,
        task_id: int,
        streaming: bool,
        fn: Callable,
        payload: Any,
        *,
        name: str = "",
        deadline: Optional[float] = None,
    ) -> Future:
        """Lease one task to the least-loaded live worker; returns its future.

        Raises :class:`FleetUnavailable` when no worker is registered.  A
        payload that fails to pickle resolves the future FAILED (a task
        isolation failure, not a fleet failure).
        """
        future: Future = Future()
        future.set_running_or_notify_cancel()
        try:
            body = wire.dump_payload((fn, payload))
        except Exception as error:  # noqa: BLE001 - unpicklable task payload
            self._resolve(future, error=error)
            return future
        now = time.time()
        with self._lock:
            if not self._links:
                raise FleetUnavailable("no live workers in the fleet")
            link = min(
                self._links.values(), key=lambda entry: len(entry.inflight) / entry.slots
            )
            lease = _Lease(
                task_id=task_id,
                name=name or f"task-{task_id}",
                worker_id=link.worker_id,
                expiry=now + self.lease_ttl,
                future=future,
                streaming=streaming,
            )
            link.inflight[task_id] = lease
            self._task_owner[task_id] = link
        self._journal(
            {
                "type": "leased",
                "job": lease.name,
                "worker": link.worker_id,
                "task": task_id,
                "expiry": lease.expiry,
            }
        )
        try:
            link.send(
                {
                    "type": "task",
                    "task": task_id,
                    "name": lease.name,
                    "streaming": streaming,
                    "deadline": deadline,
                },
                body,
            )
        except OSError as error:
            self._lose_worker(link, f"send failed ({error})")
        return future

    def _send_cancel(self, task_id: int) -> None:
        with self._lock:
            link = self._task_owner.get(task_id)
        if link is None:
            return
        try:
            link.send({"type": "cancel", "task": task_id})
        except OSError as error:
            self._lose_worker(link, f"send failed ({error})")

    # -------------------------------------------------------------- journal
    def _journal(self, record: dict) -> None:
        log = self.lease_log
        if log is None:
            return
        try:
            log.append(record)
        except Exception as error:  # noqa: BLE001 - journalling is best-effort
            self.lease_log_error = error
