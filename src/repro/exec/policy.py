"""Unified retry/timeout/backoff policies for the execution stack.

Before this module, retry behaviour was scattered: the scheduler counted
crash retries with a bare integer, ``RemoteFleet`` redialed on a fixed
0.2s sleep, and the worker agent retried its connect with a constant
delay.  ``RetryPolicy`` and ``TimeoutPolicy`` centralise those knobs so
every seam (scheduler, fleet, worker, service) reads the same semantics:

* **max_retries** — how many times a task may be re-run after a process
  pool breaks underneath it before it settles FAILED.
* **quarantine_after** — how many *worker-killing* re-leases a task may
  cause before it is quarantined (settled ``QUARANTINED`` instead of
  being handed to yet another worker it will probably kill).
* **retry_budget** — an optional scheduler-wide cap on total crash
  retries across all tasks; once exhausted, further casualties settle
  immediately instead of being requeued.
* **backoff** — jittered exponential delay before a retried task becomes
  dispatchable again.  Deterministic when ``seed`` is set.

This module is stdlib-only and imports nothing from ``repro`` so it can
be pulled into ``core.config`` without cycles.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Optional

__all__ = ["RetryPolicy", "TimeoutPolicy", "ResilienceConfig"]


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How many times, and how eagerly, failed work is re-attempted."""

    #: Pool-break incidents a task survives before settling FAILED.
    max_retries: int = 2
    #: Worker-killing re-leases a task may cause before QUARANTINED.
    quarantine_after: int = 2
    #: Optional scheduler-wide cap on total crash retries (None = unbounded).
    retry_budget: Optional[int] = None
    #: Base delay (seconds) before the first retry; <= 0 disables backoff.
    backoff_base: float = 0.05
    #: Multiplier applied per additional attempt.
    backoff_factor: float = 2.0
    #: Ceiling on any single backoff delay.
    backoff_max: float = 2.0
    #: Fraction of the delay randomised (0.5 -> delay * uniform(0.5, 1.5)).
    backoff_jitter: float = 0.5
    #: Seed for the jitter RNG; None draws from the global RNG.
    seed: Optional[int] = None

    def rng(self) -> random.Random:
        return random.Random(self.seed)

    def backoff_delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Delay before dispatching retry number ``attempt`` (1-based)."""
        if self.backoff_base <= 0:
            return 0.0
        raw = self.backoff_base * (self.backoff_factor ** max(0, attempt - 1))
        raw = min(raw, self.backoff_max)
        if self.backoff_jitter > 0:
            draw = (rng or random).uniform(-self.backoff_jitter, self.backoff_jitter)
            raw *= 1.0 + draw
        return max(0.0, raw)


@dataclasses.dataclass(frozen=True)
class TimeoutPolicy:
    """Deadlines and grace periods shared across the execution seams."""

    #: Seconds past a task deadline before the scheduler cancels it.
    deadline_grace: float = 5.0
    #: Idle-poll interval while waiting for pooled futures.
    nudge_delay: float = 1.0
    #: Socket connect timeout for worker dials.
    connect_timeout: float = 5.0
    #: Hello/welcome handshake timeout.
    handshake_timeout: float = 10.0
    #: How long a fleet waits for its first worker before giving up.
    start_timeout: float = 20.0


@dataclasses.dataclass(frozen=True)
class ResilienceConfig:
    """Resilience knobs threaded through ``SynthesisConfig``."""

    retry: RetryPolicy = dataclasses.field(default_factory=RetryPolicy)
    timeout: TimeoutPolicy = dataclasses.field(default_factory=TimeoutPolicy)
    #: Walk the fleet -> pool -> sequential ladder instead of failing fast.
    degrade_ladder: bool = True
    #: Pool width used when degrading from a lost fleet.
    degrade_workers: int = 2
