"""The unified execution layer: event channels + the work scheduler.

``repro.exec`` is the one place dispatch lives.  The parallel
value-correspondence front-end (:mod:`repro.core.parallel`), the streaming
:class:`~repro.core.session.SynthesisSession` in parallel mode, the
multi-job :class:`~repro.service.MigrationService`, and the evaluation
harness's ``--scheduler-workers`` table runs all schedule their work
through :class:`WorkScheduler`, and all stream typed session events through
the channel transports (:class:`DirectChannel` in-process,
:class:`QueueChannel` across worker-process boundaries) — see the module
docstrings of :mod:`repro.exec.scheduler` and :mod:`repro.exec.channel` for
the scheduling model, backpressure policy, crash-retry semantics and the
delivery guarantees.
"""

from repro.exec.channel import (
    DEFAULT_MAX_PENDING_EVENTS,
    ChannelStats,
    DirectChannel,
    FlagSignal,
    OrderedEventMerger,
    QueueChannel,
    TaskPort,
    WorkContext,
    install_worker_transport,
    worker_context,
)
from repro.exec.compat import TIMEOUT_ERRORS, FuturesTimeoutError
from repro.exec.scheduler import (
    DEADLINE_GRACE,
    DEFAULT_MAX_RETRIES,
    ExecutorUnavailable,
    SchedulerStats,
    TaskHandle,
    TaskState,
    WorkScheduler,
)

__all__ = [
    # channels
    "DirectChannel",
    "QueueChannel",
    "TaskPort",
    "WorkContext",
    "FlagSignal",
    "ChannelStats",
    "OrderedEventMerger",
    "DEFAULT_MAX_PENDING_EVENTS",
    "install_worker_transport",
    "worker_context",
    # scheduler
    "WorkScheduler",
    "TaskHandle",
    "TaskState",
    "SchedulerStats",
    "ExecutorUnavailable",
    "DEADLINE_GRACE",
    "DEFAULT_MAX_RETRIES",
    # compat
    "FuturesTimeoutError",
    "TIMEOUT_ERRORS",
]
