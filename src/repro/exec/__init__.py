"""The unified execution layer: event channels + the work scheduler.

``repro.exec`` is the one place dispatch lives.  The parallel
value-correspondence front-end (:mod:`repro.core.parallel`), the streaming
:class:`~repro.core.session.SynthesisSession` in parallel mode, the
multi-job :class:`~repro.service.MigrationService`, and the evaluation
harness's ``--scheduler-workers`` table runs all schedule their work
through :class:`WorkScheduler`, and all stream typed session events through
the channel transports (:class:`DirectChannel` in-process,
:class:`QueueChannel` across worker-process boundaries,
:class:`SocketChannel` across machines) — see the module docstrings of
:mod:`repro.exec.scheduler`, :mod:`repro.exec.channel`,
:mod:`repro.exec.wire` and :mod:`repro.exec.remote` for the scheduling
model, backpressure policy, crash-retry / lease semantics and the delivery
guarantees.
"""

from repro.exec.channel import (
    DEFAULT_MAX_PENDING_EVENTS,
    ChannelStats,
    DirectChannel,
    FlagSignal,
    OrderedEventMerger,
    QueueChannel,
    TaskPort,
    WorkContext,
    build_work_context,
    install_worker_transport,
    run_streamed_task,
    worker_context,
)
from repro.exec.compat import TIMEOUT_ERRORS, FuturesTimeoutError
from repro.exec.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)
from repro.exec.policy import ResilienceConfig, RetryPolicy, TimeoutPolicy
from repro.exec.remote import (
    FleetUnavailable,
    RemoteFleet,
    SocketChannel,
    WorkerLost,
)
from repro.exec.scheduler import (
    DEADLINE_GRACE,
    DEFAULT_MAX_RETRIES,
    ExecutorUnavailable,
    SchedulerStats,
    TaskHandle,
    TaskState,
    WorkScheduler,
)
from repro.exec.wire import WIRE_VERSION

__all__ = [
    # channels
    "DirectChannel",
    "QueueChannel",
    "SocketChannel",
    "TaskPort",
    "WorkContext",
    "FlagSignal",
    "ChannelStats",
    "OrderedEventMerger",
    "DEFAULT_MAX_PENDING_EVENTS",
    "build_work_context",
    "install_worker_transport",
    "run_streamed_task",
    "worker_context",
    # remote fleet
    "RemoteFleet",
    "WorkerLost",
    "FleetUnavailable",
    "WIRE_VERSION",
    # scheduler
    "WorkScheduler",
    "TaskHandle",
    "TaskState",
    "SchedulerStats",
    "ExecutorUnavailable",
    "DEADLINE_GRACE",
    "DEFAULT_MAX_RETRIES",
    # resilience policies + fault injection
    "RetryPolicy",
    "TimeoutPolicy",
    "ResilienceConfig",
    "FaultPlan",
    "FaultSpec",
    "FaultInjector",
    "InjectedFault",
    # compat
    "FuturesTimeoutError",
    "TIMEOUT_ERRORS",
]
