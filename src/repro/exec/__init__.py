"""The unified execution layer: event channels + the work scheduler.

``repro.exec`` is the one place dispatch lives.  The parallel
value-correspondence front-end (:mod:`repro.core.parallel`) and the
multi-job :class:`~repro.service.MigrationService` both schedule their work
through :class:`WorkScheduler`, and both stream typed session events through
the channel transports (:class:`DirectChannel` in-process,
:class:`QueueChannel` across worker-process boundaries) — see the module
docstrings of :mod:`repro.exec.scheduler` and :mod:`repro.exec.channel` for
the scheduling model and the delivery semantics.
"""

from repro.exec.channel import (
    DirectChannel,
    FlagSignal,
    QueueChannel,
    TaskPort,
    WorkContext,
    install_worker_transport,
    worker_context,
)
from repro.exec.compat import TIMEOUT_ERRORS, FuturesTimeoutError
from repro.exec.scheduler import (
    DEADLINE_GRACE,
    ExecutorUnavailable,
    TaskHandle,
    TaskState,
    WorkScheduler,
)

__all__ = [
    # channels
    "DirectChannel",
    "QueueChannel",
    "TaskPort",
    "WorkContext",
    "FlagSignal",
    "install_worker_transport",
    "worker_context",
    # scheduler
    "WorkScheduler",
    "TaskHandle",
    "TaskState",
    "ExecutorUnavailable",
    "DEADLINE_GRACE",
    # compat
    "FuturesTimeoutError",
    "TIMEOUT_ERRORS",
]
