"""Sketch completion (Algorithm 2 of the paper).

The completer encodes the sketch as a SAT formula, repeatedly asks the SAT
solver for a model, instantiates the corresponding candidate program, and
tests it against the source program.  When the candidate is not equivalent,
the minimum failing input (MFI) identifies the functions responsible, and a
blocking clause over *only the holes of those functions* prunes every other
completion that fails for the same reason.

When the tester carries a cross-sketch counterexample pool (see
:mod:`repro.testing_cache`), candidates are first screened against pooled
failing inputs and only reach the full bounded enumeration when screening
cannot kill them; verifier counterexamples are fed back into the pool.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.completion.encoder import SketchEncoder, SketchEncoding
from repro.completion.instantiate import instantiate
from repro.equivalence.invocation import InvocationSequence, format_sequence
from repro.equivalence.tester import (
    BoundedTester,
    TestingInterrupted,
    interrupt_scope,
    make_interrupt_check,
)
from repro.equivalence.verifier import BoundedVerifier
from repro.lang.ast import Program
from repro.sat.solver import SatSolver, Status
from repro.sketchgen.sketch_ast import ProgramSketch


@dataclass
class CompletionStatistics:
    """Counters reported per sketch-completion call."""

    iterations: int = 0
    blocked_clauses: int = 0
    mfi_lengths: list[int] = field(default_factory=list)
    eliminated_estimate: int = 0
    sat_time: float = 0.0
    test_time: float = 0.0
    verify_time: float = 0.0


@dataclass
class CompletionResult:
    """Outcome of completing one sketch."""

    program: Optional[Program]
    statistics: CompletionStatistics
    last_failing_input: Optional[InvocationSequence] = None
    #: The loop was stopped by the caller's deadline or cancellation event
    #: (as opposed to exhausting the search space or the per-sketch limits).
    interrupted: bool = False

    @property
    def succeeded(self) -> bool:
        return self.program is not None


class SketchCompleter:
    """The ``CompleteSketch`` procedure.

    ``use_mfi=False`` turns the completer into the paper's *symbolic
    enumerative search* baseline (Table 3): each failing candidate blocks only
    its own full model.
    """

    def __init__(
        self,
        source_program: Program,
        *,
        tester: BoundedTester | None = None,
        verifier: BoundedVerifier | None = None,
        use_mfi: bool = True,
        consistency_constraints: bool = True,
        max_iterations: Optional[int] = None,
        time_limit: Optional[float] = None,
    ):
        self.source_program = source_program
        self.tester = tester or BoundedTester(source_program)
        self.verifier = verifier
        self.use_mfi = use_mfi
        self.consistency_constraints = consistency_constraints
        self.max_iterations = max_iterations
        self.time_limit = time_limit

    # -------------------------------------------------------------------- run
    def complete(
        self,
        sketch: ProgramSketch,
        *,
        deadline: Optional[float] = None,
        cancel: Optional[threading.Event] = None,
        on_reject: Optional[Callable[[int, Optional[InvocationSequence]], None]] = None,
    ) -> CompletionResult:
        """Complete one sketch.

        *deadline* is an absolute ``time.perf_counter()`` instant (the run's
        global budget, threaded down by the session); *cancel* is a
        cooperative cancellation event.  Both are checked once per candidate
        here and once per executed sequence inside the tester, so even a
        single long bounded-testing enumeration stops promptly.  *on_reject*
        is invoked with ``(iteration, counterexample)`` for every candidate
        that fails testing or verification.
        """
        stats = CompletionStatistics()
        started = time.perf_counter()
        encoder = SketchEncoder(sketch, consistency_constraints=self.consistency_constraints)
        encoding = encoder.encode()
        solver = SatSolver()
        solver.add_cnf(encoding.cnf)

        all_hole_indices = [hole.index for hole in sketch.holes()]
        holes_by_function = {
            name: [hole.index for hole in holes]
            for name, holes in sketch.holes_by_function().items()
        }

        interrupted = make_interrupt_check(deadline, cancel)
        with interrupt_scope(self.tester, self.verifier, interrupted):
            while True:
                if self.max_iterations is not None and stats.iterations >= self.max_iterations:
                    return CompletionResult(None, stats)
                if self.time_limit is not None and time.perf_counter() - started > self.time_limit:
                    return CompletionResult(None, stats)
                if interrupted is not None and interrupted():
                    return CompletionResult(None, stats, interrupted=True)

                sat_started = time.perf_counter()
                result = solver.solve()
                stats.sat_time += time.perf_counter() - sat_started
                if result.status is not Status.SAT:
                    return CompletionResult(None, stats)

                stats.iterations += 1
                assert result.model is not None
                assignment = encoding.model_to_assignment(result.model)
                candidate = instantiate(sketch, assignment)

                test_started = time.perf_counter()
                try:
                    failing = self.tester.find_failing_input(candidate)
                except TestingInterrupted:
                    stats.test_time += time.perf_counter() - test_started
                    return CompletionResult(None, stats, interrupted=True)
                stats.test_time += time.perf_counter() - test_started

                if failing is None:
                    if self.verifier is not None:
                        verify_started = time.perf_counter()
                        try:
                            verdict = self.verifier.verify(self.source_program, candidate)
                        except TestingInterrupted:
                            # Verification cut short: the candidate is NOT
                            # accepted (its deep check never finished).
                            stats.verify_time += time.perf_counter() - verify_started
                            return CompletionResult(None, stats, interrupted=True)
                        stats.verify_time += time.perf_counter() - verify_started
                        if not verdict.equivalent:
                            failing = verdict.counterexample
                            # Verifier counterexamples live beyond the tester's
                            # bound; pooling them lets later candidates (of this
                            # and other sketches) die in screening instead of
                            # passing testing and paying for verification again.
                            if failing is not None and self.tester.pool is not None:
                                self.tester.pool.add(failing)
                    if failing is None:
                        return CompletionResult(candidate, stats)

                if on_reject is not None:
                    on_reject(stats.iterations, failing)
                stats.mfi_lengths.append(len(failing))
                blocked_holes = self._holes_to_block(failing, holes_by_function, all_hole_indices)
                clause = encoding.blocking_clause(assignment, blocked_holes)
                solver.add_clause(clause)
                stats.blocked_clauses += 1
                stats.eliminated_estimate += self._eliminated(sketch, blocked_holes)

    # ---------------------------------------------------------------- helpers
    def _holes_to_block(
        self,
        failing: InvocationSequence,
        holes_by_function: dict[str, list[int]],
        all_holes: list[int],
    ) -> list[int]:
        if not self.use_mfi:
            return list(all_holes)
        functions = {name for name, _ in failing}
        blocked: list[int] = []
        for name in functions:
            blocked.extend(holes_by_function.get(name, ()))
        # If the failing functions contain no holes (fully determined), fall
        # back to blocking the complete model to guarantee progress.
        return blocked or list(all_holes)

    @staticmethod
    def _eliminated(sketch: ProgramSketch, blocked_holes: list[int]) -> int:
        """How many completions one blocking clause rules out (for reporting)."""
        blocked_set = set(blocked_holes)
        eliminated = 1
        for hole in sketch.holes():
            if hole.index not in blocked_set:
                eliminated *= hole.size
        return eliminated
