"""Sketch completion: SAT encoding, instantiation, MFI-based and enumerative solvers."""

from repro.completion.encoder import SketchEncoder, SketchEncoding
from repro.completion.enumerative import EnumerativeCompleter
from repro.completion.instantiate import (
    Assignment,
    InstantiationError,
    instantiate,
    instantiate_query_function,
    instantiate_update_function,
)
from repro.completion.solver import CompletionResult, CompletionStatistics, SketchCompleter

__all__ = [
    "Assignment",
    "CompletionResult",
    "CompletionStatistics",
    "EnumerativeCompleter",
    "InstantiationError",
    "SketchCompleter",
    "SketchEncoder",
    "SketchEncoding",
    "instantiate",
    "instantiate_query_function",
    "instantiate_update_function",
]
