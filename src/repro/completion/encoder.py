"""SAT encoding of a program sketch (the ``Encode`` procedure of Algorithm 2).

Each hole ``??_i`` with domain ``e_1 … e_n`` contributes indicator variables
``b_i^1 … b_i^n`` constrained by an exactly-one (n-ary XOR) clause set.  On
top of the paper's plain encoding we optionally add *consistency constraints*
that rule out completions that are ill-formed by construction (an attribute
choice whose table is not part of the chosen join chain, or a delete
table-list not contained in the chosen chain); these can be disabled to
reproduce the paper's exact search-space sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from repro.datamodel.schema import Attribute
from repro.sat.cardinality import exactly_one
from repro.sat.cnf import CNF, Literal
from repro.sketchgen.sketch_ast import (
    AttrHole,
    AttrRewrite,
    ChoiceHole,
    Hole,
    JoinHole,
    ProgramSketch,
    QueryFunctionSketch,
    StatementSketch,
    TabListHole,
    UpdateFunctionSketch,
)


@dataclass
class SketchEncoding:
    """The CNF together with the variable <-> (hole, position) dictionaries."""

    cnf: CNF
    variable_of: dict[tuple[int, int], int]
    choice_of: dict[int, tuple[int, int]]
    holes: dict[int, Hole]

    def model_to_assignment(self, model: Mapping[int, bool]) -> dict[int, int]:
        """Extract the hole assignment from a SAT model."""
        assignment: dict[int, int] = {}
        for variable, value in model.items():
            if value and variable in self.choice_of:
                hole_index, position = self.choice_of[variable]
                assignment[hole_index] = position
        # Exactly-one constraints guarantee completeness of the assignment;
        # defensively fill any hole missed by a partial model with position 0.
        for hole_index in self.holes:
            assignment.setdefault(hole_index, 0)
        return assignment

    def blocking_clause(
        self, assignment: Mapping[int, int], hole_indices: Iterable[int]
    ) -> list[Literal]:
        """``¬(b_1^{k1} ∧ … ∧ b_n^{kn})`` restricted to *hole_indices*."""
        clause: list[Literal] = []
        for hole_index in hole_indices:
            position = assignment[hole_index]
            clause.append(-self.variable_of[(hole_index, position)])
        return clause


class SketchEncoder:
    """Builds the SAT encoding of a sketch."""

    def __init__(self, sketch: ProgramSketch, *, consistency_constraints: bool = True):
        self.sketch = sketch
        self.consistency_constraints = consistency_constraints

    def encode(self) -> SketchEncoding:
        cnf = CNF()
        variable_of: dict[tuple[int, int], int] = {}
        choice_of: dict[int, tuple[int, int]] = {}
        holes = {hole.index: hole for hole in self.sketch.holes()}

        for hole in holes.values():
            literals = []
            for position in range(hole.size):
                variable = cnf.new_variable()
                variable_of[(hole.index, position)] = variable
                choice_of[variable] = (hole.index, position)
                literals.append(variable)
            exactly_one(cnf, literals)

        encoding = SketchEncoding(cnf, variable_of, choice_of, holes)
        if self.consistency_constraints:
            self._add_consistency(encoding)
        return encoding

    # ------------------------------------------------------------ consistency
    def _add_consistency(self, encoding: SketchEncoding) -> None:
        for function_sketch in self.sketch.functions:
            if isinstance(function_sketch, QueryFunctionSketch):
                self._query_consistency(encoding, function_sketch)
            else:
                self._update_consistency(encoding, function_sketch)

    def _attr_chain_consistency(
        self,
        encoding: SketchEncoding,
        chain_hole: Hole,
        chain_tables_by_position: Sequence[frozenset[str]],
        attr_map: Mapping[Attribute, AttrRewrite],
        relevant_attrs: Iterable[Attribute],
    ) -> None:
        """Forbid (chain choice, attribute choice) pairs that cannot co-exist."""
        cnf = encoding.cnf
        for position, tables in enumerate(chain_tables_by_position):
            chain_literal = encoding.variable_of[(chain_hole.index, position)]
            for attr in relevant_attrs:
                rewrite = attr_map.get(attr)
                if rewrite is None:
                    continue
                if isinstance(rewrite, Attribute):
                    if rewrite.table not in tables:
                        cnf.add_clause([-chain_literal])
                elif isinstance(rewrite, AttrHole):
                    for attr_position, candidate in enumerate(rewrite.domain):
                        if candidate.table not in tables:
                            attr_literal = encoding.variable_of[(rewrite.index, attr_position)]
                            cnf.add_clause([-chain_literal, -attr_literal])

    def _query_consistency(
        self, encoding: SketchEncoding, sketch: QueryFunctionSketch
    ) -> None:
        from repro.lang.visitors import attributes_of_query

        chain_tables = [frozenset(chain.tables) for chain in sketch.join_hole.domain]
        # Attributes used directly by the query (sub-query attributes are tied
        # to their own join holes below).
        sub_attrs = set()
        for query, _ in sketch.subquery_holes:
            sub_attrs |= attributes_of_query(query)
        direct_attrs = [a for a in sketch.attr_map if a not in sub_attrs]
        self._attr_chain_consistency(
            encoding, sketch.join_hole, chain_tables, sketch.attr_map, direct_attrs
        )
        for query, hole in sketch.subquery_holes:
            tables = [frozenset(chain.tables) for chain in hole.domain]
            self._attr_chain_consistency(
                encoding, hole, tables, sketch.attr_map, attributes_of_query(query)
            )

    def _update_consistency(
        self, encoding: SketchEncoding, sketch: UpdateFunctionSketch
    ) -> None:
        from repro.lang.ast import Delete, Insert, Update
        from repro.lang.visitors import attributes_of_predicate

        cnf = encoding.cnf
        for stmt_sketch in sketch.statements:
            source = stmt_sketch.source
            alternative_tables = [
                frozenset(table for chain in alternative for table in chain.tables)
                for alternative in stmt_sketch.choice_hole.domain
            ]
            if isinstance(source, Insert):
                relevant = [attr for attr, _ in source.values if attr in stmt_sketch.attr_map]
            elif isinstance(source, Delete):
                relevant = sorted(attributes_of_predicate(source.predicate))
            else:
                assert isinstance(source, Update)
                relevant = sorted(attributes_of_predicate(source.predicate) | {source.attribute})
            self._attr_chain_consistency(
                encoding,
                stmt_sketch.choice_hole,
                alternative_tables,
                stmt_sketch.attr_map,
                relevant,
            )
            if stmt_sketch.tablist_hole is not None:
                for alt_position, tables in enumerate(alternative_tables):
                    choice_literal = encoding.variable_of[
                        (stmt_sketch.choice_hole.index, alt_position)
                    ]
                    for list_position, table_list in enumerate(stmt_sketch.tablist_hole.domain):
                        if not set(table_list) <= tables:
                            list_literal = encoding.variable_of[
                                (stmt_sketch.tablist_hole.index, list_position)
                            ]
                            cnf.add_clause([-choice_literal, -list_literal])
