"""The symbolic enumerative-search baseline (Table 3 of the paper).

This baseline uses exactly the same SAT encoding and testing machinery as
the MFI-based completer, but whenever a candidate fails it blocks *only that
candidate's complete model* — i.e. it performs enumerative search
symbolically, one program at a time.

Counterexample-pool screening (``repro.testing_cache``) applies unchanged:
it rides on the shared :class:`~repro.equivalence.tester.BoundedTester`, so
the baseline benefits from pooled failing inputs exactly like the MFI
completer while keeping its weaker (full-model) blocking.
"""

from __future__ import annotations

from typing import Optional

from repro.completion.solver import SketchCompleter
from repro.equivalence.tester import BoundedTester
from repro.equivalence.verifier import BoundedVerifier
from repro.lang.ast import Program


class EnumerativeCompleter(SketchCompleter):
    """Sketch completion without minimum-failing-input pruning.

    ``complete`` (including its deadline / cancellation / rejection-callback
    session interface) is inherited unchanged from :class:`SketchCompleter`.
    """

    def __init__(
        self,
        source_program: Program,
        *,
        tester: BoundedTester | None = None,
        verifier: BoundedVerifier | None = None,
        consistency_constraints: bool = True,
        max_iterations: Optional[int] = None,
        time_limit: Optional[float] = None,
    ):
        super().__init__(
            source_program,
            tester=tester,
            verifier=verifier,
            use_mfi=False,
            consistency_constraints=consistency_constraints,
            max_iterations=max_iterations,
            time_limit=time_limit,
        )
