"""Instantiating a sketch with a hole assignment (the ``Instantiate`` procedure).

An assignment maps every hole index to a position in that hole's domain.
Instantiation rebuilds each function of the target program from its source
function by substituting attributes, join chains and delete table-lists
according to the assignment.
"""

from __future__ import annotations

from typing import Mapping

from repro.datamodel.schema import Attribute
from repro.lang.ast import (
    And,
    AttrRef,
    Comparison,
    Delete,
    Function,
    InQuery,
    Insert,
    JoinChain,
    Not,
    Or,
    Predicate,
    Program,
    Projection,
    Query,
    QueryFunction,
    Selection,
    Statement,
    TruePred,
    Update,
    UpdateFunction,
)
from repro.sketchgen.sketch_ast import (
    AttrHole,
    AttrRewrite,
    ProgramSketch,
    QueryFunctionSketch,
    StatementSketch,
    UpdateFunctionSketch,
)

#: hole index -> position within the hole's domain
Assignment = Mapping[int, int]


class InstantiationError(Exception):
    """Raised when an assignment does not cover every hole of the sketch."""


def _resolve(rewrite: AttrRewrite, assignment: Assignment) -> Attribute:
    if isinstance(rewrite, Attribute):
        return rewrite
    if isinstance(rewrite, AttrHole):
        if rewrite.index not in assignment:
            raise InstantiationError(f"assignment is missing hole ??{rewrite.index}")
        return rewrite.domain[assignment[rewrite.index]]
    raise TypeError(f"unknown attribute rewrite {rewrite!r}")


def _hole_value(hole, assignment: Assignment):
    if hole.index not in assignment:
        raise InstantiationError(f"assignment is missing hole ??{hole.index}")
    return hole.domain[assignment[hole.index]]


def _rewrite_predicate(
    predicate: Predicate,
    attr_map: Mapping[Attribute, AttrRewrite],
    assignment: Assignment,
    subquery_chains: Mapping[int, JoinChain],
) -> Predicate:
    def rewrite_operand(operand):
        if isinstance(operand, AttrRef):
            return AttrRef(_resolve(attr_map[operand.attribute], assignment))
        return operand

    if isinstance(predicate, TruePred):
        return predicate
    if isinstance(predicate, Comparison):
        return Comparison(rewrite_operand(predicate.left), predicate.op, rewrite_operand(predicate.right))
    if isinstance(predicate, InQuery):
        chain = subquery_chains.get(id(predicate.query))
        if chain is None:
            raise InstantiationError("IN sub-query has no assigned join chain")
        rewritten_query = _rewrite_query(
            predicate.query, chain, attr_map, assignment, subquery_chains
        )
        return InQuery(rewrite_operand(predicate.operand), rewritten_query)
    if isinstance(predicate, And):
        return And(
            _rewrite_predicate(predicate.left, attr_map, assignment, subquery_chains),
            _rewrite_predicate(predicate.right, attr_map, assignment, subquery_chains),
        )
    if isinstance(predicate, Or):
        return Or(
            _rewrite_predicate(predicate.left, attr_map, assignment, subquery_chains),
            _rewrite_predicate(predicate.right, attr_map, assignment, subquery_chains),
        )
    if isinstance(predicate, Not):
        return Not(_rewrite_predicate(predicate.operand, attr_map, assignment, subquery_chains))
    raise TypeError(f"unknown predicate node {predicate!r}")


def _rewrite_query(
    query: Query,
    chain: JoinChain,
    attr_map: Mapping[Attribute, AttrRewrite],
    assignment: Assignment,
    subquery_chains: Mapping[int, JoinChain],
) -> Query:
    """Rebuild a query against *chain*, substituting attributes."""
    projections: list[tuple[Attribute, ...]] = []
    predicates: list[Predicate] = []
    node = query
    while isinstance(node, (Projection, Selection)):
        if isinstance(node, Projection):
            projections.append(node.attributes)
        else:
            predicates.append(node.predicate)
        node = node.source

    result: Query = chain
    for predicate in reversed(predicates):
        result = Selection(
            _rewrite_predicate(predicate, attr_map, assignment, subquery_chains), result
        )
    if projections:
        attrs = tuple(_resolve(attr_map[a], assignment) for a in projections[0])
        result = Projection(attrs, result)
    return result


def instantiate_query_function(
    sketch: QueryFunctionSketch, assignment: Assignment
) -> QueryFunction:
    chain = _hole_value(sketch.join_hole, assignment)
    subquery_chains = {
        id(query): _hole_value(hole, assignment) for query, hole in sketch.subquery_holes
    }
    query = _rewrite_query(sketch.source.query, chain, sketch.attr_map, assignment, subquery_chains)
    return QueryFunction(sketch.source.name, sketch.source.params, query)


def _instantiate_statement(
    sketch: StatementSketch, assignment: Assignment
) -> list[Statement]:
    source = sketch.source
    chains = _hole_value(sketch.choice_hole, assignment)
    subquery_chains = {
        id(query): _hole_value(hole, assignment) for query, hole in sketch.subquery_holes
    }
    statements: list[Statement] = []
    for chain in chains:
        if isinstance(source, Insert):
            values = []
            for attr, operand in source.values:
                rewrite = sketch.attr_map.get(attr)
                if rewrite is None:
                    continue  # attribute dropped by the value correspondence
                values.append((_resolve(rewrite, assignment), operand))
            statements.append(Insert(chain, tuple(values)))
        elif isinstance(source, Delete):
            assert sketch.tablist_hole is not None
            tables = _hole_value(sketch.tablist_hole, assignment)
            predicate = _rewrite_predicate(
                source.predicate, sketch.attr_map, assignment, subquery_chains
            )
            statements.append(Delete(tuple(tables), chain, predicate))
        elif isinstance(source, Update):
            predicate = _rewrite_predicate(
                source.predicate, sketch.attr_map, assignment, subquery_chains
            )
            attribute = _resolve(sketch.attr_map[source.attribute], assignment)
            statements.append(Update(chain, predicate, attribute, source.value))
        else:
            raise TypeError(f"unknown statement node {source!r}")
    return statements


def instantiate_update_function(
    sketch: UpdateFunctionSketch, assignment: Assignment
) -> UpdateFunction:
    statements: list[Statement] = []
    for stmt_sketch in sketch.statements:
        statements.extend(_instantiate_statement(stmt_sketch, assignment))
    return UpdateFunction(sketch.source.name, sketch.source.params, tuple(statements))


def instantiate(sketch: ProgramSketch, assignment: Assignment, name: str | None = None) -> Program:
    """The ``Instantiate(Ω, M)`` procedure of Algorithm 2."""
    functions: list[Function] = []
    for function_sketch in sketch.functions:
        if isinstance(function_sketch, QueryFunctionSketch):
            functions.append(instantiate_query_function(function_sketch, assignment))
        else:
            functions.append(instantiate_update_function(function_sketch, assignment))
    program_name = name or f"{sketch.source_program.name}@{sketch.target_schema.name}"
    return Program(program_name, sketch.target_schema, functions)


class MemoizedInstantiator:
    """Instantiates candidate programs while sharing per-function ASTs.

    The BMC baseline instantiates one candidate per joint hole assignment of
    a sequence's functions; those assignments form a product space, so each
    individual function's hole values repeat constantly.  A function's
    instantiation depends only on its own holes, and function ASTs are
    immutable — safe to share between candidate programs — so memoizing per
    (function, restricted assignment) turns most of the per-candidate
    instantiation cost into one dict lookup per function.
    """

    def __init__(self, sketch: ProgramSketch, name: str | None = None):
        self.sketch = sketch
        self.name = name or f"{sketch.source_program.name}@{sketch.target_schema.name}"
        self._hole_indices = [
            sorted({hole.index for hole in function_sketch.holes()})
            for function_sketch in sketch.functions
        ]
        self._memo: dict[tuple, Function] = {}

    def instantiate(self, assignment: Assignment) -> Program:
        functions: list[Function] = []
        for position, function_sketch in enumerate(self.sketch.functions):
            key = (
                position,
                tuple(assignment.get(index, 0) for index in self._hole_indices[position]),
            )
            func = self._memo.get(key)
            if func is None:
                if isinstance(function_sketch, QueryFunctionSketch):
                    func = instantiate_query_function(function_sketch, assignment)
                else:
                    func = instantiate_update_function(function_sketch, assignment)
                self._memo[key] = func
            functions.append(func)
        return Program(self.name, self.sketch.target_schema, functions)
