"""The Sketch-style CEGIS / bounded-model-checking baseline (Table 2).

The paper compares Migrator against the Sketch synthesizer, for which the
authors encoded SQL semantics in C and let Sketch perform CEGIS over a
monolithic symbolic encoding.  Sketch itself is unavailable here, so this
module reproduces the *approach*: instead of testing one candidate at a time
and learning from minimum failing inputs, the baseline unrolls the bounded
semantics of the whole sketch over the bounded test-input space into a single
SAT problem and solves it monolithically.

Concretely, for every invocation sequence in the bounded test space and for
every joint assignment of the holes of the functions appearing in that
sequence, the candidate's behaviour is evaluated with the concrete execution
engine; joint assignments whose behaviour differs from the source program
contribute blocking clauses.  One SAT call then yields a completion that is
correct on the entire bounded input space (exactly the guarantee Sketch's
bounded model checking provides), which is finally re-checked by testing.

The encoding size is the sum over sequences of the product of the involved
functions' hole-space sizes — the same multiplicative blow-up that makes the
real Sketch encoding intractable on the larger benchmarks, which is the
behaviour Table 2 reports (timeouts on all real-world benchmarks).

Candidate evaluation goes through the shared tester, so it runs on the
configured execution backend; with the compiled backend the per-function
compilation cache (keyed by the immutable function ASTs that
``MemoizedInstantiator`` shares across the assignment product space) means
each distinct hole assignment of a function is compiled once per sketch, not
once per joint combination.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.completion.encoder import SketchEncoder
from repro.completion.instantiate import MemoizedInstantiator
from repro.completion.solver import CompletionResult, CompletionStatistics
from repro.equivalence.invocation import InvocationSequence, SequenceGenerator, SeedSet
from repro.equivalence.tester import (
    BoundedTester,
    TestingInterrupted,
    interrupt_scope,
    make_interrupt_check,
)
from repro.lang.ast import Program
from repro.sat.solver import SatSolver, Status
from repro.sketchgen.sketch_ast import ProgramSketch


class BmcTimeout(Exception):
    """Raised internally when the per-sketch time budget is exhausted."""


@dataclass
class BmcStatistics(CompletionStatistics):
    """Extends the completion counters with encoding-size counters."""

    sequences_encoded: int = 0
    combinations_evaluated: int = 0
    blocking_clauses: int = 0


class BmcCompleter:
    """Monolithic CEGIS-style sketch completion (the Sketch baseline)."""

    def __init__(
        self,
        source_program: Program,
        *,
        tester: BoundedTester | None = None,
        verifier=None,
        consistency_constraints: bool = True,
        max_iterations: Optional[int] = None,
        time_limit: Optional[float] = 120.0,
        max_combinations_per_sequence: int = 200000,
    ):
        self.source_program = source_program
        self.tester = tester or BoundedTester(source_program)
        self.verifier = verifier
        self.consistency_constraints = consistency_constraints
        self.max_iterations = max_iterations
        self.time_limit = time_limit
        self.max_combinations_per_sequence = max_combinations_per_sequence

    # -------------------------------------------------------------------- run
    def complete(
        self,
        sketch: ProgramSketch,
        *,
        deadline: Optional[float] = None,
        cancel: Optional[threading.Event] = None,
        on_reject: Optional[Callable[[int, Optional[InvocationSequence]], None]] = None,
    ) -> CompletionResult:
        """Complete one sketch (same session interface as ``SketchCompleter``).

        The caller's *deadline* / *cancel* are folded into the baseline's own
        time-budget check, which already guards both the monolithic encoding
        and the CEGIS loop.
        """
        stats = BmcStatistics()
        started = time.perf_counter()
        encoder = SketchEncoder(sketch, consistency_constraints=self.consistency_constraints)
        encoding = encoder.encode()
        solver = SatSolver()
        solver.add_cnf(encoding.cnf)

        holes_by_function = {
            name: holes for name, holes in sketch.holes_by_function().items()
        }
        # The monolithic unrolling instantiates one candidate per joint hole
        # assignment; memoized per-function instantiation shares the (immutable)
        # function ASTs across that product space.
        instantiator = MemoizedInstantiator(sketch)

        interrupted = make_interrupt_check(deadline, cancel)

        def check_time() -> None:
            if self.time_limit is not None and time.perf_counter() - started > self.time_limit:
                raise BmcTimeout()
            if interrupted is not None and interrupted():
                raise TestingInterrupted()

        with interrupt_scope(self.tester, self.verifier, interrupted):
            try:
                self._encode_bounded_semantics(
                    sketch, encoding, solver, holes_by_function, instantiator, stats, check_time
                )
            except BmcTimeout:
                return CompletionResult(None, stats)
            except TestingInterrupted:
                return CompletionResult(None, stats, interrupted=True)

            # CEGIS outer loop: the monolithic encoding covers the bounded input
            # space; any surviving model is re-validated by the tester and, if a
            # deeper counterexample is found, its model is blocked and we repeat.
            while True:
                if self.max_iterations is not None and stats.iterations >= self.max_iterations:
                    return CompletionResult(None, stats)
                try:
                    check_time()
                except BmcTimeout:
                    return CompletionResult(None, stats)
                except TestingInterrupted:
                    return CompletionResult(None, stats, interrupted=True)

                sat_started = time.perf_counter()
                result = solver.solve()
                stats.sat_time += time.perf_counter() - sat_started
                if result.status is not Status.SAT:
                    return CompletionResult(None, stats)
                stats.iterations += 1
                assert result.model is not None
                assignment = encoding.model_to_assignment(result.model)
                candidate = instantiator.instantiate(assignment)

                test_started = time.perf_counter()
                try:
                    failing = self.tester.find_failing_input(candidate)
                except TestingInterrupted:
                    stats.test_time += time.perf_counter() - test_started
                    return CompletionResult(None, stats, interrupted=True)
                stats.test_time += time.perf_counter() - test_started
                if failing is None and self.verifier is not None:
                    try:
                        verdict = self.verifier.verify(self.source_program, candidate)
                    except TestingInterrupted:
                        # Verification cut short: the candidate is NOT
                        # accepted (its deep check never finished).
                        return CompletionResult(None, stats, interrupted=True)
                    if not verdict.equivalent:
                        failing = verdict.counterexample
                        # Pool deep counterexamples exactly like the MFI completer
                        # so screening also accelerates the baseline runs.
                        if failing is not None and self.tester.pool is not None:
                            self.tester.pool.add(failing)
                if failing is None:
                    return CompletionResult(candidate, stats)
                if on_reject is not None:
                    on_reject(stats.iterations, failing)
                # Block the complete model (plain CEGIS, no MFI learning).
                clause = encoding.blocking_clause(assignment, list(assignment))
                solver.add_clause(clause)
                stats.blocked_clauses += 1

    # --------------------------------------------------------------- encoding
    def _encode_bounded_semantics(
        self,
        sketch: ProgramSketch,
        encoding,
        solver: SatSolver,
        holes_by_function: dict,
        instantiator: MemoizedInstantiator,
        stats: BmcStatistics,
        check_time,
    ) -> None:
        """Unroll the sketch semantics over the bounded test-input space."""
        generator = SequenceGenerator(
            programs=[self.source_program],
            seeds=self.tester.seeds,
            max_updates=self.tester.max_updates,
            relevance_filter=self.tester.relevance_filter,
        )
        for sequence in generator.sequences():
            check_time()
            stats.sequences_encoded += 1
            functions = list(dict.fromkeys(name for name, _ in sequence))
            holes = []
            for name in functions:
                holes.extend(holes_by_function.get(name, ()))
            if not holes:
                continue
            domains = [range(hole.size) for hole in holes]
            combinations = 1
            for hole in holes:
                combinations *= hole.size
            if combinations > self.max_combinations_per_sequence:
                # The monolithic encoding for this sequence alone is too large;
                # the real Sketch encoding would be as well.  Give up (timeout).
                raise BmcTimeout()
            for combo in itertools.product(*domains):
                check_time()
                stats.combinations_evaluated += 1
                partial = {hole.index: position for hole, position in zip(holes, combo)}
                assignment = dict(partial)
                for hole in sketch.holes():
                    assignment.setdefault(hole.index, 0)
                candidate = instantiator.instantiate(assignment)
                if self.tester.differs_on(candidate, sequence):
                    clause = encoding.blocking_clause(partial, list(partial))
                    solver.add_clause(clause)
                    stats.blocking_clauses += 1
