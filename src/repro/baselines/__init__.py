"""Baseline synthesizers used by the Table 2 and Table 3 comparisons."""

from repro.baselines.bmc import BmcCompleter, BmcStatistics

__all__ = ["BmcCompleter", "BmcStatistics"]
