"""Lazy enumeration of value correspondences in decreasing order of likelihood.

Section 4.2 of the paper encodes candidate value correspondences as a partial
weighted MaxSAT problem:

* one boolean variable ``x_ij`` per (source attribute, target attribute) pair,
* hard constraints: type compatibility, and every attribute queried by the
  source program must map to at least one target attribute,
* soft constraints: ``x_ij`` with weight ``sim(a_i, a'_j)`` and the
  one-to-one preference ``x_ij -> ¬x_ik`` with weight ``α``,
* blocking clauses for previously rejected correspondences.

This module provides two interchangeable engines:

``MaxSatVcEnumerator``
    Builds the full encoding and solves it with :mod:`repro.maxsat`.  Faithful
    to the paper but only practical for small schemas (it is used by the test
    suite to cross-validate the second engine).

``FactoredVcEnumerator``
    Exploits the fact that the objective and all hard constraints decompose
    per source attribute (only blocking clauses couple attributes), so the
    MaxSAT optimum can be enumerated exactly with a best-first search over the
    product of per-attribute candidate streams.  This is the default engine
    and scales to the real-world benchmark schemas.

Both engines yield :class:`ValueCorrespondence` objects in non-increasing
order of objective value and never repeat a correspondence, which subsumes
the paper's blocking-clause mechanism.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.correspondence.similarity import DEFAULT_ALPHA, name_similarity
from repro.correspondence.value_corr import ValueCorrespondence
from repro.datamodel.schema import Attribute, Schema
from repro.datamodel.types import compatible
from repro.lang.ast import Program
from repro.lang.visitors import queried_attributes
from repro.maxsat.wpmaxsat import WPMaxSatSolver


class VcEnumerationError(Exception):
    """Raised when no value correspondence can satisfy the hard constraints."""


@dataclass
class VcCandidate:
    """A value correspondence together with its MaxSAT objective value."""

    correspondence: ValueCorrespondence
    weight: int


# --------------------------------------------------------------------------------------
#  Shared encoding helpers
# --------------------------------------------------------------------------------------
def compatible_targets(
    source: Schema, target: Schema, attr: Attribute, alpha: int = DEFAULT_ALPHA
) -> list[tuple[Attribute, int]]:
    """Type-compatible target attributes with their similarity weight, best first.

    The MaxSAT objective only depends on attribute-name similarity (as in the
    paper); ties are broken deterministically by table-name similarity and
    then lexicographically, so that e.g. ``Instructor.InstId`` is preferred
    over ``Class.InstId`` as the image of ``Instructor.InstId``.
    """
    source_type = source.type_of(attr)
    scored: list[tuple[Attribute, int]] = []
    for candidate in target.attributes():
        if compatible(source_type, target.type_of(candidate)):
            scored.append((candidate, name_similarity(attr.name, candidate.name, alpha)))
    scored.sort(
        key=lambda pair: (
            -pair[1],
            -name_similarity(attr.table, pair[0].table, alpha),
            str(pair[0]),
        )
    )
    return scored


# --------------------------------------------------------------------------------------
#  Factored (decomposition-based) engine
# --------------------------------------------------------------------------------------
class _RowCandidates:
    """Best-first enumeration of mapping subsets for one source attribute.

    The per-attribute objective of a subset ``S`` of target attributes is
    ``Σ_{j∈S} sim_j − α·C(|S|, 2)`` (similarity reward minus the one-to-one
    penalty for every violated preference clause).  Subsets are produced
    lazily, in non-increasing objective order.
    """

    def __init__(
        self,
        attribute: Attribute,
        targets: Sequence[tuple[Attribute, int]],
        *,
        required: bool,
        alpha: int,
        max_fanout: Optional[int] = None,
    ):
        self.attribute = attribute
        self.targets = list(targets)
        self.required = required
        self.alpha = alpha
        self.max_fanout = max_fanout
        self._produced: list[tuple[int, frozenset[Attribute]]] = []
        self._heap: list[tuple[int, tuple[int, ...]]] = []
        self._seen: set[tuple[int, ...]] = set()
        if not required:
            self._push(())
        for index in range(len(self.targets)):
            self._push((index,))

    @property
    def feasible(self) -> bool:
        return bool(self._heap) or bool(self._produced)

    def _weight(self, indices: tuple[int, ...]) -> int:
        reward = sum(self.targets[i][1] for i in indices)
        size = len(indices)
        return reward - self.alpha * (size * (size - 1) // 2)

    def _push(self, indices: tuple[int, ...]) -> None:
        if indices in self._seen:
            return
        if self.max_fanout is not None and len(indices) > self.max_fanout:
            return
        self._seen.add(indices)
        heapq.heappush(self._heap, (-self._weight(indices), indices))

    def get(self, rank: int) -> Optional[tuple[int, frozenset[Attribute]]]:
        """The *rank*-th best subset (0-based) or ``None`` if exhausted."""
        while len(self._produced) <= rank and self._heap:
            neg_weight, indices = heapq.heappop(self._heap)
            subset = frozenset(self.targets[i][0] for i in indices)
            self._produced.append((-neg_weight, subset))
            if indices:
                last = indices[-1]
                if last + 1 < len(self.targets):
                    # Replace the last element with the next-most-similar target,
                    # or extend the subset with it; both successors have weight
                    # no larger than the current subset, so best-first order is
                    # preserved.
                    self._push(indices[:-1] + (last + 1,))
                    self._push(indices + (last + 1,))
        if rank < len(self._produced):
            return self._produced[rank]
        return None


class FactoredVcEnumerator:
    """Exact best-first enumeration of the MaxSAT encoding, per-attribute factored."""

    def __init__(
        self,
        source_program: Program,
        target_schema: Schema,
        *,
        alpha: int = DEFAULT_ALPHA,
        max_fanout: Optional[int] = 2,
    ):
        self.source = source_program.schema
        self.target = target_schema
        self.alpha = alpha
        self.queried = queried_attributes(source_program)
        self.rows: list[_RowCandidates] = []
        for attr in self.source.attributes():
            targets = compatible_targets(self.source, self.target, attr, alpha)
            required = attr in self.queried
            row = _RowCandidates(
                attr, targets, required=required, alpha=alpha, max_fanout=max_fanout
            )
            if required and not row.feasible:
                raise VcEnumerationError(
                    f"queried attribute {attr} has no type-compatible target attribute"
                )
            self.rows.append(row)

    def candidates(self) -> Iterator[VcCandidate]:
        """Yield all value correspondences in non-increasing objective order."""
        if not self.rows:
            yield VcCandidate(ValueCorrespondence(self.source, self.target, {}), 0)
            return
        start = tuple(0 for _ in self.rows)
        initial = self._state_weight(start)
        if initial is None:
            return
        heap: list[tuple[int, tuple[int, ...]]] = [(-initial, start)]
        visited: set[tuple[int, ...]] = {start}
        while heap:
            neg_weight, state = heapq.heappop(heap)
            yield VcCandidate(self._state_to_vc(state), -neg_weight)
            for row_index in range(len(self.rows)):
                successor = state[:row_index] + (state[row_index] + 1,) + state[row_index + 1 :]
                if successor in visited:
                    continue
                weight = self._state_weight(successor)
                if weight is None:
                    continue
                visited.add(successor)
                heapq.heappush(heap, (-weight, successor))

    def _state_weight(self, state: tuple[int, ...]) -> Optional[int]:
        total = 0
        for row, rank in zip(self.rows, state):
            entry = row.get(rank)
            if entry is None:
                return None
            total += entry[0]
        return total

    def _state_to_vc(self, state: tuple[int, ...]) -> ValueCorrespondence:
        mapping = {}
        for row, rank in zip(self.rows, state):
            entry = row.get(rank)
            assert entry is not None
            mapping[row.attribute] = entry[1]
        return ValueCorrespondence(self.source, self.target, mapping)


# --------------------------------------------------------------------------------------
#  Full MaxSAT engine (faithful encoding, for small schemas and cross-validation)
# --------------------------------------------------------------------------------------
class MaxSatVcEnumerator:
    """Value-correspondence enumeration via the full partial weighted MaxSAT encoding."""

    def __init__(
        self,
        source_program: Program,
        target_schema: Schema,
        *,
        alpha: int = DEFAULT_ALPHA,
    ):
        self.source = source_program.schema
        self.target = target_schema
        self.alpha = alpha
        self.queried = queried_attributes(source_program)
        self.solver = WPMaxSatSolver()
        self.variables: dict[tuple[Attribute, Attribute], int] = {}
        self._build_encoding()

    def _build_encoding(self) -> None:
        source_attrs = self.source.attributes()
        for attr in source_attrs:
            targets = compatible_targets(self.source, self.target, attr, self.alpha)
            literals = []
            for target_attr, weight in targets:
                var = self.solver.new_variable()
                self.variables[(attr, target_attr)] = var
                literals.append(var)
                if weight > 0:
                    self.solver.add_soft([var], weight)
                elif weight < 0:
                    # A negative-similarity mapping is penalized by rewarding
                    # its absence (shifts the objective by a constant).
                    self.solver.add_soft([-var], -weight)
            if attr in self.queried:
                if not literals:
                    raise VcEnumerationError(
                        f"queried attribute {attr} has no type-compatible target attribute"
                    )
                self.solver.add_hard(literals)
            # One-to-one preference soft clauses x_ij -> ¬x_ik.
            for j in range(len(literals)):
                for k in range(j + 1, len(literals)):
                    self.solver.add_soft([-literals[j], -literals[k]], self.alpha)

    def _model_to_vc(self, model: dict[int, bool]) -> ValueCorrespondence:
        mapping: dict[Attribute, set[Attribute]] = {}
        for (src, dst), var in self.variables.items():
            if model.get(var, False):
                mapping.setdefault(src, set()).add(dst)
        return ValueCorrespondence(self.source, self.target, mapping)

    def candidates(self) -> Iterator[VcCandidate]:
        while True:
            result = self.solver.solve()
            if not result.satisfiable or result.model is None:
                return
            vc = self._model_to_vc(result.model)
            yield VcCandidate(vc, result.satisfied_weight)
            # Block exactly this assignment of the x variables (the paper's ¬A).
            blocking = []
            for var in self.variables.values():
                value = result.model.get(var, False)
                blocking.append(-var if value else var)
            if not blocking:
                return
            self.solver.add_hard(blocking)


# --------------------------------------------------------------------------------------
#  Public facade
# --------------------------------------------------------------------------------------
class ValueCorrespondenceEnumerator:
    """The ``NextValueCorr`` oracle of Algorithm 1."""

    def __init__(
        self,
        source_program: Program,
        target_schema: Schema,
        *,
        alpha: int = DEFAULT_ALPHA,
        engine: str = "auto",
        max_fanout: Optional[int] = 2,
        maxsat_variable_limit: int = 12,
    ):
        if engine not in ("auto", "factored", "maxsat"):
            raise ValueError(f"unknown engine {engine!r}")
        if engine == "auto":
            pairs = 0
            for attr in source_program.schema.attributes():
                pairs += len(
                    compatible_targets(source_program.schema, target_schema, attr, alpha)
                )
            engine = "maxsat" if pairs <= maxsat_variable_limit else "factored"
        self.engine_name = engine
        if engine == "maxsat":
            self._engine = MaxSatVcEnumerator(source_program, target_schema, alpha=alpha)
        else:
            self._engine = FactoredVcEnumerator(
                source_program, target_schema, alpha=alpha, max_fanout=max_fanout
            )
        self._iterator = self._engine.candidates()
        self.produced = 0

    def next_value_corr(self) -> Optional[VcCandidate]:
        """The next-most-likely value correspondence, or ``None`` when exhausted."""
        try:
            candidate = next(self._iterator)
        except StopIteration:
            return None
        self.produced += 1
        return candidate

    def __iter__(self) -> Iterator[VcCandidate]:
        while True:
            candidate = self.next_value_corr()
            if candidate is None:
                return
            yield candidate
