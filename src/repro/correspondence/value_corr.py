"""Value correspondences (Section 4.1 / 4.2 of the paper).

A value correspondence Φ maps every attribute of the source schema to a
(possibly empty) set of attributes of the target schema: ``T'.b ∈ Φ(T.a)``
means column ``a`` of source table ``T`` stores the same entries as column
``b`` of target table ``T'``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.datamodel.schema import Attribute, Schema


class ValueCorrespondence:
    """An immutable mapping from source attributes to sets of target attributes."""

    def __init__(
        self,
        source: Schema,
        target: Schema,
        mapping: Mapping[Attribute, Iterable[Attribute]],
    ):
        self.source = source
        self.target = target
        normalized: dict[Attribute, frozenset[Attribute]] = {}
        for attr in source.attributes():
            normalized[attr] = frozenset(mapping.get(attr, frozenset()))
        for attr, image in mapping.items():
            if attr not in normalized:
                raise ValueError(f"{attr} is not an attribute of the source schema")
        for attr, image in normalized.items():
            for target_attr in image:
                if not target.has_attribute(target_attr):
                    raise ValueError(f"{target_attr} is not an attribute of the target schema")
        self._mapping = normalized

    # ----------------------------------------------------------------- lookup
    def image(self, attr: Attribute) -> frozenset[Attribute]:
        """Φ(attr); empty set means the attribute was dropped."""
        if attr not in self._mapping:
            raise KeyError(f"{attr} is not an attribute of the source schema")
        return self._mapping[attr]

    def __getitem__(self, attr: Attribute) -> frozenset[Attribute]:
        return self.image(attr)

    def is_mapped(self, attr: Attribute) -> bool:
        return bool(self._mapping.get(attr))

    def mapped_attributes(self) -> list[Attribute]:
        return [attr for attr, image in self._mapping.items() if image]

    def dropped_attributes(self) -> list[Attribute]:
        return [attr for attr, image in self._mapping.items() if not image]

    def items(self) -> Iterator[tuple[Attribute, frozenset[Attribute]]]:
        return iter(self._mapping.items())

    def target_attributes(self) -> set[Attribute]:
        """All target attributes that are the image of some source attribute."""
        result: set[Attribute] = set()
        for image in self._mapping.values():
            result |= image
        return result

    def inverse(self) -> dict[Attribute, set[Attribute]]:
        """target attribute -> set of source attributes mapping to it."""
        result: dict[Attribute, set[Attribute]] = {}
        for attr, image in self._mapping.items():
            for target_attr in image:
                result.setdefault(target_attr, set()).add(attr)
        return result

    # ------------------------------------------------------------------- misc
    def key(self) -> frozenset[tuple[Attribute, frozenset[Attribute]]]:
        """A hashable identity used for blocking / deduplication."""
        return frozenset(self._mapping.items())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ValueCorrespondence) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def describe(self, *, include_identity: bool = False) -> str:
        """Human-readable rendering (non-identity mappings by default)."""
        lines = []
        for attr, image in sorted(self._mapping.items()):
            if not image:
                lines.append(f"{attr} -> (dropped)")
                continue
            rendered = ", ".join(str(t) for t in sorted(image))
            is_identity = len(image) == 1 and next(iter(image)).name == attr.name
            if include_identity or not is_identity:
                lines.append(f"{attr} -> {rendered}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        mapped = sum(1 for _, image in self._mapping.items() if image)
        return f"ValueCorrespondence(mapped={mapped}, dropped={len(self._mapping) - mapped})"


def identity_correspondence(source: Schema, target: Schema) -> ValueCorrespondence:
    """Map every source attribute to the same-named attribute of the target.

    Attributes with no same-named, same-typed counterpart are dropped.  This
    is a convenience used by tests and by the quickstart example.
    """
    mapping: dict[Attribute, set[Attribute]] = {}
    for attr in source.attributes():
        candidates = set()
        for table in target:
            if attr.name in table.columns and table.columns[attr.name] == source.type_of(attr):
                candidates.add(Attribute(table.name, attr.name))
        if candidates:
            # Prefer the same table name when available, otherwise keep all.
            same_table = {c for c in candidates if c.table == attr.table}
            mapping[attr] = same_table or candidates
    return ValueCorrespondence(source, target, mapping)
