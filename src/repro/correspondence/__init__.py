"""Value correspondences and their lazy MaxSAT-based enumeration."""

from repro.correspondence.enumerator import (
    FactoredVcEnumerator,
    MaxSatVcEnumerator,
    ValueCorrespondenceEnumerator,
    VcCandidate,
    VcEnumerationError,
    compatible_targets,
)
from repro.correspondence.similarity import DEFAULT_ALPHA, levenshtein, name_similarity, normalized_similarity
from repro.correspondence.value_corr import ValueCorrespondence, identity_correspondence

__all__ = [
    "DEFAULT_ALPHA",
    "FactoredVcEnumerator",
    "MaxSatVcEnumerator",
    "ValueCorrespondence",
    "ValueCorrespondenceEnumerator",
    "VcCandidate",
    "VcEnumerationError",
    "compatible_targets",
    "identity_correspondence",
    "levenshtein",
    "name_similarity",
    "normalized_similarity",
]
