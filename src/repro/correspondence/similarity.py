"""Attribute-name similarity used to weight value-correspondence candidates.

The paper instantiates ``sim(a, a')`` as ``α − Levenshtein(a, a')`` for a
fixed constant ``α``.  We implement the standard Levenshtein edit distance
plus the derived similarity scores used by the MaxSAT encoding.
"""

from __future__ import annotations

from functools import lru_cache


#: The fixed constant α of the paper's similarity metric (and the weight of
#: the one-to-one preference soft clauses).
DEFAULT_ALPHA = 8


def levenshtein(left: str, right: str) -> int:
    """The classic edit distance (insertions, deletions, substitutions)."""
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    previous = list(range(len(right) + 1))
    for i, lchar in enumerate(left, start=1):
        current = [i]
        for j, rchar in enumerate(right, start=1):
            cost = 0 if lchar == rchar else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost))
        previous = current
    return previous[-1]


@lru_cache(maxsize=65536)
def _cached_levenshtein(left: str, right: str) -> int:
    return levenshtein(left, right)


def name_similarity(left: str, right: str, alpha: int = DEFAULT_ALPHA) -> int:
    """Similarity score used by the value-correspondence encoding.

    The paper instantiates ``sim`` as ``α − Levenshtein``.  We keep that shape
    with two refinements that make the first enumerated correspondence match
    the intended one on realistic schemas:

    * the slope is 2 (``α − 2·Levenshtein``), so clearly unrelated names score
      negative and are not speculatively mapped;
    * if one name contains the other (the common rename pattern of adding a
      prefix or suffix, e.g. ``email`` → ``email_address``), the score is
      ``α − 1`` regardless of the edit distance.

    The weight of the one-to-one preference clauses stays α, as in the paper.
    """
    a, b = left.lower(), right.lower()
    if a == b:
        return alpha
    if len(a) >= 3 and len(b) >= 3 and (a in b or b in a):
        return alpha - 1
    return alpha - 2 * _cached_levenshtein(a, b)


def normalized_similarity(left: str, right: str) -> float:
    """Edit similarity scaled to [0, 1]; useful for reporting and tests."""
    longest = max(len(left), len(right))
    if longest == 0:
        return 1.0
    return 1.0 - _cached_levenshtein(left.lower(), right.lower()) / longest
