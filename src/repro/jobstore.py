"""Append-only JSONL job store: the persistence behind resumable batches.

The :class:`~repro.service.MigrationService` appends one JSON line per job
lifecycle transition:

* ``{"type": "submitted", ...}`` — written at submission time.  Carries the
  :meth:`~repro.service.JobHandle.to_dict` snapshot (status ``pending``, no
  result), the job's ``priority``/``deadline``, and a ``spec`` field — the
  pickled :class:`~repro.service.MigrationJob` (base64) so an interrupted
  batch can be reconstructed by a later process;
* ``{"type": "running", ...}`` — written when the job is dispatched (a job
  whose *last* record is ``running`` was interrupted mid-flight and is
  rerun on resume);
* ``{"type": "settled", ...}`` — the terminal :meth:`JobHandle.to_dict`
  snapshot, result payload included.

The store is **append-only**: resuming never rewrites history, it appends
the resumed run's records to the same file.  The latest record per job name
wins when loading; a torn trailing line (the writing process died mid-write)
is ignored.  Job names are the keys — resubmitting a name overwrites the
earlier job's standing on load, so batch producers should keep names unique.

``spec`` payloads are Python pickles: the store is a local operational
artifact (like a WAL), not an interchange format — do not load stores from
untrusted sources.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import threading
from dataclasses import dataclass, field
from typing import Any, Optional

#: ``JobStatus`` values that mean the job will never run again.
TERMINAL_STATUSES = frozenset({"done", "failed", "cancelled", "expired"})


def encode_job(job: Any) -> str:
    """Pickle a job spec into the store's base64 ``spec`` field."""
    return base64.b64encode(pickle.dumps(job)).decode("ascii")


def decode_job(spec: str) -> Any:
    """Rebuild a job spec from a ``spec`` field (trusted local stores only)."""
    return pickle.loads(base64.b64decode(spec.encode("ascii")))


@dataclass
class StoredJob:
    """One job's standing after replaying the store."""

    name: str
    #: The latest lifecycle record (its ``status`` decides resumability).
    last: dict = field(default_factory=dict)
    #: The pickled job spec from the submission record, if any.
    spec: Optional[str] = None

    @property
    def status(self) -> str:
        return self.last.get("status", "pending")

    @property
    def settled(self) -> bool:
        return self.status in TERMINAL_STATUSES

    @property
    def resumable(self) -> bool:
        """Unfinished and reconstructable: the job to rerun on resume.

        Includes ``running`` standings — after a crash, a job interrupted
        mid-run is exactly what resume must rerun.  Live-service adoption
        uses the stricter :attr:`deferred` instead.
        """
        return not self.settled and self.spec is not None

    @property
    def deferred(self) -> bool:
        """Submitted but never dispatched: safe for a live service to adopt.

        A ``running`` standing is excluded — on a *shared* store it means
        some other live service currently owns the job, and adopting it
        would double-execute; only a post-crash :meth:`MigrationService.resume`
        may claim running jobs (the crashed owner is gone by definition).
        """
        return self.status == "pending" and self.spec is not None


class JobStore:
    """Append-only JSONL persistence for one service's job lifecycle."""

    def __init__(self, path: str | os.PathLike):
        self.path = str(path)
        self._lock = threading.Lock()

    # ---------------------------------------------------------------- writing
    def append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())

    def record_submitted(self, handle, job) -> None:
        """Persist a submission: the pending snapshot plus the rebuild spec."""
        record = handle.to_dict(include_program=False)
        record.update(
            type="submitted",
            priority=job.priority,
            deadline=job.deadline,
            spec=encode_job(job),
        )
        self.append(record)

    def record_running(self, handle) -> None:
        self.append({"type": "running", "job": handle.job.name, "status": "running"})

    def record_settled(self, handle, *, include_program: bool = True) -> None:
        record = handle.to_dict(include_program=include_program)
        record["type"] = "settled"
        self.append(record)

    # ---------------------------------------------------------------- reading
    @classmethod
    def load(cls, path: str | os.PathLike) -> dict[str, StoredJob]:
        """Replay a store into per-job standings (latest record wins).

        A path with no store file yet is an empty store, not an error — the
        file only springs into existence at the first submission, and
        callers like ``adopt_unfinished`` legitimately scan before that.
        """
        jobs: dict[str, StoredJob] = {}
        if not os.path.exists(path):
            return jobs
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A torn tail write of a process that died mid-append;
                    # everything before it is intact (one record per line).
                    continue
                name = record.get("job")
                if not isinstance(name, str):
                    continue
                entry = jobs.setdefault(name, StoredJob(name))
                spec = record.get("spec")
                if spec is not None:
                    entry.spec = spec
                entry.last = record
        return jobs
