"""Append-only JSONL job store: the persistence behind resumable batches.

The :class:`~repro.service.MigrationService` appends one JSON line per job
lifecycle transition:

* ``{"type": "submitted", ...}`` — written at submission time.  Carries the
  :meth:`~repro.service.JobHandle.to_dict` snapshot (status ``pending``, no
  result), the job's ``priority``/``deadline``, and a ``spec`` field — the
  pickled :class:`~repro.service.MigrationJob` (base64, prefixed with a
  format version) so an interrupted batch can be reconstructed by a later
  process;
* ``{"type": "running", ...}`` — written when the job is dispatched (a job
  whose *last* record is ``running`` was interrupted mid-flight and is
  rerun on resume);
* ``{"type": "settled", ...}`` — the terminal :meth:`JobHandle.to_dict`
  snapshot, result payload included.

Under distributed execution the store is also the **lease journal** — the
source of truth for which worker owns which job right now:

* ``{"type": "leased", "job": ..., "worker": ..., "expiry": ...}`` — the
  scheduler's fleet assigned the job to one remote worker, with the wall
  clock instant the lease expires unless renewed;
* ``{"type": "lease_heartbeat", ...}`` — the worker's heartbeat renewed the
  lease (new ``expiry``);
* ``{"type": "released", "outcome": "done" | "failed" | "lost", ...}`` —
  the lease ended: the worker returned a result, or it vanished
  (``"lost"``) and the fleet will re-lease the job elsewhere.  A crashed
  coordinator therefore leaves a journal whose trailing ``leased`` lines
  without a matching ``released`` identify exactly the work that was in
  flight.

Lease lines are *annotations*: they never change a job's lifecycle standing
(:attr:`StoredJob.status` still comes from the latest lifecycle record);
:meth:`JobStore.load` surfaces the latest lease line per job as
:attr:`StoredJob.lease`.

The store is **append-only**: resuming never rewrites history, it appends
the resumed run's records to the same file.  The latest record per job name
wins when loading; a torn trailing line (the writing process died mid-write)
is ignored.  Job names are the keys — resubmitting a name overwrites the
earlier job's standing on load, so batch producers should keep names unique.
:meth:`JobStore.compact` is the one sanctioned rewrite: it folds settled
generations into one snapshot line each (atomically, via a temp file and
``os.replace``) without changing any job's standing.

``spec`` payloads are Python pickles: the store is a local operational
artifact (like a WAL), not an interchange format — do not load stores from
untrusted sources.  Specs are versioned (``"<version>:<base64>"``) so that
resuming a store written by an incompatible code generation fails loudly in
:func:`decode_job` instead of unpickling garbage.
"""

from __future__ import annotations

import base64
import binascii
import json
import os
import pickle
import threading
from dataclasses import dataclass, field
from typing import Any, Optional

#: ``JobStatus`` values that mean the job will never run again.
TERMINAL_STATUSES = frozenset({"done", "failed", "cancelled", "expired", "quarantined"})

#: Record types that annotate work assignment without changing lifecycle
#: standing (see the module docstring's lease journal section).
LEASE_RECORD_TYPES = frozenset({"leased", "lease_heartbeat", "released"})

#: Version written into new ``spec`` fields.  Bump when the pickled
#: MigrationJob shape changes incompatibly; old stores then fail loudly on
#: resume instead of resurrecting half-compatible jobs.
SPEC_FORMAT_VERSION = 2

#: Versions this code generation can still decode.  Version 1 is the
#: unprefixed bare-base64 format of earlier stores (no colon in the base64
#: alphabet, so the two formats cannot be confused).
SUPPORTED_SPEC_VERSIONS = frozenset({1, SPEC_FORMAT_VERSION})


class JobStoreFormatError(RuntimeError):
    """A ``spec`` field is from an incompatible format version or corrupt."""


def encode_job(job: Any) -> str:
    """Pickle a job spec into the store's versioned ``spec`` field."""
    encoded = base64.b64encode(pickle.dumps(job)).decode("ascii")
    return f"{SPEC_FORMAT_VERSION}:{encoded}"


def decode_job(spec: str) -> Any:
    """Rebuild a job spec from a ``spec`` field (trusted local stores only).

    Raises :class:`JobStoreFormatError` for an unsupported format version or
    a corrupt payload — loudly, because silently unpickling a spec written
    by an incompatible code generation is how resume corrupts a batch.
    """
    prefix, sep, rest = spec.partition(":")
    if sep and prefix.isdigit():
        version, encoded = int(prefix), rest
    else:
        version, encoded = 1, spec
    if version not in SUPPORTED_SPEC_VERSIONS:
        raise JobStoreFormatError(
            f"job spec format v{version} is not supported by this code "
            f"generation (supported: {sorted(SUPPORTED_SPEC_VERSIONS)}); "
            f"rerun the batch instead of resuming it"
        )
    try:
        return pickle.loads(base64.b64decode(encoded.encode("ascii"), validate=True))
    except (binascii.Error, ValueError, pickle.UnpicklingError, EOFError) as error:
        raise JobStoreFormatError(f"job spec payload is corrupt: {error}") from error


@dataclass
class StoredJob:
    """One job's standing after replaying the store."""

    name: str
    #: The latest lifecycle record (its ``status`` decides resumability).
    last: dict = field(default_factory=dict)
    #: The pickled job spec from the submission record, if any.
    spec: Optional[str] = None
    #: The latest lease-journal record, if any (``leased`` /
    #: ``lease_heartbeat`` / ``released``) — purely informational.
    lease: Optional[dict] = None

    @property
    def status(self) -> str:
        return self.last.get("status", "pending")

    @property
    def settled(self) -> bool:
        return self.status in TERMINAL_STATUSES

    @property
    def resumable(self) -> bool:
        """Unfinished and reconstructable: the job to rerun on resume.

        Includes ``running`` standings — after a crash, a job interrupted
        mid-run is exactly what resume must rerun.  Live-service adoption
        uses the stricter :attr:`deferred` instead.
        """
        return not self.settled and self.spec is not None

    @property
    def deferred(self) -> bool:
        """Submitted but never dispatched: safe for a live service to adopt.

        A ``running`` standing is excluded — on a *shared* store it means
        some other live service currently owns the job, and adopting it
        would double-execute; only a post-crash :meth:`MigrationService.resume`
        may claim running jobs (the crashed owner is gone by definition).
        """
        return self.status == "pending" and self.spec is not None


class JobStore:
    """Append-only JSONL persistence for one service's job lifecycle.

    ``fsync=False`` trades the flush-to-platter guarantee for append
    latency — reasonable for lease journals on ephemeral coordinators,
    wrong for stores a batch must survive power loss through.
    """

    def __init__(self, path: str | os.PathLike, *, fsync: bool = True):
        self.path = str(path)
        self.fsync = fsync
        self._lock = threading.Lock()

    # ---------------------------------------------------------------- writing
    def append(self, record: dict) -> None:
        """Atomically append one record line.

        One ``write()`` call per record (newline included) keeps concurrent
        appenders from interleaving partial lines — POSIX ``O_APPEND``
        writes are atomic with respect to each other — and a crash mid-write
        tears at most the final line, which :meth:`load` skips.
        """
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line)
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())

    def record_submitted(self, handle, job) -> None:
        """Persist a submission: the pending snapshot plus the rebuild spec."""
        record = handle.to_dict(include_program=False)
        record.update(
            type="submitted",
            priority=job.priority,
            deadline=job.deadline,
            spec=encode_job(job),
        )
        self.append(record)

    def record_running(self, handle) -> None:
        self.append({"type": "running", "job": handle.job.name, "status": "running"})

    def record_settled(self, handle, *, include_program: bool = True) -> None:
        record = handle.to_dict(include_program=include_program)
        record["type"] = "settled"
        self.append(record)

    # ---------------------------------------------------------- lease journal
    def record_leased(self, job_name: str, worker_id: str, expiry: float) -> None:
        self.append(
            {"type": "leased", "job": job_name, "worker": worker_id, "expiry": expiry}
        )

    def record_lease_heartbeat(self, job_name: str, worker_id: str, expiry: float) -> None:
        self.append(
            {
                "type": "lease_heartbeat",
                "job": job_name,
                "worker": worker_id,
                "expiry": expiry,
            }
        )

    def record_lease_released(self, job_name: str, worker_id: str, outcome: str) -> None:
        self.append(
            {"type": "released", "job": job_name, "worker": worker_id, "outcome": outcome}
        )

    def record_degraded(
        self, from_mode: str, to_mode: str, reason: str, *, jobs: Any = ()
    ) -> None:
        """Journal one degradation-ladder step (fleet -> pool -> inline).

        Batch-wide annotation, not a per-job lifecycle record: it carries a
        ``jobs`` *list* instead of a ``job`` name, so :meth:`load` and
        :meth:`compact` — which key on the string ``job`` field — skip it by
        construction and no job's standing changes.
        """
        self.append(
            {
                "type": "degraded",
                "from": from_mode,
                "to": to_mode,
                "reason": reason,
                "jobs": list(jobs),
            }
        )

    # ---------------------------------------------------------------- reading
    @classmethod
    def load(cls, path: str | os.PathLike) -> dict[str, StoredJob]:
        """Replay a store into per-job standings (latest record wins).

        A path with no store file yet is an empty store, not an error — the
        file only springs into existence at the first submission, and
        callers like ``adopt_unfinished`` legitimately scan before that.
        Lease-journal records update :attr:`StoredJob.lease` only; a
        trailing ``leased`` line must not make a ``settled`` job look live.
        """
        jobs: dict[str, StoredJob] = {}
        if not os.path.exists(path):
            return jobs
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A torn tail write of a process that died mid-append;
                    # everything before it is intact (one record per line).
                    continue
                name = record.get("job")
                if not isinstance(name, str):
                    continue
                entry = jobs.setdefault(name, StoredJob(name))
                if record.get("type") in LEASE_RECORD_TYPES:
                    entry.lease = record
                    continue
                spec = record.get("spec")
                if spec is not None:
                    entry.spec = spec
                entry.last = record
        return jobs

    # ------------------------------------------------------------- compaction
    def compact(self) -> int:
        """Fold settled generations into one snapshot line each.

        Rewrites the store so every **settled** job keeps only its terminal
        record, every unsettled job keeps its latest spec-carrying record
        (plus its latest lifecycle record when that differs), and lease
        lines for settled jobs are dropped (an open lease on an unsettled
        job survives — it is evidence of in-flight work).  The rewrite is
        atomic (temp file + ``os.replace``) and happens under the append
        lock, so concurrent appends serialize against it.  Returns the
        number of lines removed.
        """
        with self._lock:
            if not os.path.exists(self.path):
                return 0
            jobs: dict[str, StoredJob] = {}
            keep_order: dict[str, list[dict]] = {}
            total = 0
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    total += 1
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # the torn tail dies in compaction
                    name = record.get("job")
                    if not isinstance(name, str):
                        continue
                    entry = jobs.setdefault(name, StoredJob(name))
                    bucket = keep_order.setdefault(name, [])
                    if record.get("type") in LEASE_RECORD_TYPES:
                        entry.lease = record
                        continue
                    if record.get("spec") is not None:
                        entry.spec = record["spec"]
                    entry.last = record
                    bucket.append(record)
            lines: list[str] = []
            for name, entry in jobs.items():
                if entry.settled:
                    lines.append(json.dumps(entry.last, sort_keys=True))
                    continue
                history = keep_order.get(name, [])
                spec_record = next(
                    (r for r in reversed(history) if r.get("spec") is not None), None
                )
                if spec_record is not None:
                    lines.append(json.dumps(spec_record, sort_keys=True))
                if entry.last and entry.last is not spec_record:
                    lines.append(json.dumps(entry.last, sort_keys=True))
                if entry.lease is not None and entry.lease.get("type") != "released":
                    lines.append(json.dumps(entry.lease, sort_keys=True))
            swap = self.path + ".compact"
            with open(swap, "w", encoding="utf-8") as handle:
                for line in lines:
                    handle.write(line + "\n")
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
            os.replace(swap, self.path)
            return total - len(lines)
