"""The stable, versioned public API of the repro synthesizer.

``repro.api`` is the compatibility surface for programmatic consumers (the
examples, the eval harness, and service deployments): everything exported
here follows the ``API_VERSION`` contract — additive changes bump the minor
version, breaking changes bump the major version and are called out in
EXPERIMENTS.md.  Internals (``repro.core.*``, ``repro.completion.*``, …)
may be refactored freely between releases; import from this module instead.

Three levels of entry:

* :func:`migrate` — the one-call blocking convenience: a thin drain of a
  session in **every** configuration (sequential or parallel), returning
  byte-identical results to the streaming path.
* :class:`SynthesisSession` — one run as a re-entrant stream of typed
  progress events with cooperative cancellation and a run-wide deadline,
  over **every execution mode**: with ``config.parallel_workers > 1`` the
  session drives the wave-parallel front-end through the unified execution
  layer (:mod:`repro.exec`) and merges the workers' per-attempt event
  streams into one deterministically ordered stream — same event taxonomy,
  same pinned trajectories as the sequential driver.
* :class:`MigrationService` / :class:`MigrationJob` — batches of jobs
  scheduled through the unified execution layer with cross-job artifact
  sharing, priorities, deadlines, live cross-process event streaming and
  mid-job cancellation — plus a persistent :class:`JobStore` (JSONL
  lifecycle log) enabling :meth:`MigrationService.resume`: an interrupted
  batch restarts running only its unfinished jobs.

Version 2.0.0 — "streaming everywhere".  Breaking (the major bump):

* ``SynthesisSession`` no longer ignores ``config.parallel_workers`` — a
  session over a parallel configuration now runs the wave front-end and
  streams merged events (1.x sessions silently ran such configs
  sequentially);
* the separate parallel entry point is gone: ``migrate()`` /
  ``Synthesizer.synthesize`` drain a session in all configurations, and
  ``repro.core.synthesize_parallel`` no longer exists;
* in parallel mode ``on_event`` fires from the event-router thread rather
  than the consuming thread (sequential behaviour is unchanged).

Additive in 2.0.0: ``JobStore`` + ``MigrationService(job_store=...)`` +
``MigrationService.resume(path)`` + ``JobHandle.restored``; queue-transport
backpressure (``max_pending_events``, channel high-water/drop counters);
scheduler crash recovery (bounded per-task retries instead of wholesale
sequential fallback, surfacing as ``JobStatus.FAILED`` after retries
exhaust); ``--scheduler-workers`` eval-harness table runs over the shared
:class:`~repro.exec.WorkScheduler`.

Additive in 2.1.0 — "distributed execution": the socket transport and
remote-worker fleets.  ``MigrationService(workers=["host:port", ...])``
drives jobs on ``python -m repro.worker`` processes (other machines
included) with unchanged streaming/cancellation/retry semantics;
``SynthesisConfig.execution_fleet`` points parallel wave exploration at the
same fleets; :class:`RemoteFleet` is the reusable fleet handle (dial-out or
listening topology).  The job store doubles as the fleet's lease journal
(``leased`` / ``lease_heartbeat`` / ``released`` records), job specs are
format-versioned (incompatible stores fail loudly on resume), and
``JobStore.compact()`` folds settled history into snapshot lines.
``SynthesisResult.to_dict`` gains a ``scheduler`` field exposing
execution-layer counters (crash retries, workers lost, event
high-water/drops) for parallel runs.

Additive in 2.2.0 — "chaos-hardened execution": unified resilience
policies and deterministic fault injection.  :class:`RetryPolicy` /
:class:`TimeoutPolicy` / :class:`ResilienceConfig`
(``SynthesisConfig.resilience``) replace the layer-local retry counters:
jittered exponential backoff on crash retries, optional per-run retry
budgets, and poison-task quarantine (``JobStatus.QUARANTINED`` /
``TaskState.QUARANTINED``) for tasks that repeatedly kill their workers.
The graceful-degradation ladder (fleet -> local pool -> in-process
sequential) finishes batches against dead fleets with identical results;
each rung emits an :class:`ExecutionDegraded` session event and journals a
``degraded`` record to the job store.  :class:`FaultPlan` /
:class:`FaultSpec` (``repro.exec.faults``) inject seeded, reproducible
faults — connection drops, frame truncation/corruption, heartbeat stalls,
slow tasks — at the wire/worker seams (``REPRO_FAULT_PLAN`` env for worker
processes).  ``SynthesisResult.to_dict`` gains a ``resilience`` sub-dict
(``retries`` / ``quarantined_tasks`` / ``degradations`` and, under an
active plan, ``faults_injected``).

Additive in 2.3.0 — "the service front": the async multi-tenant HTTP
server and the indexed store backend.  :mod:`repro.server` serves a
:class:`MigrationService` over asyncio HTTP/1.1 (stdlib; the app is a
minimal ASGI callable) — API-key tenants with per-tenant quotas
(:class:`~repro.server.TenantQuota`: queue depth, concurrent running,
token-bucket submit rate → ``429``), weighted fair scheduling (stride
priorities over the existing scheduler plus the new anti-starvation
``age_after``/``age_step`` aging knobs on :class:`MigrationService` and
``WorkScheduler``), and ``GET /jobs/{id}/events`` SSE streaming of the
typed session events with monotonic ids and gap-free ``Last-Event-ID``
resume, bridged through bounded shed-and-count asyncio queues.  The job
store splits into selectable backends behind one interface
(:func:`open_job_store`): the JSONL log and the new indexed
:class:`SQLiteJobStore` (jobs/events/leases tables, WAL,
tenant/status/fingerprint indexes — ``sqlite:PATH`` or ``*.sqlite`` /
``*.db``), with :func:`migrate_jsonl_to_sqlite` and ``compact()`` parity.
``MigrationService.resume`` now **re-pins** stored specs: format-version
gate, then pin verification against the submission fingerprint — and, for
registry-built jobs (``MigrationJob.workload``), against the *current*
workload registry — settling drifted jobs as the new loud
``JobStatus.INCOMPATIBLE`` terminal status instead of unpickling blind.
``MigrationJob`` gains ``tenant`` and ``workload`` fields (spec format
v3; v1/v2 stores still resume).
"""

from __future__ import annotations

from repro.core.config import SynthesisConfig
from repro.core.result import AttemptRecord, SynthesisResult
from repro.core.session import (
    TERMINAL_EVENTS,
    BudgetExhausted,
    BudgetTimeout,
    Cancelled,
    CandidateRejected,
    ExecutionDegraded,
    SessionEvent,
    SketchGenerated,
    SketchRejected,
    Solved,
    SynthesisSession,
    VcSelected,
)
from repro.core.synthesizer import Synthesizer, migrate
from repro.exec.faults import FaultPlan, FaultSpec
from repro.exec.policy import ResilienceConfig, RetryPolicy, TimeoutPolicy
from repro.exec.remote import RemoteFleet
from repro.jobstore import (
    JobStore,
    SQLiteJobStore,
    migrate_jsonl_to_sqlite,
    open_job_store,
)
from repro.server import (
    ServerApp,
    ServerThread,
    ServiceFront,
    Tenant,
    TenantQuota,
    TenantRegistry,
)
from repro.service import (
    JobHandle,
    JobStatus,
    MigrationJob,
    MigrationService,
    migrate_batch,
)

#: Semantic version of this surface (not of the package implementation).
API_VERSION = "2.3.0"

__all__ = [
    "API_VERSION",
    # configuration + results
    "AttemptRecord",
    "SynthesisConfig",
    "SynthesisResult",
    # blocking entry points
    "Synthesizer",
    "migrate",
    # streaming session + event taxonomy
    "SynthesisSession",
    "SessionEvent",
    "VcSelected",
    "SketchGenerated",
    "SketchRejected",
    "CandidateRejected",
    "Solved",
    "BudgetTimeout",
    "BudgetExhausted",
    "Cancelled",
    "ExecutionDegraded",
    "TERMINAL_EVENTS",
    # multi-job service facade + persistence + distributed execution
    "MigrationService",
    "MigrationJob",
    "JobHandle",
    "JobStatus",
    "JobStore",
    "SQLiteJobStore",
    "open_job_store",
    "migrate_jsonl_to_sqlite",
    "RemoteFleet",
    "migrate_batch",
    # the service front (repro.server)
    "ServiceFront",
    "ServerApp",
    "ServerThread",
    "Tenant",
    "TenantQuota",
    "TenantRegistry",
    # resilience policies + fault injection
    "RetryPolicy",
    "TimeoutPolicy",
    "ResilienceConfig",
    "FaultPlan",
    "FaultSpec",
]
