"""The stable, versioned public API of the repro synthesizer.

``repro.api`` is the compatibility surface for programmatic consumers (the
examples, the eval harness, and service deployments): everything exported
here follows the ``API_VERSION`` contract — additive changes bump the minor
version, breaking changes bump the major version and are called out in
EXPERIMENTS.md.  Internals (``repro.core.*``, ``repro.completion.*``, …)
may be refactored freely between releases; import from this module instead.

Three levels of entry:

* :func:`migrate` — the one-call blocking convenience (a thin wrapper that
  drains a session; byte-identical results to the streaming path for
  sequential configurations — with ``parallel_workers > 1`` it routes to
  the wave-parallel front-end instead, which cannot stream).
* :class:`SynthesisSession` — one run as a re-entrant stream of typed
  progress events with cooperative cancellation and a run-wide deadline;
  always the sequential driver (``parallel_workers`` is ignored).
* :class:`MigrationService` / :class:`MigrationJob` — batches of jobs
  scheduled through the unified execution layer (:mod:`repro.exec`) with
  cross-job artifact sharing.  Jobs carry a ``priority`` and an optional
  ``deadline``; with ``max_workers > 1`` they run on worker processes while
  still streaming live typed events to ``on_event`` and honoring
  ``JobHandle.cancel()`` mid-job (the cancel signal crosses the process
  boundary cooperatively).

Version 1.1.0 (additive): ``MigrationJob.priority`` / ``deadline``,
``JobStatus.EXPIRED``, live event streaming and mid-job cancellation for
pooled services, and the ``compiled_function_hits`` / ``_misses`` counters
on ``SynthesisResult.cache``.
"""

from __future__ import annotations

from repro.core.config import SynthesisConfig
from repro.core.result import AttemptRecord, SynthesisResult
from repro.core.session import (
    TERMINAL_EVENTS,
    BudgetExhausted,
    BudgetTimeout,
    Cancelled,
    CandidateRejected,
    SessionEvent,
    SketchGenerated,
    SketchRejected,
    Solved,
    SynthesisSession,
    VcSelected,
)
from repro.core.synthesizer import Synthesizer, migrate
from repro.service import (
    JobHandle,
    JobStatus,
    MigrationJob,
    MigrationService,
    migrate_batch,
)

#: Semantic version of this surface (not of the package implementation).
API_VERSION = "1.1.0"

__all__ = [
    "API_VERSION",
    # configuration + results
    "AttemptRecord",
    "SynthesisConfig",
    "SynthesisResult",
    # blocking entry points
    "Synthesizer",
    "migrate",
    # streaming session + event taxonomy
    "SynthesisSession",
    "SessionEvent",
    "VcSelected",
    "SketchGenerated",
    "SketchRejected",
    "CandidateRejected",
    "Solved",
    "BudgetTimeout",
    "BudgetExhausted",
    "Cancelled",
    "TERMINAL_EVENTS",
    # multi-job service facade
    "MigrationService",
    "MigrationJob",
    "JobHandle",
    "JobStatus",
    "migrate_batch",
]
