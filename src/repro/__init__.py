"""repro: reproduction of "Synthesizing Database Programs for Schema Refactoring" (PLDI 2019).

The public API mirrors the paper's pipeline:

* :mod:`repro.datamodel` — schemas, types, database instances
* :mod:`repro.lang` — the database-program language of Figure 5
* :mod:`repro.engine` — the relational execution engine
* :mod:`repro.correspondence` — value-correspondence enumeration (Section 4.2)
* :mod:`repro.sketchgen` — sketch generation (Section 4.3)
* :mod:`repro.completion` — sketch completion with MFI pruning (Section 4.4)
* :mod:`repro.core` — the end-to-end synthesizer (Algorithm 1) and the
  streaming :class:`~repro.core.session.SynthesisSession`
* :mod:`repro.service` — the multi-job :class:`~repro.service.MigrationService`
* :mod:`repro.api` — the stable, versioned surface re-exporting all of the above
* :mod:`repro.workloads` — the 20 reconstructed benchmarks
* :mod:`repro.eval` — the evaluation harness regenerating Tables 1-3

Quickstart::

    from repro import migrate
    result = migrate(source_program, target_schema)
    if result.succeeded:
        print(format_program(result.program))

Streaming progress and batches (every entry point is a session over an
execution profile — sequential and wave-parallel runs stream the same
typed, deterministically ordered events)::

    from repro.api import SynthesisSession, MigrationService, MigrationJob

    for event in SynthesisSession(source_program, target_schema):
        print(event)                       # parallel_workers > 1 streams too

    service = MigrationService(max_workers=4, job_store="batch.jsonl")
    results = service.migrate_batch(jobs)
    # after an interruption: MigrationService.resume("batch.jsonl").run()
"""

from repro.api import (
    API_VERSION,
    AttemptRecord,
    JobStore,
    MigrationJob,
    MigrationService,
    RemoteFleet,
    SynthesisConfig,
    SynthesisResult,
    SynthesisSession,
    Synthesizer,
    migrate,
    migrate_batch,
)
from repro.datamodel import Attribute, DataType, Schema, make_schema
from repro.lang.ast import Program
from repro.lang.pretty import format_program

__version__ = "0.4.0"

__all__ = [
    "API_VERSION",
    "Attribute",
    "AttemptRecord",
    "DataType",
    "JobStore",
    "MigrationJob",
    "MigrationService",
    "Program",
    "RemoteFleet",
    "Schema",
    "SynthesisConfig",
    "SynthesisResult",
    "SynthesisSession",
    "Synthesizer",
    "format_program",
    "make_schema",
    "migrate",
    "migrate_batch",
    "__version__",
]
