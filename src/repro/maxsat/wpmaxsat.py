"""Partial weighted MaxSAT solving.

The value-correspondence generator (Section 4.2 of the paper) needs a partial
weighted MaxSAT oracle: hard clauses must hold, and the total weight of
satisfied soft clauses must be maximal.  The original implementation used
Sat4J; we provide our own solver built on the CDCL solver of ``repro.sat``.

The algorithm is the classic *linear SAT/UNSAT search*: each soft clause gets
a relaxation literal, and the total weight of relaxed (violated) soft clauses
is bounded by a cardinality constraint that is tightened until the formula
becomes unsatisfiable.  Weights are small integers in our encodings, so the
weighted bound is expressed by repeating each relaxation literal ``weight``
times inside a sequential at-most-k constraint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.sat.cardinality import at_most_k_sequential
from repro.sat.cnf import CNF, Literal
from repro.sat.solver import SatSolver, Status


class MaxSatError(Exception):
    """Raised for malformed MaxSAT problems (e.g. non-positive weights)."""


@dataclass
class SoftClause:
    literals: tuple[Literal, ...]
    weight: int


@dataclass
class MaxSatResult:
    """Outcome of a MaxSAT call."""

    satisfiable: bool
    model: Optional[dict[int, bool]] = None
    cost: int = 0  # total weight of violated soft clauses
    satisfied_weight: int = 0

    @property
    def optimal(self) -> bool:
        return self.satisfiable


class WPMaxSatSolver:
    """A partial weighted MaxSAT solver over a growable clause database."""

    def __init__(self) -> None:
        self._hard = CNF()
        self._soft: list[SoftClause] = []

    # ------------------------------------------------------------------ build
    def new_variable(self) -> int:
        return self._hard.new_variable()

    def ensure_variable(self, var: int) -> None:
        self._hard.ensure_variable(var)

    def add_hard(self, literals: Iterable[Literal]) -> None:
        self._hard.add_clause(literals)

    def add_soft(self, literals: Iterable[Literal], weight: int) -> None:
        clause = tuple(literals)
        if weight <= 0:
            raise MaxSatError(f"soft clause weight must be positive, got {weight}")
        if not clause:
            raise MaxSatError("empty soft clause")
        for lit in clause:
            self._hard.ensure_variable(abs(lit))
        self._soft.append(SoftClause(clause, weight))

    @property
    def num_soft(self) -> int:
        return len(self._soft)

    @property
    def total_soft_weight(self) -> int:
        return sum(c.weight for c in self._soft)

    # ------------------------------------------------------------------ solve
    def _soft_cost(self, model: dict[int, bool]) -> int:
        cost = 0
        for clause in self._soft:
            satisfied = any(model.get(abs(lit), False) == (lit > 0) for lit in clause.literals)
            if not satisfied:
                cost += clause.weight
        return cost

    def solve(self) -> MaxSatResult:
        """Find a model of the hard clauses maximizing the satisfied soft weight."""
        # Feasibility check on hard clauses alone.
        base_solver = SatSolver()
        base_solver.add_cnf(self._hard)
        base = base_solver.solve()
        if base.status is not Status.SAT:
            return MaxSatResult(satisfiable=False)
        if not self._soft:
            return MaxSatResult(True, base.model, 0, 0)

        # Working formula: hard clauses + relaxed soft clauses.
        working = self._hard.copy()
        relax_literals: list[tuple[Literal, int]] = []
        for clause in self._soft:
            relax = working.new_variable()
            working.add_clause(clause.literals + (relax,))
            relax_literals.append((relax, clause.weight))

        best_model = base.model
        assert best_model is not None
        best_cost = self._soft_cost(best_model)

        while best_cost > 0:
            bounded = working.copy()
            weighted_literals: list[Literal] = []
            for literal, weight in relax_literals:
                weighted_literals.extend([literal] * weight)
            at_most_k_sequential(bounded, weighted_literals, best_cost - 1)
            solver = SatSolver()
            solver.add_cnf(bounded)
            result = solver.solve()
            if result.status is not Status.SAT:
                break
            assert result.model is not None
            cost = self._soft_cost(result.model)
            if cost >= best_cost:
                # The relaxation variables over-approximated the true cost;
                # still make progress by tightening to the observed cost.
                best_model = result.model
                best_cost = cost
                break
            best_model = result.model
            best_cost = cost

        total = self.total_soft_weight
        return MaxSatResult(True, best_model, best_cost, total - best_cost)


def solve_wpmaxsat(
    hard: Iterable[Iterable[Literal]],
    soft: Iterable[tuple[Iterable[Literal], int]],
    num_variables: int = 0,
) -> MaxSatResult:
    """Convenience wrapper for one-shot MaxSAT solving."""
    solver = WPMaxSatSolver()
    if num_variables:
        solver.ensure_variable(num_variables)
    for clause in hard:
        solver.add_hard(clause)
    for clause, weight in soft:
        solver.add_soft(clause, weight)
    return solver.solve()
