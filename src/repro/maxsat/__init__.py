"""Partial weighted MaxSAT solver built on the CDCL SAT solver."""

from repro.maxsat.wpmaxsat import MaxSatError, MaxSatResult, SoftClause, WPMaxSatSolver, solve_wpmaxsat

__all__ = [
    "MaxSatError",
    "MaxSatResult",
    "SoftClause",
    "WPMaxSatSolver",
    "solve_wpmaxsat",
]
