"""Remote worker runner: ``python -m repro.worker --connect HOST:PORT``.

One worker process serves one coordinator connection at a time.  It
registers over the :mod:`repro.exec.wire` handshake, heartbeats on the
interval the coordinator announced, and executes leased tasks through the
same entrypoints the in-process pool uses — a leased parallel-wave attempt
runs ``core.parallel._explore_correspondence`` against the shared
``SessionCore``, a leased service job runs ``service._run_job_in_worker``;
the worker itself is transport only.  Typed session events stream back as
``event`` frames, followed by a ``task_end`` end-of-stream marker and a
``result`` frame, in that order on one TCP connection — which is what lets
the coordinator's :class:`~repro.exec.remote.SocketChannel` guarantee a
task's stream is fully drained before its future settles.

Two modes, same protocol (the worker always sends ``hello`` first):

* ``--connect HOST:PORT`` — dial a listening coordinator (a
  ``RemoteFleet(listen=...)``), retrying briefly; exit when the
  coordinator closes the connection.
* ``--listen [HOST:]PORT`` — bind and wait to be dialed (the
  ``SynthesisConfig.execution_fleet`` / ``RemoteFleet(workers=[...])``
  topology).  Port 0 picks a free port; the bound address is printed as
  ``listening on HOST:PORT`` for harnesses to parse.  Serves coordinator
  connections sequentially until killed.

Cache state (compiled-closure caches, counterexample pools) lives in this
process's module globals exactly as it does in a pool worker; pool deltas
arrive inside task payloads and fresh counterexamples travel back in
results, so remote workers share discoveries at wave granularity without
shared memory.
"""

from __future__ import annotations

import argparse
import os
import random
import socket
import sys
import threading
import time
from typing import Optional

from repro.exec import faults, wire
from repro.exec.channel import build_work_context, run_streamed_task
from repro.exec.policy import RetryPolicy


class WorkerAgent:
    """Executes leased tasks for one coordinator connection."""

    def __init__(self, worker_id: Optional[str] = None, slots: int = 1):
        self.worker_id = worker_id or f"worker-{socket.gethostname()}-{os.getpid()}"
        self.slots = max(1, slots)

    # ------------------------------------------------------------------ modes
    def connect(self, host: str, port: int, *, retries: int = 25, delay: float = 0.2) -> int:
        """Dial a listening coordinator; serve until it closes the link.

        Connect retries back off with jitter (seeded by the worker id, so a
        herd of restarted workers spreads out deterministically); *delay*
        remains the floor of the first retry's wait.
        """
        last_error: Optional[OSError] = None
        policy = RetryPolicy(backoff_base=delay, backoff_max=2.0, backoff_jitter=0.5)
        rng = random.Random(self.worker_id)
        for attempt in range(1, max(1, retries) + 1):
            try:
                sock = socket.create_connection((host, port), timeout=5.0)
                break
            except OSError as error:
                last_error = error
                time.sleep(policy.backoff_delay(attempt, rng))
        else:
            print(f"{self.worker_id}: cannot reach {host}:{port}: {last_error}", file=sys.stderr)
            return 1
        with sock:
            # A generous handshake window (the coordinator may still be
            # starting its accept machinery); serve() lifts it once welcomed.
            sock.settimeout(30.0)
            return self.serve(sock)

    def listen(self, host: str, port: int) -> int:
        """Bind and serve dialing coordinators, one at a time, until killed."""
        with socket.create_server((host, port)) as listener:
            bound_host, bound_port = listener.getsockname()[:2]
            print(f"listening on {bound_host}:{bound_port}", flush=True)
            while True:
                conn, _peer = listener.accept()
                with conn:
                    self.serve(conn)

    # ------------------------------------------------------------------ serve
    def serve(self, sock: socket.socket) -> int:
        """Handshake then run the task loop until the coordinator closes."""
        welcome = wire.worker_hello(
            sock, worker_id=self.worker_id, slots=self.slots, pid=os.getpid()
        )
        # Welcomed: idle gaps between leases are unbounded, so drop any
        # handshake timeout before entering the task loop.
        sock.settimeout(None)
        # The coordinator announces the *effective* (already jittered)
        # interval; ``jitter`` additionally spreads beat-to-beat timing so
        # renewals from a restarted fleet drift apart instead of phase-locking.
        heartbeat_interval = float(welcome.get("heartbeat") or 1.0)
        beat_jitter = max(0.0, float(welcome.get("jitter") or 0.0))
        beat_rng = random.Random(f"beat:{self.worker_id}")
        send_lock = threading.Lock()
        cancels: dict[int, threading.Event] = {}
        cancels_lock = threading.Lock()
        inflight = [0]
        done = threading.Event()

        def send(header: dict, payload: bytes = b"") -> None:
            with send_lock:
                wire.send_frame(sock, header, payload)

        def heartbeat_loop() -> None:
            while True:
                wait = heartbeat_interval
                if beat_jitter > 0:
                    wait *= 1.0 + beat_rng.uniform(-beat_jitter, beat_jitter)
                if done.wait(max(0.01, wait)):
                    return
                injector = faults.active()
                if injector is not None and not injector.before_heartbeat(self.worker_id):
                    continue  # injected dropped/stalled beat
                try:
                    send({"type": "heartbeat", "inflight": inflight[0]})
                except OSError:
                    return

        beat = threading.Thread(target=heartbeat_loop, name="repro-worker-beat", daemon=True)
        beat.start()
        try:
            while True:
                try:
                    header, payload = wire.recv_frame(sock)
                except (wire.ConnectionClosed, wire.FrameError, OSError):
                    return 0
                kind = header.get("type")
                if kind == "task":
                    task_id = header["task"]
                    cancel = threading.Event()
                    with cancels_lock:
                        cancels[task_id] = cancel
                    inflight[0] += 1
                    runner = threading.Thread(
                        target=self._run_task,
                        args=(send, header, payload, cancel),
                        kwargs={
                            "finish": lambda tid=task_id: self._finish_task(
                                tid, cancels, cancels_lock, inflight
                            )
                        },
                        name=f"repro-worker-task-{task_id}",
                        daemon=True,
                    )
                    runner.start()
                elif kind == "cancel":
                    with cancels_lock:
                        cancel = cancels.get(header.get("task"))
                    if cancel is not None:
                        cancel.set()
                elif kind == "shutdown":
                    return 0
                # Unknown types ignored: additive evolution within a version.
        finally:
            done.set()

    @staticmethod
    def _finish_task(task_id, cancels, cancels_lock, inflight) -> None:
        with cancels_lock:
            cancels.pop(task_id, None)
        inflight[0] -= 1

    def _run_task(self, send, header: dict, payload: bytes, cancel, *, finish) -> None:
        task_id = header["task"]
        name = header.get("name") or f"task-{task_id}"
        streaming = bool(header.get("streaming"))

        def emit(event) -> None:
            send({"type": "event", "task": task_id}, wire.dump_payload(event))

        def end_stream() -> None:
            if streaming:
                send({"type": "task_end", "task": task_id})

        try:
            try:
                fn, task_payload = wire.load_payload(payload)
                ctx = build_work_context(emit if streaming else None, cancel, streaming)
                value = run_streamed_task(
                    fn,
                    task_payload,
                    ctx,
                    end_stream,
                    context={"task": task_id, "name": name, "worker": self.worker_id},
                )
            except BaseException as error:  # noqa: BLE001 - shipped to the peer
                end_stream()
                self._send_result(send, task_id, name, ok=False, value=error)
            else:
                self._send_result(send, task_id, name, ok=True, value=value)
        except OSError:
            pass  # link is gone; the coordinator re-leases this task
        finally:
            finish()

    @staticmethod
    def _send_result(send, task_id: int, name: str, *, ok: bool, value) -> None:
        try:
            body = wire.dump_payload(value)
        except Exception as error:  # noqa: BLE001 - unpicklable result/exception
            ok = False
            body = wire.dump_payload(
                RuntimeError(f"remote task produced an unpicklable value: {error!r}")
            )
        # ``name`` rides along (additive within WIRE_VERSION 1) so fault
        # plans can target a specific task's result frame by name.
        send({"type": "result", "task": task_id, "name": name, "ok": ok}, body)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.worker",
        description="Run a remote synthesis worker for a repro coordinator.",
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--connect", metavar="HOST:PORT", help="dial a listening coordinator"
    )
    mode.add_argument(
        "--listen",
        metavar="[HOST:]PORT",
        help="bind and wait to be dialed (port 0 picks a free port)",
    )
    parser.add_argument("--id", dest="worker_id", default=None, help="worker id override")
    parser.add_argument(
        "--slots", type=int, default=1, help="concurrent task slots to advertise"
    )
    options = parser.parse_args(argv)
    plan_json = os.environ.get(faults.PLAN_ENV)
    if plan_json:
        # Chaos harnesses ship the coordinator's fault plan into worker
        # processes through the environment; activation is process-wide
        # for the worker's whole life.
        faults.install(faults.FaultPlan.from_json(plan_json))
    agent = WorkerAgent(worker_id=options.worker_id, slots=options.slots)
    if options.connect:
        host, port = wire.parse_address(options.connect)
        return agent.connect(host, port)
    host, port = wire.parse_address(options.listen)
    try:
        return agent.listen(host, port)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
