"""Errors raised by the database-program language front end."""

from __future__ import annotations


class LanguageError(Exception):
    """Base class for all language-level errors."""


class WellFormednessError(LanguageError):
    """An AST violates a static well-formedness rule (see ``lang.validate``)."""


class ParseError(LanguageError):
    """The textual DSL could not be parsed."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}" + (f", column {column}" if column is not None else "")
        super().__init__(message + location)
        self.line = line
        self.column = column
