"""A small fluent API for constructing database programs.

The benchmark suite defines dozens of programs; writing raw AST constructors
for all of them would be noisy, so this module provides the concise builders
used throughout ``repro.workloads`` and the examples.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional, Sequence, Union

from repro.datamodel.schema import Attribute, Schema
from repro.datamodel.types import DataType
from repro.lang.ast import (
    And,
    AttrRef,
    CompareOp,
    Comparison,
    Const,
    Delete,
    Function,
    InQuery,
    Insert,
    JoinChain,
    Not,
    Operand,
    Or,
    Param,
    Predicate,
    Program,
    Projection,
    Query,
    QueryFunction,
    Selection,
    Statement,
    TruePred,
    Update,
    UpdateFunction,
    Var,
)
from repro.lang.visitors import validate_program


# ------------------------------------------------------------------- small constructors
def attr(text: str | Attribute) -> Attribute:
    """``attr("Table.col")`` -> :class:`Attribute`."""
    return text if isinstance(text, Attribute) else Attribute.parse(text)


def var(name: str) -> Var:
    return Var(name)


def const(value: Any) -> Const:
    return Const(value)


def _operand(value: Union[Operand, Attribute, str, int, bool, None]) -> Operand:
    """Coerce convenient Python values into AST operands.

    Strings starting with ``$`` become parameters; strings containing a dot
    become attribute references; everything else becomes a constant.
    """
    if isinstance(value, (Const, Var, AttrRef)):
        return value
    if isinstance(value, Attribute):
        return AttrRef(value)
    if isinstance(value, str):
        if value.startswith("$"):
            return Var(value[1:])
        if "." in value:
            return AttrRef(Attribute.parse(value))
    return Const(value)


def cmp(left, op: str | CompareOp, right) -> Comparison:
    operator = op if isinstance(op, CompareOp) else CompareOp(op)
    return Comparison(_operand(left), operator, _operand(right))


def eq(left, right) -> Comparison:
    return cmp(left, CompareOp.EQ, right)


def ne(left, right) -> Comparison:
    return cmp(left, CompareOp.NE, right)


def lt(left, right) -> Comparison:
    return cmp(left, CompareOp.LT, right)


def gt(left, right) -> Comparison:
    return cmp(left, CompareOp.GT, right)


def in_query(operand, query: Query) -> InQuery:
    return InQuery(_operand(operand), query)


def conj(*preds: Predicate) -> Predicate:
    """Conjunction of predicates; empty conjunction is TRUE."""
    preds = tuple(p for p in preds if not isinstance(p, TruePred))
    if not preds:
        return TruePred()
    result = preds[0]
    for pred in preds[1:]:
        result = And(result, pred)
    return result


def disj(*preds: Predicate) -> Predicate:
    if not preds:
        return TruePred()
    result = preds[0]
    for pred in preds[1:]:
        result = Or(result, pred)
    return result


def neg(pred: Predicate) -> Not:
    return Not(pred)


# -------------------------------------------------------------------------- join chains
def table(name: str) -> JoinChain:
    return JoinChain.of(name)


def join(
    tables: Sequence[str],
    on: Sequence[tuple[str | Attribute, str | Attribute]] = (),
) -> JoinChain:
    """Build a join chain over *tables* with explicit equi-join conditions."""
    conditions = tuple((attr(l), attr(r)) for l, r in on)
    return JoinChain(tuple(tables), conditions)


def natural_join(schema: Schema, *tables_: str) -> JoinChain:
    """Join *tables_* pairwise on identically named, identically typed columns.

    Each table after the first is joined on the first shared column with any
    previously joined table, mirroring the implicit natural-join notation of
    the paper.
    """
    if not tables_:
        raise ValueError("natural_join needs at least one table")
    chain_tables = [tables_[0]]
    conditions: list[tuple[Attribute, Attribute]] = []
    for name in tables_[1:]:
        new_table = schema.table(name)
        found = None
        for prev in chain_tables:
            prev_table = schema.table(prev)
            for col, dtype in new_table.columns.items():
                if col in prev_table.columns and prev_table.columns[col] == dtype:
                    found = (Attribute(prev, col), Attribute(name, col))
                    break
            if found:
                break
        if found is None:
            raise ValueError(f"no shared column to naturally join {name!r} into {chain_tables}")
        chain_tables.append(name)
        conditions.append(found)
    return JoinChain(tuple(chain_tables), tuple(conditions))


# --------------------------------------------------------------------------- statements
def insert(target: JoinChain | str, values: Mapping[str | Attribute, Any]) -> Insert:
    chain = JoinChain.of(target) if isinstance(target, str) else target
    pairs = tuple((attr(a), _operand(v)) for a, v in values.items())
    return Insert(chain, pairs)


def delete(
    tables_: Sequence[str] | str,
    source: JoinChain | str,
    where: Predicate | None = None,
) -> Delete:
    if isinstance(tables_, str):
        tables_ = (tables_,)
    chain = JoinChain.of(source) if isinstance(source, str) else source
    return Delete(tuple(tables_), chain, where if where is not None else TruePred())


def update(
    source: JoinChain | str,
    where: Predicate | None,
    attribute: str | Attribute,
    value: Any,
) -> Update:
    chain = JoinChain.of(source) if isinstance(source, str) else source
    return Update(chain, where if where is not None else TruePred(), attr(attribute), _operand(value))


# ----------------------------------------------------------------------------- queries
def select(
    columns: Sequence[str | Attribute],
    from_: JoinChain | str,
    where: Predicate | None = None,
) -> Query:
    chain = JoinChain.of(from_) if isinstance(from_, str) else from_
    query: Query = chain
    if where is not None and not isinstance(where, TruePred):
        query = Selection(where, query)
    return Projection(tuple(attr(c) for c in columns), query)


# --------------------------------------------------------------------------- functions
_TYPE_ALIASES = {
    "int": DataType.INT,
    "str": DataType.STRING,
    "string": DataType.STRING,
    "binary": DataType.BINARY,
    "bool": DataType.BOOL,
}


def params(*specs: tuple[str, str | DataType] | Param) -> tuple[Param, ...]:
    """``params(("id", "int"), ("name", "str"))`` -> tuple of :class:`Param`."""
    result = []
    for spec in specs:
        if isinstance(spec, Param):
            result.append(spec)
        else:
            name, dtype = spec
            if isinstance(dtype, str):
                dtype = _TYPE_ALIASES[dtype.lower()]
            result.append(Param(name, dtype))
    return tuple(result)


def update_fn(name: str, parameters: Iterable, *statements: Statement) -> UpdateFunction:
    return UpdateFunction(name, params(*parameters), tuple(statements))


def query_fn(name: str, parameters: Iterable, query: Query) -> QueryFunction:
    return QueryFunction(name, params(*parameters), query)


class ProgramBuilder:
    """Accumulates functions and produces a validated :class:`Program`."""

    def __init__(self, name: str, schema: Schema):
        self.name = name
        self.schema = schema
        self._functions: list[Function] = []

    def add(self, *functions: Function) -> "ProgramBuilder":
        self._functions.extend(functions)
        return self

    def update(self, name: str, parameters: Iterable, *statements: Statement) -> "ProgramBuilder":
        return self.add(update_fn(name, parameters, *statements))

    def query(self, name: str, parameters: Iterable, query: Query) -> "ProgramBuilder":
        return self.add(query_fn(name, parameters, query))

    def build(self, validate: bool = True) -> Program:
        program = Program(self.name, self.schema, self._functions)
        if validate:
            validate_program(program)
        return program
