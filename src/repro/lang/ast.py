"""Abstract syntax of database programs (Figure 5 of the paper).

A *program* is a set of functions; each function is either an *update*
(a sequence of insert / delete / update statements) or a *query* (a relational
algebra expression built from projection, selection and equi-joins).

All AST nodes are immutable dataclasses so that the sketch generator can
rewrite them structurally without defensive copying.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional, Sequence, Union

from repro.datamodel.schema import Attribute, Schema
from repro.datamodel.types import DataType


# --------------------------------------------------------------------------- operands
@dataclass(frozen=True)
class Const:
    """A literal value (int, string, binary, bool or ``None``)."""

    value: Any

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Var:
    """A reference to a function parameter."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class AttrRef:
    """A reference to a (qualified) attribute inside a predicate or projection."""

    attribute: Attribute

    def __str__(self) -> str:
        return str(self.attribute)


#: Operands of comparisons and insert values.
Operand = Union[Const, Var, AttrRef]


# -------------------------------------------------------------------------- predicates
class CompareOp(enum.Enum):
    """Binary comparison operators allowed in predicates."""

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class TruePred:
    """The always-true predicate (used for unconditional deletes/updates)."""

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class Comparison:
    """``left op right`` where operands are attributes, constants or parameters."""

    left: Operand
    op: CompareOp
    right: Operand

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class InQuery:
    """Membership test ``operand IN (sub-query)``."""

    operand: Operand
    query: "Query"

    def __str__(self) -> str:
        return f"{self.operand} in ({self.query})"


@dataclass(frozen=True)
class And:
    left: "Predicate"
    right: "Predicate"

    def __str__(self) -> str:
        return f"({self.left} and {self.right})"


@dataclass(frozen=True)
class Or:
    left: "Predicate"
    right: "Predicate"

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


@dataclass(frozen=True)
class Not:
    operand: "Predicate"

    def __str__(self) -> str:
        return f"(not {self.operand})"


Predicate = Union[TruePred, Comparison, InQuery, And, Or, Not]


# ------------------------------------------------------------------------ join chains
@dataclass(frozen=True)
class JoinChain:
    """A table or an equi-join of several tables.

    ``tables`` lists the joined tables in order; ``conditions`` lists the
    equi-join conditions as attribute pairs.  A single table is a chain with
    one table and no conditions.
    """

    tables: tuple[str, ...]
    conditions: tuple[tuple[Attribute, Attribute], ...] = ()

    def __post_init__(self) -> None:
        if not self.tables:
            raise ValueError("a join chain must contain at least one table")

    @staticmethod
    def of(table: str) -> "JoinChain":
        return JoinChain((table,), ())

    @property
    def is_single_table(self) -> bool:
        return len(self.tables) == 1

    def join(self, other: "JoinChain", left: Attribute, right: Attribute) -> "JoinChain":
        """Extend this chain with *other* using the equi-join ``left = right``."""
        return JoinChain(
            self.tables + other.tables,
            self.conditions + other.conditions + ((left, right),),
        )

    def table_set(self) -> frozenset[str]:
        return frozenset(self.tables)

    def condition_attributes(self) -> list[Attribute]:
        attrs: list[Attribute] = []
        for left, right in self.conditions:
            attrs.append(left)
            attrs.append(right)
        return attrs

    def canonical(self) -> tuple[frozenset[str], frozenset[frozenset[Attribute]]]:
        """A join-order-insensitive key used to deduplicate equivalent chains."""
        return (
            frozenset(self.tables),
            frozenset(frozenset(pair) for pair in self.conditions),
        )

    def __str__(self) -> str:
        if self.is_single_table:
            return self.tables[0]
        conds = ", ".join(f"{l} = {r}" for l, r in self.conditions)
        return " JOIN ".join(self.tables) + (f" ON {conds}" if conds else "")


# ----------------------------------------------------------------------------- queries
@dataclass(frozen=True)
class Projection:
    """``SELECT attrs FROM source`` — keep only the listed attributes."""

    attributes: tuple[Attribute, ...]
    source: "Query"

    def __str__(self) -> str:
        cols = ", ".join(str(a) for a in self.attributes)
        return f"project[{cols}]({self.source})"


@dataclass(frozen=True)
class Selection:
    """``σ_pred(source)`` — keep only rows satisfying the predicate."""

    predicate: Predicate
    source: "Query"

    def __str__(self) -> str:
        return f"select[{self.predicate}]({self.source})"


Query = Union[Projection, Selection, JoinChain]


# -------------------------------------------------------------------------- statements
@dataclass(frozen=True)
class Insert:
    """Insert a tuple into a table or (shorthand) into a join chain.

    ``values`` maps attributes of the target chain to constants or parameters.
    Attributes of the chain that are not supplied receive fresh unique values;
    attributes linked by a join condition share the same fresh value
    (Section 3.1 of the paper).
    """

    target: JoinChain
    values: tuple[tuple[Attribute, Operand], ...]

    @property
    def values_dict(self) -> dict[Attribute, Operand]:
        return dict(self.values)

    def __str__(self) -> str:
        vals = ", ".join(f"{a}: {v}" for a, v in self.values)
        return f"ins({self.target}, {{{vals}}})"


@dataclass(frozen=True)
class Delete:
    """``del([T1..Tn], J, pred)`` — delete matching tuples from the listed tables."""

    tables: tuple[str, ...]
    source: JoinChain
    predicate: Predicate

    def __str__(self) -> str:
        tbls = ", ".join(self.tables)
        return f"del([{tbls}], {self.source}, {self.predicate})"


@dataclass(frozen=True)
class Update:
    """``upd(J, pred, attr, value)`` — set ``attr`` to ``value`` on matching tuples."""

    source: JoinChain
    predicate: Predicate
    attribute: Attribute
    value: Operand

    def __str__(self) -> str:
        return f"upd({self.source}, {self.predicate}, {self.attribute}, {self.value})"


Statement = Union[Insert, Delete, Update]


# --------------------------------------------------------------------------- functions
@dataclass(frozen=True)
class Param:
    """A typed function parameter."""

    name: str
    dtype: DataType

    def __str__(self) -> str:
        return f"{self.dtype} {self.name}"


@dataclass(frozen=True)
class UpdateFunction:
    """A transaction that mutates the database."""

    name: str
    params: tuple[Param, ...]
    statements: tuple[Statement, ...]

    @property
    def is_query(self) -> bool:
        return False

    def __str__(self) -> str:
        return f"update {self.name}({', '.join(map(str, self.params))})"


@dataclass(frozen=True)
class QueryFunction:
    """A read-only function returning the result of a relational algebra query."""

    name: str
    params: tuple[Param, ...]
    query: Query

    @property
    def is_query(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"query {self.name}({', '.join(map(str, self.params))})"


Function = Union[UpdateFunction, QueryFunction]


class Program:
    """A database program: a schema plus an ordered set of named functions."""

    def __init__(self, name: str, schema: Schema, functions: Sequence[Function]):
        self.name = name
        self.schema = schema
        self._functions: dict[str, Function] = {}
        for func in functions:
            if func.name in self._functions:
                raise ValueError(f"duplicate function name {func.name!r}")
            self._functions[func.name] = func

    @property
    def functions(self) -> dict[str, Function]:
        return dict(self._functions)

    @property
    def function_names(self) -> list[str]:
        return list(self._functions)

    def function(self, name: str) -> Function:
        if name not in self._functions:
            raise KeyError(f"program {self.name!r} has no function {name!r}")
        return self._functions[name]

    def update_functions(self) -> list[UpdateFunction]:
        return [f for f in self._functions.values() if isinstance(f, UpdateFunction)]

    def query_functions(self) -> list[QueryFunction]:
        return [f for f in self._functions.values() if isinstance(f, QueryFunction)]

    def num_functions(self) -> int:
        return len(self._functions)

    def with_functions(self, functions: Sequence[Function], name: Optional[str] = None) -> "Program":
        """A copy of this program with a different function list (used by synthesis)."""
        return Program(name or self.name, self.schema, functions)

    def __iter__(self):
        return iter(self._functions.values())

    def __repr__(self) -> str:
        return f"Program({self.name!r}, functions={len(self._functions)})"


# --------------------------------------------------------------------------- utilities
def make_insert(target: JoinChain | str, values: Mapping[Attribute, Operand]) -> Insert:
    chain = JoinChain.of(target) if isinstance(target, str) else target
    return Insert(chain, tuple(values.items()))


def operands_of_predicate(pred: Predicate) -> list[Operand]:
    """All operands appearing in a predicate (left to right, depth first)."""
    if isinstance(pred, TruePred):
        return []
    if isinstance(pred, Comparison):
        return [pred.left, pred.right]
    if isinstance(pred, InQuery):
        return [pred.operand]
    if isinstance(pred, (And, Or)):
        return operands_of_predicate(pred.left) + operands_of_predicate(pred.right)
    if isinstance(pred, Not):
        return operands_of_predicate(pred.operand)
    raise TypeError(f"unknown predicate node {pred!r}")
