"""Traversals over database-program ASTs.

These helpers collect the structural facts that later pipeline stages need:
which attributes a function reads or writes, which join chains it uses, and
whether the AST is well formed with respect to a schema.
"""

from __future__ import annotations

from typing import Iterable

from repro.datamodel.schema import Attribute, Schema
from repro.lang.ast import (
    And,
    AttrRef,
    Comparison,
    Const,
    Delete,
    Function,
    InQuery,
    Insert,
    JoinChain,
    Not,
    Or,
    Predicate,
    Program,
    Projection,
    Query,
    QueryFunction,
    Selection,
    Statement,
    TruePred,
    Update,
    UpdateFunction,
    Var,
)
from repro.lang.errors import WellFormednessError


# ----------------------------------------------------------------- attribute collection
def attributes_of_predicate(pred: Predicate) -> set[Attribute]:
    """All attributes referenced by a predicate (including nested sub-queries)."""
    if isinstance(pred, TruePred):
        return set()
    if isinstance(pred, Comparison):
        attrs = set()
        for operand in (pred.left, pred.right):
            if isinstance(operand, AttrRef):
                attrs.add(operand.attribute)
        return attrs
    if isinstance(pred, InQuery):
        attrs = attributes_of_query(pred.query)
        if isinstance(pred.operand, AttrRef):
            attrs.add(pred.operand.attribute)
        return attrs
    if isinstance(pred, (And, Or)):
        return attributes_of_predicate(pred.left) | attributes_of_predicate(pred.right)
    if isinstance(pred, Not):
        return attributes_of_predicate(pred.operand)
    raise TypeError(f"unknown predicate node {pred!r}")


def attributes_of_join(chain: JoinChain) -> set[Attribute]:
    """Attributes mentioned in the join conditions of a chain."""
    return set(chain.condition_attributes())


def attributes_of_query(query: Query) -> set[Attribute]:
    """All attributes referenced by a query expression."""
    if isinstance(query, JoinChain):
        return attributes_of_join(query)
    if isinstance(query, Projection):
        return set(query.attributes) | attributes_of_query(query.source)
    if isinstance(query, Selection):
        return attributes_of_predicate(query.predicate) | attributes_of_query(query.source)
    raise TypeError(f"unknown query node {query!r}")


def attributes_of_statement(stmt: Statement) -> set[Attribute]:
    """All attributes referenced by an update statement."""
    if isinstance(stmt, Insert):
        return {attr for attr, _ in stmt.values} | attributes_of_join(stmt.target)
    if isinstance(stmt, Delete):
        return attributes_of_predicate(stmt.predicate) | attributes_of_join(stmt.source)
    if isinstance(stmt, Update):
        return (
            attributes_of_predicate(stmt.predicate)
            | attributes_of_join(stmt.source)
            | {stmt.attribute}
        )
    raise TypeError(f"unknown statement node {stmt!r}")


def attributes_of_function(func: Function) -> set[Attribute]:
    if isinstance(func, QueryFunction):
        return attributes_of_query(func.query)
    attrs: set[Attribute] = set()
    for stmt in func.statements:
        attrs |= attributes_of_statement(stmt)
    return attrs


def attributes_of_program(program: Program) -> set[Attribute]:
    attrs: set[Attribute] = set()
    for func in program:
        attrs |= attributes_of_function(func)
    return attrs


def queried_attributes(program: Program) -> set[Attribute]:
    """Attributes read by query functions (used by the MaxSAT hard constraints)."""
    attrs: set[Attribute] = set()
    for func in program.query_functions():
        attrs |= attributes_of_query(func.query)
    return attrs


# ------------------------------------------------------------------ join chain collection
def join_chain_of_query(query: Query) -> JoinChain:
    """The join chain at the leaf of a projection/selection tower."""
    if isinstance(query, JoinChain):
        return query
    if isinstance(query, (Projection, Selection)):
        return join_chain_of_query(query.source)
    raise TypeError(f"unknown query node {query!r}")


def join_chains_of_function(func: Function) -> list[JoinChain]:
    if isinstance(func, QueryFunction):
        return [join_chain_of_query(func.query)]
    chains = []
    for stmt in func.statements:
        if isinstance(stmt, Insert):
            chains.append(stmt.target)
        else:
            chains.append(stmt.source)
    return chains


def join_chains_of_program(program: Program) -> list[JoinChain]:
    chains: list[JoinChain] = []
    seen: set = set()
    for func in program:
        for chain in join_chains_of_function(func):
            key = chain.canonical()
            if key not in seen:
                seen.add(key)
                chains.append(chain)
    return chains


def tables_of_program(program: Program) -> set[str]:
    """All table names mentioned anywhere in the program."""
    tables: set[str] = set()
    for chain in join_chains_of_program(program):
        tables |= set(chain.tables)
    for attr in attributes_of_program(program):
        tables.add(attr.table)
    return tables


# ------------------------------------------------------------------------- validation
def _check_attr(schema: Schema, attr: Attribute, context: str) -> None:
    if not schema.has_attribute(attr):
        raise WellFormednessError(f"{context}: unknown attribute {attr}")


def _check_chain(schema: Schema, chain: JoinChain, context: str) -> None:
    for table in chain.tables:
        if table not in schema:
            raise WellFormednessError(f"{context}: unknown table {table!r}")
    chain_tables = set(chain.tables)
    for left, right in chain.conditions:
        for attr in (left, right):
            _check_attr(schema, attr, context)
            if attr.table not in chain_tables:
                raise WellFormednessError(
                    f"{context}: join condition attribute {attr} not in joined tables"
                )


def _check_predicate(schema: Schema, pred: Predicate, params: set[str], context: str) -> None:
    if isinstance(pred, TruePred):
        return
    if isinstance(pred, Comparison):
        for operand in (pred.left, pred.right):
            if isinstance(operand, AttrRef):
                _check_attr(schema, operand.attribute, context)
            elif isinstance(operand, Var) and operand.name not in params:
                raise WellFormednessError(f"{context}: unknown parameter {operand.name!r}")
        return
    if isinstance(pred, InQuery):
        if isinstance(pred.operand, AttrRef):
            _check_attr(schema, pred.operand.attribute, context)
        elif isinstance(pred.operand, Var) and pred.operand.name not in params:
            raise WellFormednessError(f"{context}: unknown parameter {pred.operand.name!r}")
        _check_query(schema, pred.query, params, context)
        return
    if isinstance(pred, (And, Or)):
        _check_predicate(schema, pred.left, params, context)
        _check_predicate(schema, pred.right, params, context)
        return
    if isinstance(pred, Not):
        _check_predicate(schema, pred.operand, params, context)
        return
    raise TypeError(f"unknown predicate node {pred!r}")


def _check_query(schema: Schema, query: Query, params: set[str], context: str) -> None:
    chain = join_chain_of_query(query)
    _check_chain(schema, chain, context)
    chain_tables = set(chain.tables)
    if isinstance(query, Projection):
        for attr in query.attributes:
            _check_attr(schema, attr, context)
            if attr.table not in chain_tables:
                raise WellFormednessError(
                    f"{context}: projected attribute {attr} not in joined tables"
                )
        _check_query(schema, query.source, params, context)
    elif isinstance(query, Selection):
        _check_predicate(schema, query.predicate, params, context)
        _check_query(schema, query.source, params, context)


def validate_function(schema: Schema, func: Function) -> None:
    """Raise :class:`WellFormednessError` if *func* is malformed w.r.t. *schema*."""
    params = {p.name for p in func.params}
    context = f"function {func.name!r}"
    if isinstance(func, QueryFunction):
        _check_query(schema, func.query, params, context)
        return
    for stmt in func.statements:
        if isinstance(stmt, Insert):
            _check_chain(schema, stmt.target, context)
            chain_tables = set(stmt.target.tables)
            for attr, operand in stmt.values:
                _check_attr(schema, attr, context)
                if attr.table not in chain_tables:
                    raise WellFormednessError(
                        f"{context}: inserted attribute {attr} not in target tables"
                    )
                if isinstance(operand, Var) and operand.name not in params:
                    raise WellFormednessError(f"{context}: unknown parameter {operand.name!r}")
        elif isinstance(stmt, Delete):
            _check_chain(schema, stmt.source, context)
            chain_tables = set(stmt.source.tables)
            for table in stmt.tables:
                if table not in chain_tables:
                    raise WellFormednessError(
                        f"{context}: delete target table {table!r} not in join chain"
                    )
            _check_predicate(schema, stmt.predicate, params, context)
        elif isinstance(stmt, Update):
            _check_chain(schema, stmt.source, context)
            _check_attr(schema, stmt.attribute, context)
            if stmt.attribute.table not in set(stmt.source.tables):
                raise WellFormednessError(
                    f"{context}: updated attribute {stmt.attribute} not in join chain"
                )
            _check_predicate(schema, stmt.predicate, params, context)
            if isinstance(stmt.value, Var) and stmt.value.name not in params:
                raise WellFormednessError(f"{context}: unknown parameter {stmt.value.name!r}")
        else:
            raise TypeError(f"unknown statement node {stmt!r}")


def validate_program(program: Program) -> None:
    """Validate every function of a program against its schema."""
    for func in program:
        validate_function(program.schema, func)
