"""Pretty printer: render ASTs in a SQL-flavoured concrete syntax.

The output format matches what the textual parser (``lang.parser``) accepts,
so ``parse(pretty(p))`` round-trips for programs expressible in the concrete
syntax.  The printer is also what examples and the evaluation harness use to
show synthesized programs to the user (compare Figure 4 of the paper).
"""

from __future__ import annotations

from typing import Iterable

from repro.lang.ast import (
    And,
    AttrRef,
    Comparison,
    Const,
    Delete,
    Function,
    InQuery,
    Insert,
    JoinChain,
    Not,
    Operand,
    Or,
    Predicate,
    Program,
    Projection,
    Query,
    QueryFunction,
    Selection,
    Statement,
    TruePred,
    Update,
    UpdateFunction,
    Var,
)


def format_operand(operand: Operand) -> str:
    if isinstance(operand, Const):
        value = operand.value
        if isinstance(value, str):
            return f'"{value}"'
        if value is None:
            return "NULL"
        return str(value)
    if isinstance(operand, Var):
        return operand.name
    if isinstance(operand, AttrRef):
        return str(operand.attribute)
    raise TypeError(f"unknown operand {operand!r}")


def format_predicate(pred: Predicate) -> str:
    if isinstance(pred, TruePred):
        return "TRUE"
    if isinstance(pred, Comparison):
        return f"{format_operand(pred.left)} {pred.op.value} {format_operand(pred.right)}"
    if isinstance(pred, InQuery):
        return f"{format_operand(pred.operand)} IN ({format_query(pred.query)})"
    if isinstance(pred, And):
        return f"({format_predicate(pred.left)} AND {format_predicate(pred.right)})"
    if isinstance(pred, Or):
        return f"({format_predicate(pred.left)} OR {format_predicate(pred.right)})"
    if isinstance(pred, Not):
        return f"(NOT {format_predicate(pred.operand)})"
    raise TypeError(f"unknown predicate {pred!r}")


def format_join(chain: JoinChain) -> str:
    if chain.is_single_table:
        return chain.tables[0]
    tables = " JOIN ".join(chain.tables)
    if not chain.conditions:
        return tables
    conditions = " AND ".join(f"{left} = {right}" for left, right in chain.conditions)
    return f"{tables} ON {conditions}"


def _decompose_query(query: Query) -> tuple[list, list, JoinChain]:
    """Split a query into projection lists, predicates and the leaf join chain."""
    projections: list = []
    predicates: list = []
    node = query
    while not isinstance(node, JoinChain):
        if isinstance(node, Projection):
            projections.append(node.attributes)
            node = node.source
        elif isinstance(node, Selection):
            predicates.append(node.predicate)
            node = node.source
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown query node {node!r}")
    return projections, predicates, node


def format_query(query: Query) -> str:
    """Render a relational-algebra query as a SELECT statement."""
    projections, predicates, chain = _decompose_query(query)
    if projections:
        columns = ", ".join(str(attr) for attr in projections[0])
    else:
        columns = "*"
    text = f"SELECT {columns} FROM {format_join(chain)}"
    if predicates:
        combined = predicates[0]
        for pred in predicates[1:]:
            combined = And(combined, pred)
        text += f" WHERE {format_predicate(combined)}"
    return text


def format_statement(stmt: Statement, indent: str = "  ") -> str:
    if isinstance(stmt, Insert):
        attrs = ", ".join(str(attr) for attr, _ in stmt.values)
        values = ", ".join(format_operand(op) for _, op in stmt.values)
        return f"{indent}INSERT INTO {format_join(stmt.target)} ({attrs}) VALUES ({values});"
    if isinstance(stmt, Delete):
        targets = ", ".join(stmt.tables)
        text = f"{indent}DELETE {targets} FROM {format_join(stmt.source)}"
        if not isinstance(stmt.predicate, TruePred):
            text += f" WHERE {format_predicate(stmt.predicate)}"
        return text + ";"
    if isinstance(stmt, Update):
        text = (
            f"{indent}UPDATE {format_join(stmt.source)} "
            f"SET {stmt.attribute} = {format_operand(stmt.value)}"
        )
        if not isinstance(stmt.predicate, TruePred):
            text += f" WHERE {format_predicate(stmt.predicate)}"
        return text + ";"
    raise TypeError(f"unknown statement {stmt!r}")


def format_function(func: Function) -> str:
    params = ", ".join(f"{p.dtype} {p.name}" for p in func.params)
    if isinstance(func, QueryFunction):
        header = f"query {func.name}({params})"
        return f"{header}\n  {format_query(func.query)};"
    header = f"update {func.name}({params})"
    body = "\n".join(format_statement(stmt) for stmt in func.statements)
    return f"{header}\n{body}"


def format_program(program: Program) -> str:
    """Render a whole program, functions separated by blank lines."""
    return "\n\n".join(format_function(func) for func in program)


def format_schema(program_or_schema) -> str:
    """Render a schema in the compact paper style (``Table (a, b, c)``)."""
    schema = getattr(program_or_schema, "schema", program_or_schema)
    return schema.describe()
