"""A CDCL SAT solver.

This replaces the Sat4J dependency of the original Migrator implementation.
It is a conflict-driven clause-learning solver with two-watched-literal
propagation, VSIDS-style activity ordering, first-UIP clause learning,
Luby-sequence restarts and optional solving under assumptions.

The encodings produced by this reproduction are small (at most a few
thousand variables), so the solver favours clarity over micro-optimisation,
but it is a complete, faithful CDCL implementation rather than a toy DPLL.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.sat.cnf import CNF, Clause, Literal


class Status(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SolverStatistics:
    """Counters exposed for benchmarking and tests."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    learned_clauses: int = 0
    restarts: int = 0


@dataclass
class SolveResult:
    status: Status
    model: Optional[dict[int, bool]] = None

    @property
    def is_sat(self) -> bool:
        return self.status is Status.SAT


def _luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence."""
    k = 1
    while (1 << (k + 1)) - 1 <= i:
        k += 1
    while (1 << k) - 1 != i:
        i -= (1 << (k - 1)) - 1
        k -= 1
        while (1 << (k + 1)) - 1 <= i:
            k += 1
    return 1 << (k - 1)


class _Watcher:
    """One entry of a literal's watch list.

    Besides the clause index it caches a *blocker* literal (some other
    literal of the clause): if the blocker is already true the clause is
    satisfied and propagation can skip dereferencing it entirely — the
    standard MiniSat blocker optimisation.  Slotted: watch lists are the
    densest per-literal structures in the solver.
    """

    __slots__ = ("clause", "blocker")

    def __init__(self, clause: int, blocker: Literal):
        self.clause = clause
        self.blocker = blocker


class SatSolver:
    """CDCL solver over a growable clause database."""

    __slots__ = (
        "stats",
        "_num_vars",
        "_clauses",
        "_watches",
        "_assign",
        "_level",
        "_reason",
        "_trail",
        "_trail_lim",
        "_qhead",
        "_activity",
        "_var_inc",
        "_var_decay",
        "_restart_base",
        "_empty_clause",
    )

    def __init__(self, cnf: CNF | None = None, *, restart_base: int = 64):
        self.stats = SolverStatistics()
        self._num_vars = 0
        self._clauses: list[list[Literal]] = []
        self._watches: dict[Literal, list[_Watcher]] = {}
        # assignment state
        self._assign: dict[int, bool] = {}
        self._level: dict[int, int] = {}
        self._reason: dict[int, Optional[int]] = {}
        self._trail: list[Literal] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        # activity
        self._activity: dict[int, float] = {}
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._restart_base = restart_base
        self._empty_clause = False
        if cnf is not None:
            self.add_cnf(cnf)

    # ------------------------------------------------------------------ build
    def _ensure_vars(self, var: int) -> None:
        while self._num_vars < var:
            self._num_vars += 1
            self._activity.setdefault(self._num_vars, 0.0)

    def add_cnf(self, cnf: CNF) -> None:
        self._ensure_vars(cnf.num_variables)
        for clause in cnf.clauses:
            self.add_clause(clause)

    def add_clause(self, literals: Iterable[Literal]) -> None:
        """Add a clause; duplicate literals are removed, tautologies dropped."""
        clause: list[Literal] = []
        seen: set[Literal] = set()
        for lit in literals:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            if lit in seen:
                continue
            if -lit in seen:
                return  # tautology
            seen.add(lit)
            clause.append(lit)
            self._ensure_vars(abs(lit))
        if not clause:
            self._empty_clause = True
            return
        index = len(self._clauses)
        self._clauses.append(clause)
        self._watch_clause(index)

    def _watch_clause(self, index: int) -> None:
        clause = self._clauses[index]
        if len(clause) >= 2:
            self._watches.setdefault(clause[0], []).append(_Watcher(index, clause[1]))
            self._watches.setdefault(clause[1], []).append(_Watcher(index, clause[0]))
        else:
            self._watches.setdefault(clause[0], []).append(_Watcher(index, clause[0]))

    # ------------------------------------------------------------- assignment
    def _value(self, lit: Literal) -> Optional[bool]:
        var = abs(lit)
        if var not in self._assign:
            return None
        value = self._assign[var]
        return value if lit > 0 else not value

    def _current_level(self) -> int:
        return len(self._trail_lim)

    def _enqueue(self, lit: Literal, reason: Optional[int]) -> bool:
        value = self._value(lit)
        if value is not None:
            return value
        var = abs(lit)
        self._assign[var] = lit > 0
        self._level[var] = self._current_level()
        self._reason[var] = reason
        self._trail.append(lit)
        self.stats.propagations += 1
        return True

    # ------------------------------------------------------------ propagation
    def _propagate(self) -> Optional[int]:
        """Unit propagation; returns the index of a conflicting clause or None."""
        # We propagate from the start of the unprocessed suffix of the trail;
        # new entries appended during propagation are handled too.
        head = self._qhead
        while head < len(self._trail):
            lit = self._trail[head]
            head += 1
            false_lit = -lit
            watch_list = self._watches.get(false_lit, [])
            new_watch_list: list[_Watcher] = []
            i = 0
            conflict: Optional[int] = None
            while i < len(watch_list):
                watcher = watch_list[i]
                i += 1
                # Blocker already true: clause satisfied, skip dereferencing it.
                if self._value(watcher.blocker) is True:
                    new_watch_list.append(watcher)
                    continue
                clause_index = watcher.clause
                clause = self._clauses[clause_index]
                # Ensure false_lit is at position 1.
                if len(clause) >= 2:
                    if clause[0] == false_lit:
                        clause[0], clause[1] = clause[1], clause[0]
                    first = clause[0]
                    if self._value(first) is True:
                        watcher.blocker = first
                        new_watch_list.append(watcher)
                        continue
                    # Find a new literal to watch.
                    found = False
                    for k in range(2, len(clause)):
                        if self._value(clause[k]) is not False:
                            clause[1], clause[k] = clause[k], clause[1]
                            self._watches.setdefault(clause[1], []).append(
                                _Watcher(clause_index, first)
                            )
                            found = True
                            break
                    if found:
                        continue
                    new_watch_list.append(watcher)
                    if self._value(first) is False:
                        conflict = clause_index
                        new_watch_list.extend(watch_list[i:])
                        break
                    self._enqueue(first, clause_index)
                else:
                    new_watch_list.append(watcher)
                    only = clause[0]
                    if self._value(only) is False:
                        conflict = clause_index
                        new_watch_list.extend(watch_list[i:])
                        break
                    if self._value(only) is None:
                        self._enqueue(only, clause_index)
            self._watches[false_lit] = new_watch_list
            if conflict is not None:
                self._qhead = len(self._trail)
                return conflict
        self._qhead = head
        return None

    # ---------------------------------------------------------------- analyse
    def _bump(self, var: int) -> None:
        self._activity[var] = self._activity.get(var, 0.0) + self._var_inc
        if self._activity[var] > 1e100:
            for v in self._activity:
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100

    def _decay_activities(self) -> None:
        self._var_inc /= self._var_decay

    def _analyze(self, conflict_index: int) -> tuple[list[Literal], int]:
        """First-UIP conflict analysis.

        Returns the learned clause (asserting literal first) and the backtrack
        level.
        """
        learned: list[Literal] = []
        seen: set[int] = set()
        counter = 0
        lit: Optional[Literal] = None
        clause = list(self._clauses[conflict_index])
        trail_index = len(self._trail) - 1
        current = self._current_level()

        while True:
            for reason_lit in clause:
                var = abs(reason_lit)
                if var in seen:
                    continue
                if self._level.get(var, 0) == 0:
                    continue
                seen.add(var)
                self._bump(var)
                if self._level[var] == current:
                    counter += 1
                else:
                    learned.append(reason_lit)
            # Pick the next literal from the trail to resolve on.
            while True:
                lit = self._trail[trail_index]
                trail_index -= 1
                if abs(lit) in seen:
                    break
            counter -= 1
            if counter == 0:
                break
            reason_index = self._reason.get(abs(lit))
            assert reason_index is not None
            clause = [l for l in self._clauses[reason_index] if l != lit]
        learned = [-lit] + learned
        if len(learned) == 1:
            return learned, 0
        back_level = max(self._level[abs(l)] for l in learned[1:])
        # Put a literal of the backtrack level in position 1 (watch invariant).
        for i in range(1, len(learned)):
            if self._level[abs(learned[i])] == back_level:
                learned[1], learned[i] = learned[i], learned[1]
                break
        return learned, back_level

    def _backtrack(self, level: int) -> None:
        if self._current_level() <= level:
            return
        limit = self._trail_lim[level]
        for lit in self._trail[limit:]:
            var = abs(lit)
            self._assign.pop(var, None)
            self._level.pop(var, None)
            self._reason.pop(var, None)
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._qhead = min(self._qhead, len(self._trail))

    # ----------------------------------------------------------------- decide
    def _pick_branch_variable(self) -> Optional[int]:
        best_var = None
        best_activity = -1.0
        for var in range(1, self._num_vars + 1):
            if var in self._assign:
                continue
            activity = self._activity.get(var, 0.0)
            if activity > best_activity:
                best_activity = activity
                best_var = var
        return best_var

    # ------------------------------------------------------------------ solve
    def solve(self, assumptions: Sequence[Literal] = ()) -> SolveResult:
        """Solve the current clause database under optional assumptions."""
        if self._empty_clause:
            return SolveResult(Status.UNSAT)
        # Reset transient state.
        self._assign.clear()
        self._level.clear()
        self._reason.clear()
        self._trail.clear()
        self._trail_lim.clear()
        self._qhead = 0

        # Top-level propagation of unit clauses.
        for index, clause in enumerate(self._clauses):
            if len(clause) == 1:
                if self._value(clause[0]) is False:
                    return SolveResult(Status.UNSAT)
                self._enqueue(clause[0], index)
        if self._propagate() is not None:
            return SolveResult(Status.UNSAT)

        # Assumptions are decisions at successive levels.
        for lit in assumptions:
            if self._value(lit) is False:
                return SolveResult(Status.UNSAT)
            if self._value(lit) is None:
                self._trail_lim.append(len(self._trail))
                self._enqueue(lit, None)
                if self._propagate() is not None:
                    return SolveResult(Status.UNSAT)
        assumption_level = self._current_level()

        conflicts_since_restart = 0
        restart_count = 0
        restart_limit = self._restart_base * _luby(restart_count + 1)

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_since_restart += 1
                if self._current_level() <= assumption_level:
                    return SolveResult(Status.UNSAT)
                learned, back_level = self._analyze(conflict)
                back_level = max(back_level, assumption_level)
                self._backtrack(back_level)
                index = len(self._clauses)
                self._clauses.append(learned)
                self._watch_clause(index)
                self.stats.learned_clauses += 1
                self._enqueue(learned[0], index)
                self._decay_activities()
            else:
                if conflicts_since_restart >= restart_limit:
                    restart_count += 1
                    self.stats.restarts += 1
                    conflicts_since_restart = 0
                    restart_limit = self._restart_base * _luby(restart_count + 1)
                    self._backtrack(assumption_level)
                    continue
                var = self._pick_branch_variable()
                if var is None:
                    model = dict(self._assign)
                    for v in range(1, self._num_vars + 1):
                        model.setdefault(v, False)
                    return SolveResult(Status.SAT, model)
                self.stats.decisions += 1
                self._trail_lim.append(len(self._trail))
                self._enqueue(var, None)


def solve_cnf(cnf: CNF, assumptions: Sequence[Literal] = ()) -> SolveResult:
    """One-shot convenience wrapper."""
    return SatSolver(cnf).solve(assumptions)
