"""Cardinality constraint encodings.

The sketch-completion encoding needs exactly-one constraints per hole
(the n-ary XOR of Section 4.4); the MaxSAT solver additionally uses
at-most-k constraints over relaxation variables.  Both the pairwise and the
sequential (Sinz) encodings are provided; the encoder picks pairwise for
small domains and sequential for large ones.
"""

from __future__ import annotations

from typing import Sequence

from repro.sat.cnf import CNF, Literal


def at_least_one(cnf: CNF, literals: Sequence[Literal]) -> None:
    cnf.add_clause(literals)


def at_most_one_pairwise(cnf: CNF, literals: Sequence[Literal]) -> None:
    for i in range(len(literals)):
        for j in range(i + 1, len(literals)):
            cnf.add_clause([-literals[i], -literals[j]])


def at_most_one_sequential(cnf: CNF, literals: Sequence[Literal]) -> None:
    """Sinz sequential encoding: linear number of clauses and auxiliaries."""
    n = len(literals)
    if n <= 1:
        return
    registers = [cnf.new_variable() for _ in range(n - 1)]
    cnf.add_clause([-literals[0], registers[0]])
    for i in range(1, n - 1):
        cnf.add_clause([-literals[i], registers[i]])
        cnf.add_clause([-registers[i - 1], registers[i]])
        cnf.add_clause([-literals[i], -registers[i - 1]])
    cnf.add_clause([-literals[n - 1], -registers[n - 2]])


def at_most_one(cnf: CNF, literals: Sequence[Literal], threshold: int = 6) -> None:
    """At-most-one with automatic encoding selection."""
    if len(literals) <= threshold:
        at_most_one_pairwise(cnf, literals)
    else:
        at_most_one_sequential(cnf, literals)


def exactly_one(cnf: CNF, literals: Sequence[Literal], threshold: int = 6) -> None:
    """Exactly-one (the paper's n-ary XOR ⊕ over hole indicator variables)."""
    if not literals:
        raise ValueError("exactly_one over an empty literal list is unsatisfiable")
    at_least_one(cnf, literals)
    at_most_one(cnf, literals, threshold)


def at_most_k_sequential(cnf: CNF, literals: Sequence[Literal], k: int) -> None:
    """Sinz sequential at-most-k encoding."""
    n = len(literals)
    if k < 0:
        raise ValueError("k must be non-negative")
    if k == 0:
        for lit in literals:
            cnf.add_clause([-lit])
        return
    if n <= k:
        return
    # registers[i][j] == true means "at least j+1 of the first i+1 literals are true".
    registers = [[cnf.new_variable() for _ in range(k)] for _ in range(n)]
    cnf.add_clause([-literals[0], registers[0][0]])
    for j in range(1, k):
        cnf.add_clause([-registers[0][j]])
    for i in range(1, n):
        cnf.add_clause([-literals[i], registers[i][0]])
        cnf.add_clause([-registers[i - 1][0], registers[i][0]])
        for j in range(1, k):
            cnf.add_clause([-literals[i], -registers[i - 1][j - 1], registers[i][j]])
            cnf.add_clause([-registers[i - 1][j], registers[i][j]])
        cnf.add_clause([-literals[i], -registers[i - 1][k - 1]])
