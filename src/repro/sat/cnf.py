"""Propositional formulas in conjunctive normal form.

Variables are positive integers; a literal is a non-zero integer whose sign
is the polarity (DIMACS convention).  :class:`CNF` manages variable
allocation and clause storage and is the common currency between the sketch
encoder, the MaxSAT solver and the SAT solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence


Literal = int
Clause = tuple[Literal, ...]


class CNFError(Exception):
    """Raised for malformed clauses or literals."""


def negate(literal: Literal) -> Literal:
    if literal == 0:
        raise CNFError("0 is not a valid literal")
    return -literal


def variable_of(literal: Literal) -> int:
    if literal == 0:
        raise CNFError("0 is not a valid literal")
    return abs(literal)


class VariablePool:
    """Allocates fresh variables and remembers the meaning of named ones."""

    def __init__(self) -> None:
        self._next = 1
        self._names: dict[object, int] = {}
        self._meanings: dict[int, object] = {}

    def fresh(self, meaning: object = None) -> int:
        var = self._next
        self._next += 1
        if meaning is not None:
            self._meanings[var] = meaning
        return var

    def named(self, key: object) -> int:
        """Return the variable associated with *key*, allocating it if needed."""
        if key not in self._names:
            var = self.fresh(meaning=key)
            self._names[key] = var
        return self._names[key]

    def lookup(self, key: object) -> int | None:
        return self._names.get(key)

    def meaning(self, var: int) -> object:
        return self._meanings.get(var)

    @property
    def num_variables(self) -> int:
        return self._next - 1


class CNF:
    """A growable CNF formula."""

    def __init__(self, num_variables: int = 0):
        self._num_variables = num_variables
        self._clauses: list[Clause] = []

    # ------------------------------------------------------------------ build
    def new_variable(self) -> int:
        self._num_variables += 1
        return self._num_variables

    def ensure_variable(self, var: int) -> None:
        if var > self._num_variables:
            self._num_variables = var

    def add_clause(self, literals: Iterable[Literal]) -> Clause:
        clause = tuple(literals)
        if not clause:
            raise CNFError("empty clause added (formula is trivially unsatisfiable)")
        for lit in clause:
            if lit == 0:
                raise CNFError("0 is not a valid literal")
            self.ensure_variable(abs(lit))
        self._clauses.append(clause)
        return clause

    def add_clauses(self, clauses: Iterable[Iterable[Literal]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def extend(self, other: "CNF") -> None:
        for clause in other.clauses:
            self.add_clause(clause)

    # ----------------------------------------------------------------- access
    @property
    def clauses(self) -> list[Clause]:
        return list(self._clauses)

    @property
    def num_variables(self) -> int:
        return self._num_variables

    @property
    def num_clauses(self) -> int:
        return len(self._clauses)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self._clauses)

    def __len__(self) -> int:
        return len(self._clauses)

    def copy(self) -> "CNF":
        dup = CNF(self._num_variables)
        dup._clauses = list(self._clauses)
        return dup

    # ------------------------------------------------------------- evaluation
    def evaluate(self, assignment: dict[int, bool]) -> bool:
        """Whether *assignment* (a total or partial map) satisfies every clause.

        Unassigned variables are treated as ``False``.
        """
        for clause in self._clauses:
            if not any(
                assignment.get(abs(lit), False) == (lit > 0) for lit in clause
            ):
                return False
        return True

    def __repr__(self) -> str:
        return f"CNF(vars={self._num_variables}, clauses={len(self._clauses)})"
