"""Propositional reasoning substrate: CNF formulas, cardinality encodings, CDCL SAT."""

from repro.sat.cardinality import at_most_k_sequential, at_most_one, exactly_one
from repro.sat.cnf import CNF, CNFError, Clause, Literal, VariablePool, negate, variable_of
from repro.sat.dimacs import dumps, loads, read_dimacs, write_dimacs
from repro.sat.solver import SatSolver, SolveResult, SolverStatistics, Status, solve_cnf

__all__ = [
    "CNF",
    "CNFError",
    "Clause",
    "Literal",
    "SatSolver",
    "SolveResult",
    "SolverStatistics",
    "Status",
    "VariablePool",
    "at_most_k_sequential",
    "at_most_one",
    "dumps",
    "exactly_one",
    "loads",
    "negate",
    "read_dimacs",
    "solve_cnf",
    "variable_of",
    "write_dimacs",
]
