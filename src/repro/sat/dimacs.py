"""DIMACS CNF serialization.

Not used on the main synthesis path, but handy for debugging encodings and
for cross-checking the solver against external tools.  Also exercised by the
property-based test suite (round-tripping random formulas).
"""

from __future__ import annotations

from typing import Iterable, TextIO

from repro.sat.cnf import CNF, CNFError


def write_dimacs(cnf: CNF, stream: TextIO, comments: Iterable[str] = ()) -> None:
    for comment in comments:
        stream.write(f"c {comment}\n")
    stream.write(f"p cnf {cnf.num_variables} {cnf.num_clauses}\n")
    for clause in cnf.clauses:
        stream.write(" ".join(str(lit) for lit in clause) + " 0\n")


def dumps(cnf: CNF, comments: Iterable[str] = ()) -> str:
    import io

    buffer = io.StringIO()
    write_dimacs(cnf, buffer, comments)
    return buffer.getvalue()


def read_dimacs(stream: TextIO) -> CNF:
    cnf: CNF | None = None
    pending: list[int] = []
    for raw_line in stream:
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise CNFError(f"malformed problem line: {line!r}")
            cnf = CNF(int(parts[2]))
            continue
        if cnf is None:
            raise CNFError("clause found before the problem line")
        for token in line.split():
            value = int(token)
            if value == 0:
                if pending:
                    cnf.add_clause(pending)
                    pending = []
            else:
                pending.append(value)
    if cnf is None:
        raise CNFError("missing problem line")
    if pending:
        cnf.add_clause(pending)
    return cnf


def loads(text: str) -> CNF:
    import io

    return read_dimacs(io.StringIO(text))
